"""Benchmark/regeneration of Table 6 — 5% hot-spot traffic.

Paper shape: every architecture tree-saturates together just under 0.25;
buffer structure does not matter for hot spots.
"""

from repro.experiments import table6


def test_table6_hotspot(run_once):
    result = run_once(table6.run, quick=True)
    print()
    print(result.render())
    rows = result.data["rows"]
    throughputs = [row["saturation_throughput"] for row in rows.values()]
    assert result.data["saturation_spread"] < 0.05
    for value in throughputs:
        assert 0.12 < value < 0.32
