"""Benchmark/regeneration of Table 4 — latency vs throughput, 4 slots.

Paper shape: DAMQ saturation ~40% above FIFO; near-identical latencies
below 0.40; FIFO saturates near 0.51.
"""

from repro.experiments import table4


def test_table4_latency_and_saturation(run_once):
    result = run_once(table4.run, quick=True)
    print()
    print(result.render())
    rows = result.data["rows"]
    assert result.data["damq_over_fifo"] > 1.30
    assert rows["DAMQ"]["saturation_throughput"] == max(
        row["saturation_throughput"] for row in rows.values()
    )
    # Sub-saturation latencies nearly indistinguishable at 0.25.
    lows = [row["latencies"][0.25] for row in rows.values()]
    assert max(lows) - min(lows) < 10.0
