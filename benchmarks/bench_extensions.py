"""Benchmarks for the reproduction's extension experiments.

* ``ext-varlen`` — variable-length packets (the paper's future work);
* ``ext-slotsize`` — the Section 3.2.3 slot-size tradeoff, analytic model
  checked against the byte-level chip;
* ``ext-validation`` — Markov chains vs Monte Carlo.
"""

from repro.experiments import ext_radix, ext_slotsize, ext_validation, ext_varlen


def test_extension_variable_length(run_once):
    result = run_once(ext_varlen.run, quick=True)
    print()
    print(result.render())
    # DAMQ stays clearly ahead of FIFO under variable-length traffic.
    assert result.data["gap_variable"] > 1.2


def test_extension_slot_size(run_once):
    result = run_once(ext_slotsize.run, quick=True)
    print()
    print(result.render())
    estimates = result.data["estimates"]
    # The designers' argument: 8B costs far fewer register bits than 4B
    # while fragmenting far less than 32B.
    assert estimates[8].register_bits_per_byte < estimates[4].register_bits_per_byte / 1.8
    assert estimates[8].expected_fragmentation < estimates[32].expected_fragmentation / 2
    # Chip-measured fragmentation tracks the analytic column loosely.
    for slot_bytes, measured in result.data["measured"].items():
        assert abs(measured - estimates[slot_bytes].expected_fragmentation) < 0.15


def test_extension_radix_sweep(run_once):
    result = run_once(ext_radix.run, quick=True)
    print()
    print(result.render())
    saturation = result.data["saturation"]
    radices = sorted({radix for _kind, radix in saturation})
    # DAMQ is the best architecture at every radix in the sweep.
    for radix in radices:
        best = max(
            ("FIFO", "SAMQ", "SAFC", "DAMQ"),
            key=lambda kind: saturation[(kind, radix)],
        )
        assert best == "DAMQ", (radix, best)


def test_extension_markov_validation(run_once):
    result = run_once(ext_validation.run, quick=True)
    print()
    print(result.render())
    assert result.data["worst_error"] < 0.012
