"""Benchmark harness configuration.

Every paper table/figure has one benchmark that *regenerates* it (in quick
mode) and prints the resulting rows, so ``pytest benchmarks/
--benchmark-only`` both times the reproduction pipeline and shows the
numbers next to the paper's.  Simulation-backed experiments are expensive,
so each benchmark runs a single round.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark clock and return its
    result (pytest-benchmark's pedantic mode)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, iterations=1, rounds=1
        )

    return runner
