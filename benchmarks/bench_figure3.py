"""Benchmark/regeneration of Figure 3 — FIFO vs DAMQ latency curves.

Paper shape: both curves flat then vertical; DAMQ's wall well to the
right of FIFO's.
"""

from repro.experiments import figure3


def test_figure3_curves(run_once):
    result = run_once(figure3.run, quick=True)
    print()
    print(result.render())
    curves = result.data["curves"]
    fifo_max = max(p.delivered_throughput for p in curves["FIFO"])
    damq_max = max(p.delivered_throughput for p in curves["DAMQ"])
    assert damq_max > fifo_max * 1.2
    # The knee: latency at the last point far above the unloaded latency.
    fifo_unloaded = curves["FIFO"][0].average_latency
    fifo_saturated = curves["FIFO"][-1].average_latency
    assert fifo_saturated > 2 * fifo_unloaded
