"""Benchmark/regeneration of Table 3 — discarding Omega network.

Paper shape: DAMQ discards least by a wide margin; dumb ≈ smart at 0.50;
DAMQ has the best over-capacity output throughput.
"""

from repro.experiments import table3


def test_table3_discarding_network(run_once):
    result = run_once(table3.run, quick=True)
    print()
    print(result.render())
    rows = result.data["rows"]
    damq = rows["DAMQ"]
    for kind in ("FIFO", "SAMQ", "SAFC"):
        assert damq["smart_50_discard"] < rows[kind]["smart_50_discard"]
        assert damq["over_delivered"] > rows[kind]["over_delivered"]
    assert abs(damq["smart_50_discard"] - damq["dumb_50_discard"]) < 2.0
