"""Benchmark/regeneration of Figure 1 — the four switch organizations."""

from repro.experiments import figure1


def test_figure1_structures(run_once):
    result = run_once(figure1.run)
    print()
    print(result.render())
    facts = result.data["facts"]
    # The structural contrasts the figure is drawn to show:
    assert facts["SAFC"]["fabric"] != facts["SAMQ"]["fabric"]
    assert (
        facts["DAMQ"]["slots_usable_by_one_destination"]
        > facts["SAMQ"]["slots_usable_by_one_destination"]
    )
