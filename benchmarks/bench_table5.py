"""Benchmark/regeneration of Table 5 — varying slots per buffer.

Paper shape: DAMQ with 3 slots saturates above FIFO with 8; extra DAMQ
slots buy little.
"""

from repro.experiments import table5


def test_table5_slot_sweep(run_once):
    result = run_once(table5.run, quick=True)
    print()
    print(result.render())
    rows = result.data["rows"]
    slot_counts = sorted({slots for _kind, slots in rows})
    smallest, largest = slot_counts[0], slot_counts[-1]
    assert (
        rows[("DAMQ", smallest)]["saturation_throughput"]
        > rows[("FIFO", largest)]["saturation_throughput"]
    )
    # FIFO gains visibly from extra slots; DAMQ does not need them as much.
    fifo_gain = (
        rows[("FIFO", largest)]["saturation_throughput"]
        - rows[("FIFO", smallest)]["saturation_throughput"]
    )
    assert fifo_gain > -0.02
