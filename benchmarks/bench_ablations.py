"""Ablation benchmarks beyond the paper's tables.

These probe the design choices DESIGN.md calls out:

* smart vs dumb arbitration at saturation (the paper only compares them
  in the discarding Table 3);
* SAFC's extra read ports: how much of its edge over SAMQ they provide;
* variable-length packets (the paper's stated future work): the DAMQ's
  advantage should widen when packets span multiple slots;
* chip-model throughput: sustained link utilization of the byte-level
  ComCoBB model.
"""

from repro.chip import ChipNetwork
from repro.network import NetworkConfig, measure_saturation
from repro.switch.flow_control import Protocol
from repro.utils.tables import TextTable

WARMUP = 200
MEASURE = 800

BASE = NetworkConfig(
    slots_per_buffer=4,
    protocol=Protocol.BLOCKING,
    traffic_kind="uniform",
    seed=424,
)


def test_ablation_arbitration(run_once):
    """Smart arbitration's value at saturation, per buffer type."""

    def sweep():
        rows = {}
        for kind in ("FIFO", "DAMQ"):
            for arbiter in ("smart", "dumb"):
                rows[(kind, arbiter)] = measure_saturation(
                    BASE.with_overrides(buffer_kind=kind, arbiter_kind=arbiter),
                    WARMUP,
                    MEASURE,
                ).saturation_throughput
        return rows

    rows = run_once(sweep)
    table = TextTable(
        "Saturation throughput by arbitration scheme",
        ["Buffer", "smart", "dumb"],
    )
    for kind in ("FIFO", "DAMQ"):
        table.add_row(
            [kind, f"{rows[(kind, 'smart')]:.3f}", f"{rows[(kind, 'dumb')]:.3f}"]
        )
    print()
    print(table.render())
    for kind in ("FIFO", "DAMQ"):
        assert rows[(kind, "smart")] >= rows[(kind, "dumb")] - 0.04


def test_ablation_variable_length_packets(run_once):
    """Two-slot packets: the DAMQ/FIFO gap should not shrink (the paper
    predicts it widens for variable-length traffic)."""

    def sweep():
        gaps = {}
        for size in (1, 2):
            fifo = measure_saturation(
                BASE.with_overrides(
                    buffer_kind="FIFO", packet_size=size, slots_per_buffer=8
                ),
                WARMUP,
                MEASURE,
            ).saturation_throughput
            damq = measure_saturation(
                BASE.with_overrides(
                    buffer_kind="DAMQ", packet_size=size, slots_per_buffer=8
                ),
                WARMUP,
                MEASURE,
            ).saturation_throughput
            gaps[size] = (fifo, damq, damq / fifo)
        return gaps

    gaps = run_once(sweep)
    table = TextTable(
        "Saturation throughput vs packet size (8 slots per buffer)",
        ["Packet slots", "FIFO", "DAMQ", "DAMQ/FIFO"],
    )
    for size, (fifo, damq, ratio) in gaps.items():
        table.add_row([size, f"{fifo:.3f}", f"{damq:.3f}", f"{ratio:.2f}"])
    print()
    print(table.render())
    assert gaps[2][2] > 1.2  # DAMQ still clearly ahead with bigger packets


def test_ablation_safc_read_ports(run_once):
    """How much of SAFC's edge comes from its multiplied read ports."""

    def sweep():
        return {
            kind: measure_saturation(
                BASE.with_overrides(buffer_kind=kind), WARMUP, MEASURE
            ).saturation_throughput
            for kind in ("SAMQ", "SAFC", "DAMQ")
        }

    rows = run_once(sweep)
    print(
        f"\nSAMQ {rows['SAMQ']:.3f} -> SAFC {rows['SAFC']:.3f} "
        f"(read ports) vs DAMQ {rows['DAMQ']:.3f} (dynamic sharing)"
    )
    assert rows["SAFC"] >= rows["SAMQ"] - 0.02
    assert rows["DAMQ"] > rows["SAFC"]


def test_ablation_blocking_vs_discarding(run_once):
    """Over-capacity behaviour under both protocols: discarding keeps the
    pipes moving (higher delivered throughput) at the cost of loss, and
    DAMQ leads under both."""
    from repro.network import simulate

    def sweep():
        rows = {}
        for kind in ("FIFO", "DAMQ"):
            for protocol in (Protocol.BLOCKING, Protocol.DISCARDING):
                result = simulate(
                    BASE.with_overrides(
                        buffer_kind=kind, protocol=protocol, offered_load=1.0
                    ),
                    WARMUP,
                    MEASURE,
                )
                rows[(kind, str(protocol))] = (
                    result.delivered_throughput,
                    result.discard_percent,
                )
        return rows

    rows = run_once(sweep)
    table = TextTable(
        "Offered load 1.0: delivered throughput (and % discarded)",
        ["Buffer", "blocking", "discarding"],
    )
    for kind in ("FIFO", "DAMQ"):
        blocking = rows[(kind, "blocking")]
        discarding = rows[(kind, "discarding")]
        table.add_row(
            [
                kind,
                f"{blocking[0]:.3f}",
                f"{discarding[0]:.3f} ({discarding[1]:.1f}% lost)",
            ]
        )
    print()
    print(table.render())
    for kind in ("FIFO", "DAMQ"):
        assert rows[(kind, "discarding")][0] >= rows[(kind, "blocking")][0] - 0.03
    assert rows[("DAMQ", "blocking")][0] > rows[("FIFO", "blocking")][0]
    assert rows[("DAMQ", "discarding")][0] > rows[("FIFO", "discarding")][0]


def test_ablation_flow_control_fidelity(run_once):
    """The paper's Section 2 argument against SAMQ/SAFC, quantified: with
    realistic (no pre-routing) flow control, the statically partitioned
    buffers lose most of their edge, while FIFO and DAMQ are untouched."""

    def sweep():
        rows = {}
        for kind in ("FIFO", "SAMQ", "SAFC", "DAMQ"):
            for fidelity in ("precise", "conservative"):
                rows[(kind, fidelity)] = measure_saturation(
                    BASE.with_overrides(
                        buffer_kind=kind, flow_control_fidelity=fidelity
                    ),
                    WARMUP,
                    MEASURE,
                ).saturation_throughput
        return rows

    rows = run_once(sweep)
    table = TextTable(
        "Saturation throughput by flow-control fidelity",
        ["Buffer", "precise (pre-routed)", "conservative (no pre-routing)"],
    )
    for kind in ("FIFO", "SAMQ", "SAFC", "DAMQ"):
        table.add_row(
            [
                kind,
                f"{rows[(kind, 'precise')]:.3f}",
                f"{rows[(kind, 'conservative')]:.3f}",
            ]
        )
    print()
    print(table.render())
    # Single-pool buffers are unaffected by definition.
    for kind in ("FIFO", "DAMQ"):
        assert rows[(kind, "precise")] == rows[(kind, "conservative")]
    # Static partitions pay a real price without pre-routing.
    for kind in ("SAMQ", "SAFC"):
        assert rows[(kind, "conservative")] < rows[(kind, "precise")] - 0.05
    # And DAMQ dominates either way.
    assert rows[("DAMQ", "conservative")] == max(
        rows[(kind, "conservative")] for kind in ("FIFO", "SAMQ", "SAFC", "DAMQ")
    )


def test_chip_link_utilization(run_once):
    """Sustained byte-level throughput of one ComCoBB link under a long
    stream of back-to-back packets (upper bound: 1 byte/cycle, with 3
    cycles of per-packet framing overhead)."""

    def stream():
        network = ChipNetwork()
        network.add_node("tx")
        network.add_node("rx")
        network.connect("tx", 0, "rx", 0)
        circuit = network.open_circuit(["tx", "rx"])
        payload_bytes = 0
        for _ in range(40):
            network.send(circuit, b"\x5a" * 512)
            payload_bytes += 512
        cycles = network.run_until_idle(max_cycles=200_000)
        return payload_bytes, cycles

    payload_bytes, cycles = run_once(stream)
    utilization = payload_bytes / cycles
    print(
        f"\n{payload_bytes} payload bytes in {cycles} cycles "
        f"({utilization:.2f} bytes/cycle; wire format adds start+header+"
        f"length per 32-byte packet)"
    )
    # 32 data bytes per 35 wire cycles ~ 0.91 ceiling; require a decent
    # fraction of it (host injection gaps and pipeline fill included).
    assert utilization > 0.6
