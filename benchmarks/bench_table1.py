"""Benchmark/regeneration of Table 1 — virtual cut-through in 4 cycles.

Paper row: start bit in at cycle 0, start bit out at cycle 4.
"""

from repro.experiments import table1


def test_table1_cut_through(run_once):
    result = run_once(table1.run, quick=True)
    print()
    print(result.render())
    assert result.data["turnaround"] == 4
