"""Benchmark/regeneration of Table 2 — Markov discard probabilities.

Paper shape: DAMQ strictly best at every load; DAMQ-3 no worse than
FIFO-6; FIFO rows converge to ~0.242 at 99% traffic.
"""

from repro.experiments import table2
from repro.markov import discard_probability


def test_table2_markov_analysis(run_once):
    result = run_once(table2.run, quick=True)
    print()
    print(result.render())
    discard = result.data["discard"]
    # Paper shape assertions on the regenerated cells.
    assert discard[("DAMQ", 4)][-1] < discard[("SAFC", 4)][-1]
    assert discard[("SAFC", 4)][-1] <= discard[("SAMQ", 4)][-1]
    assert discard[("SAMQ", 4)][-1] < discard[("FIFO", 3)][-1]


def test_table2_full_grid_single_cells(run_once):
    """Time one full-size chain build + solve (FIFO with 6 slots at 99%),
    the most expensive cell of the table."""
    value = run_once(discard_probability, "FIFO", 6, 0.99)
    print(f"\nFIFO-6 @99%: discard={value:.3f} (paper: 0.242)")
    assert abs(value - 0.242) < 0.02
