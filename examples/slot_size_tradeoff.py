#!/usr/bin/env python3
"""Why the ComCoBB uses eight-byte slots (Section 3.2.3, interactive).

The designers weighed slot sizes: small slots multiply the per-slot
registers (pointer + length + header, "because any slot can be the first
slot of a packet") and the pointer work per byte; big slots strand
storage to internal fragmentation.  This script prints the analytic
tradeoff for the chip's 96-byte budget under three packet-length mixes,
then measures stranded bytes on the byte-level chip model.

Run:  python examples/slot_size_tradeoff.py
"""

from repro.chip.area import estimate_slot_size, uniform_length_distribution
from repro.experiments.ext_slotsize import measured_fragmentation
from repro.utils.tables import TextTable

MIXES = {
    "uniform 1-32B": uniform_length_distribution(),
    "small packets (1-8B)": uniform_length_distribution(1, 8),
    "full packets (32B)": {32: 1.0},
}


def main() -> None:
    for label, mix in MIXES.items():
        table = TextTable(
            f"96-byte budget, {label}",
            ["Slot", "Slots", "Reg bits/byte", "Fragmentation", "Packets fit"],
        )
        for slot_bytes in (4, 8, 16, 32):
            estimate = estimate_slot_size(slot_bytes, 96, mix)
            table.add_row(
                [
                    f"{slot_bytes}B",
                    estimate.num_slots,
                    f"{estimate.register_bits_per_byte:.2f}",
                    f"{100 * estimate.expected_fragmentation:.1f}%",
                    f"{estimate.expected_packets_capacity:.1f}",
                ]
            )
        print(table.render())
        print()

    print("measured on the chip model (mixed message stream):")
    for slot_bytes in (4, 8, 16):
        fraction = measured_fragmentation(slot_bytes, messages=20)
        print(f"  {slot_bytes:2d}B slots: {100 * fraction:.1f}% of occupied "
              f"slot bytes stranded")
    print(
        "\nEight bytes buys most of the fragmentation win of small slots at"
        "\na quarter of their register overhead — the designers' choice."
    )


if __name__ == "__main__":
    main()
