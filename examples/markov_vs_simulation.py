#!/usr/bin/env python3
"""Two instruments, one answer: Markov chains vs Monte-Carlo simulation.

The paper evaluates 2×2 switches analytically (Table 2) and larger
networks by simulation.  This example runs both of this reproduction's
instruments on the *same* 2×2 configurations and prints the discard
probabilities side by side — the analytic steady state and a long
Monte-Carlo run agree to the third decimal, which is strong evidence that
the chain compiler, the arbitration model and the solver are all
consistent.

Run:  python examples/markov_vs_simulation.py
"""

from repro.markov import validate
from repro.utils.tables import TextTable


def main() -> None:
    table = TextTable(
        "Discard probability: exact chain vs 150k-cycle Monte Carlo",
        ["Buffer", "Slots", "Traffic", "analytic", "simulated", "error"],
    )
    for kind, slots in (("FIFO", 3), ("DAMQ", 3), ("SAMQ", 4), ("SAFC", 4)):
        for rate in (0.75, 0.90, 0.99):
            report = validate(kind, slots, rate, cycles=150_000)
            table.add_row(
                [
                    kind,
                    slots,
                    f"{rate:.0%}",
                    f"{report.analytic_discard:.4f}",
                    f"{report.simulated_discard:.4f}",
                    f"{report.discard_error:.4f}",
                ]
            )
        print(f"  ({kind} done)")
    print()
    print(table.render())
    print(
        "\nBoth instruments share the port-state models and the arbitration"
        "\nenumeration, but the chain is solved exactly while the Monte"
        "\nCarlo samples — agreement validates the whole analysis pipeline."
    )


if __name__ == "__main__":
    main()
