#!/usr/bin/env python3
"""Fault injection, graceful degradation, and end-to-end recovery.

Runs two fault campaigns from :mod:`repro.faults`:

1. A 16-chip mesh with seeded bit flips on every link wire and one
   hard-failed (retired) slot in every buffer.  The link checksum
   detects corruption, the degraded chips discard the damaged packets,
   and host-level retransmission with exponential backoff recovers
   them — watch the delivery rate stay near 100% while hundreds of
   packets die on the wires.

2. A sweep of the paper's four buffer architectures (FIFO, SAMQ, SAFC,
   DAMQ) running at reduced capacity under increasing packet loss,
   showing the throughput each sustains while degraded.

Run:  python examples/fault_campaign.py
"""

from repro.faults import run_buffer_sweep, run_chip_campaign
from repro.utils.tables import TextTable

LOSS_RATES = (0.0, 1e-3, 1e-2)


def chip_campaign() -> None:
    print("Chip-network fault campaign (this takes a minute)...")
    result = run_chip_campaign(
        nodes=16,
        bit_flip_rate=1e-3,
        retired_slots_per_buffer=1,
        messages_per_flow=2,
    )
    print(f"  {result.describe()}\n")

    table = TextTable(
        "Containment counters (where corruption was caught)",
        ["counter", "events"],
    )
    for counter, value in sorted(result.fault_counters.items()):
        table.add_row([counter, value])
    table.add_row(["(transport) retransmissions", result.retransmissions])
    table.add_row(["(transport) duplicates dropped", result.duplicates_dropped])
    table.add_row(["(transport) undecodable frames", result.undecodable_frames])
    print(table.render())
    print()


def buffer_sweep() -> None:
    print("Degraded-buffer throughput sweep...")
    cells = run_buffer_sweep(loss_rates=LOSS_RATES)
    table = TextTable(
        "Delivered throughput, 1 slot retired per buffer "
        "(packets/cycle/port)",
        ["buffer", *[f"loss {rate:g}" for rate in LOSS_RATES]],
    )
    by_kind: dict[str, list[float]] = {}
    for cell in cells:
        by_kind.setdefault(cell.buffer_kind, []).append(
            cell.delivered_throughput
        )
    for kind, throughputs in by_kind.items():
        table.add_row([kind, *[f"{value:.4f}" for value in throughputs]])
    print(table.render())


def main() -> None:
    chip_campaign()
    buffer_sweep()


if __name__ == "__main__":
    main()
