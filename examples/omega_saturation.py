#!/usr/bin/env python3
"""Figure-3-style sweep: where does each buffer architecture saturate?

Runs the 64×64 Omega network at increasing offered load for all four
buffer architectures (shortened windows so the sweep finishes in a couple
of minutes) and prints the latency/throughput curve plus each
architecture's saturation point — a compact rendition of the paper's
whole Section 4.2 evaluation.

Run:  python examples/omega_saturation.py [--fast]
"""

import argparse

from repro import NetworkConfig, measure_saturation, simulate
from repro.switch.flow_control import Protocol
from repro.utils.tables import TextTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="fewer load points, shorter runs"
    )
    args = parser.parse_args()
    warmup, measure = (150, 600) if args.fast else (400, 1600)
    loads = (0.3, 0.5, 0.7) if args.fast else (0.2, 0.3, 0.4, 0.5, 0.6, 0.7)

    base = NetworkConfig(
        slots_per_buffer=4,
        protocol=Protocol.BLOCKING,
        arbiter_kind="smart",
        traffic_kind="uniform",
    )
    table = TextTable(
        "Latency (clock cycles) by offered load — 64x64 Omega, 4 slots",
        ["Buffer"] + [f"@{load}" for load in loads] + ["saturation"],
    )
    for kind in ("FIFO", "SAMQ", "SAFC", "DAMQ"):
        config = base.with_overrides(buffer_kind=kind)
        cells = []
        for load in loads:
            result = simulate(
                config.with_overrides(offered_load=load), warmup, measure
            )
            cells.append(f"{result.average_latency:.1f}")
        saturation = measure_saturation(config, warmup, measure)
        cells.append(f"{saturation.saturation_throughput:.2f}")
        table.add_row([kind] + cells)
        print(f"  ({kind} done)")
    print()
    print(table.render())
    print(
        "\nThe DAMQ column saturates well above the others — the paper's "
        "forty-percent headline."
    )


if __name__ == "__main__":
    main()
