#!/usr/bin/env python3
"""Watching a packet cut through a ComCoBB chip, cycle by cycle.

Reproduces Table 1 of the paper live: a packet's start bit arrives at an
idle input port in cycle 0 and its start bit leaves the chip in cycle 4 —
while the packet's tail is still streaming in.  The full component trace
(synchronizer release, router lookup, length decode, crossbar grant,
slot recycling) is printed.

Run:  python examples/comcobb_cut_through.py
"""

from repro.chip import ChipNetwork, TraceRecorder


def main() -> None:
    trace = TraceRecorder()
    network = ChipNetwork(trace=trace)
    network.add_node("left")
    network.add_node("right")
    network.connect("left", 0, "right", 0)
    circuit = network.open_circuit(["left", "right"])

    payload = bytes(f"cut-through demo payload {'x' * 20}", "ascii")
    packets = network.send(circuit, payload)
    print(f"sending a {len(payload)}-byte message as {packets} packets "
          f"over circuit header {circuit.header}\n")
    network.run_until_idle()

    print("full trace (both chips):")
    print(trace.render())

    turnarounds = [
        event for event in trace.filter(contains="turnaround")
    ]
    print("\nper-packet, per-chip turnaround (start-bit in -> start-bit out):")
    for event in turnarounds:
        print(f"  {event.component}: {event.action}")

    message = network.nodes["right"].host.received_messages[0]
    print(
        f"\nmessage delivered intact: {message.payload == payload} "
        f"({message.packet_count} packets, completed at cycle "
        f"{message.completed_cycle})"
    )
    print(
        "\nEvery turnaround reads 4 cycles: the paper's Table 1 schedule.\n"
        "Note the receive pipeline (cycle 2: routed; cycle 3: length) and "
        "the transmit pipeline overlapping on the same buffer slot."
    )


if __name__ == "__main__":
    main()
