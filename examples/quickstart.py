#!/usr/bin/env python3
"""Quickstart: what a DAMQ buffer does that a FIFO buffer cannot.

Builds one 4×4 switch with each buffer architecture, loads the same
packet mix into both, and shows the DAMQ forwarding packets around a
blocked head-of-line packet while the FIFO stalls — the core idea of
Tamir & Frazier's paper in twenty lines of API use.

Run:  python examples/quickstart.py
"""

from repro import Packet, make_arbiter, make_buffer
from repro.core.registry import make_buffer_factory
from repro.switch import Switch


def demonstrate(kind: str) -> None:
    """Load one buffer and arbitrate one cycle with output 0 blocked."""
    print(f"--- {kind} switch, output 0 busy ---")
    switch = Switch(
        switch_id=0,
        num_inputs=4,
        num_outputs=4,
        buffer_factory=make_buffer_factory(kind, capacity=4),
        arbiter=make_arbiter("smart", 4, 4),
    )
    # Input 0 receives: a packet for output 0 (busy), then packets for
    # outputs 1 and 2 (idle).
    arrivals = [
        Packet(packet_id=1, source=0, destination=0, route=(0,)),
        Packet(packet_id=2, source=0, destination=1, route=(1,)),
        Packet(packet_id=3, source=0, destination=2, route=(2,)),
    ]
    for packet in arrivals:
        local_output = packet.route[0]
        switch.receive(0, packet, local_output)

    def output_zero_busy(input_port, output_port, packet):
        return output_port == 0

    grants = switch.plan_transmissions(output_zero_busy)
    if grants:
        for grant in grants:
            packet = switch.execute(grant)
            print(
                f"  forwarded packet {packet.packet_id} "
                f"through output {grant.output_port}"
            )
    else:
        print("  nothing forwarded: head-of-line packet blocks the queue")
    print(f"  packets still buffered: {switch.occupancy}\n")


def peek_inside_a_damq() -> None:
    """Show the linked-list machinery directly."""
    print("--- inside a DAMQ buffer (4 slots, 4 outputs) ---")
    buffer = make_buffer("DAMQ", capacity=4, num_outputs=4)
    for packet_id, destination in [(1, 0), (2, 3), (3, 0), (4, 1)]:
        buffer.push(
            Packet(packet_id=packet_id, source=0, destination=destination),
            destination,
        )
    print(f"  occupancy: {buffer.occupancy}/4 slots (all shared)")
    for output in range(4):
        queue = buffer.queue_length(output)
        head = buffer.peek(output)
        head_text = f"head=packet {head.packet_id}" if head else "empty"
        print(f"  queue for output {output}: length {queue} ({head_text})")
    popped = buffer.pop(3)
    print(f"  popped packet {popped.packet_id} for output 3 — no waiting "
          f"behind the two packets queued for output 0")


def main() -> None:
    for kind in ("FIFO", "DAMQ"):
        demonstrate(kind)
    peek_inside_a_damq()


if __name__ == "__main__":
    main()
