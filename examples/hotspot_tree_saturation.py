#!/usr/bin/env python3
"""Tree saturation: watching a 5% hot spot strangle the whole network.

Reproduces the phenomenon behind Table 6 (after Pfister & Norton): a
small fraction of traffic aimed at one memory module fills the buffers on
every path to it, and the congestion tree then backs up into *all*
traffic — no buffer architecture escapes it.

The script runs the same offered load with and without the hot spot and
prints per-stage buffer occupancy so the saturation tree is visible
growing from the last stage toward the sources.

Run:  python examples/hotspot_tree_saturation.py
"""

from repro import NetworkConfig
from repro.network.simulator import OmegaNetworkSimulator
from repro.switch.flow_control import Protocol
from repro.utils.tables import TextTable


def stage_occupancy(simulator: OmegaNetworkSimulator) -> list[float]:
    """Mean buffer occupancy (slots) per switch, by stage."""
    return [
        sum(switch.occupancy for switch in row) / len(row)
        for row in simulator.switches
    ]


def run_case(traffic_kind: str, offered_load: float) -> tuple[list[float], float]:
    config = NetworkConfig(
        buffer_kind="DAMQ",
        slots_per_buffer=4,
        protocol=Protocol.BLOCKING,
        traffic_kind=traffic_kind,
        hot_fraction=0.05,
        offered_load=offered_load,
    )
    simulator = OmegaNetworkSimulator(config)
    for _ in range(1500):
        simulator.step()
    delivered = sum(sink.received for sink in simulator.sinks) / (
        1500 * config.num_ports
    )
    return stage_occupancy(simulator), delivered


def main() -> None:
    offered = 0.40
    table = TextTable(
        f"DAMQ network at offered load {offered:.2f} — mean slots in use "
        f"per switch (capacity 16)",
        ["Traffic", "stage 0", "stage 1", "stage 2", "delivered throughput"],
    )
    for traffic in ("uniform", "hotspot"):
        occupancy, delivered = run_case(traffic, offered)
        table.add_row(
            [traffic]
            + [f"{value:.1f}" for value in occupancy]
            + [f"{delivered:.2f}"]
        )
    print(table.render())
    print(
        "\nWith the hot spot the congestion tree rooted at the hot memory "
        "has backed up through the network: blocked packets accumulate "
        "*upstream*, so the first stage sits nearly full while delivered "
        "throughput collapses toward the hot link's share — even though "
        "95% of the traffic is uniform.  This is Pfister & Norton's tree "
        "saturation, and why the paper endorses RP3's separate combining "
        "network rather than bigger or smarter buffers."
    )


if __name__ == "__main__":
    main()
