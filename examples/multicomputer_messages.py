#!/usr/bin/env python3
"""A four-node multicomputer built from ComCoBB chips.

Builds the kind of system the ComCoBB project targeted: four processing
nodes in a ring, two unidirectional links between each pair of
neighbours, virtual circuits between every ordered pair of nodes (taking
the short way around the ring), and a burst of variable-length messages
all in flight at once.  Verifies every byte arrives intact and reports
per-node traffic statistics.

Run:  python examples/multicomputer_messages.py
"""

from repro.chip import ChipNetwork
from repro.utils.rng import RandomStream
from repro.utils.tables import TextTable

NODES = ["node0", "node1", "node2", "node3"]


def ring_path(source: int, destination: int) -> list[str]:
    """Shortest path around the four-node ring."""
    forward = (destination - source) % 4
    step = 1 if forward <= 2 else -1
    path = [NODES[source]]
    position = source
    while position != destination:
        position = (position + step) % 4
        path.append(NODES[position])
    return path


def main() -> None:
    network = ChipNetwork()
    for name in NODES:
        network.add_node(name)
    # Ring wiring: port 0 -> clockwise neighbour, port 1 -> the other way.
    for index in range(4):
        network.connect(NODES[index], 0, NODES[(index + 1) % 4], 1)

    circuits = {}
    for source in range(4):
        for destination in range(4):
            if source != destination:
                circuits[(source, destination)] = network.open_circuit(
                    ring_path(source, destination)
                )

    rng = RandomStream(7, "messages")
    expected: dict[tuple[int, int], list[bytes]] = {}
    total_bytes = 0
    for burst in range(3):
        for (source, destination), circuit in circuits.items():
            size = rng.randint(1, 200)
            payload = bytes(
                (source * 16 + destination + i) % 256 for i in range(size)
            )
            network.send(circuit, payload)
            expected.setdefault((source, destination), []).append(payload)
            total_bytes += size

    cycles = network.run_until_idle()
    print(
        f"delivered {total_bytes} payload bytes over "
        f"{len(circuits)} circuits in {cycles} cycles\n"
    )

    errors = 0
    for (source, destination), payloads in expected.items():
        circuit = circuits[(source, destination)]
        received = [
            message.payload
            for message in network.nodes[NODES[destination]].host.received_messages
            if message.delivery_tag == circuit.delivery_tag
        ]
        if received != payloads:
            errors += 1
            print(f"MISMATCH on {NODES[source]} -> {NODES[destination]}")
    print(f"integrity check: {'PASS' if errors == 0 else f'{errors} FAILURES'}")

    table = TextTable(
        "Per-node statistics",
        ["Node", "messages sent", "packets delivered to host", "messages received"],
    )
    for name in NODES:
        host = network.nodes[name].host
        table.add_row(
            [name, host.messages_sent, host.packets_delivered,
             len(host.received_messages)]
        )
    print()
    print(table.render())
    network.check_invariants()
    print("\nall chip buffer invariants hold after the burst")


if __name__ == "__main__":
    main()
