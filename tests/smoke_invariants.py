#!/usr/bin/env python3
"""Smoke check that invariant detection survives ``python -O``.

``python -O`` strips every ``assert`` statement, so structural
self-checks implemented with bare asserts silently stop firing.  This
script — intentionally written without a single ``assert`` — corrupts
one data structure per layer and verifies :class:`repro.errors.
InvariantError` is still raised.  CI runs it under ``python -O``.

Exit status 0 means every corruption was detected; any other status is a
regression.
"""

import sys

from repro.core import DamqBuffer, FifoBuffer, SafcBuffer, SlotListManager
from repro.core.linkedlist import NO_SLOT
from repro.core.packet import Packet
from repro.errors import InvariantError

FAILURES: list[str] = []


def expect_detection(label, corrupt):
    """Run one corruption scenario; record whether detection fired."""
    try:
        corrupt()
    except InvariantError:
        print(f"  detected: {label}")
        return
    FAILURES.append(label)
    print(f"  MISSED:   {label}")


def corrupt_linked_list():
    manager = SlotListManager(num_slots=4, num_lists=2)
    manager.allocate(0)
    manager.allocate(0)
    manager._next[manager._head[0]] = NO_SLOT  # sever the chain
    manager.check_invariants()


def corrupt_retirement_books():
    manager = SlotListManager(num_slots=4, num_lists=2)
    manager.retire_slot()
    manager._retired.add(manager.free_slots()[0])  # live slot marked dead
    manager.check_invariants()


def corrupt_damq_count_cache():
    buffer = DamqBuffer(capacity=4, num_outputs=2)
    buffer.push(Packet(packet_id=1, source=0, destination=0), 0)
    buffer._packet_counts[0] = 2
    buffer.check_invariants()


def corrupt_fifo_used_counter():
    buffer = FifoBuffer(capacity=4, num_outputs=2)
    buffer.push(Packet(packet_id=1, source=0, destination=0), 0)
    buffer._used = 3
    buffer.check_invariants()


def corrupt_safc_partition():
    buffer = SafcBuffer(capacity=4, num_outputs=2)
    buffer.push(Packet(packet_id=1, source=0, destination=0), 0)
    buffer._used[0] = 2
    buffer.check_invariants()


def main() -> int:
    optimized = not __debug__
    print(
        f"invariant smoke check (python {'-O' if optimized else 'default'}, "
        f"__debug__={__debug__})"
    )
    expect_detection("severed linked-list chain", corrupt_linked_list)
    expect_detection("phantom retired slot", corrupt_retirement_books)
    expect_detection("DAMQ count-cache drift", corrupt_damq_count_cache)
    expect_detection("FIFO used-counter drift", corrupt_fifo_used_counter)
    expect_detection("SAFC partition drift", corrupt_safc_partition)
    if FAILURES:
        print(f"FAIL: {len(FAILURES)} corruption(s) went undetected")
        return 1
    print("OK: every corruption detected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
