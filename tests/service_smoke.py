#!/usr/bin/env python
"""CI smoke check for the fault-tolerant simulation service.

End-to-end, against a real ``python -m repro.service serve`` process:

1. **Chaos-run byte identity**: ``figure3`` (quick) submitted to a
   service whose chaos mode kills every task's first worker attempt
   mid-simulation must complete — via supervised retries resuming from
   checkpoints — with a report byte-identical to a plain serial
   ``run_experiment`` in this process.
2. **Dedup**: submitting the same spec a second time is a cache hit:
   zero simulation tasks execute and the payload is byte-identical.
3. **Supervision evidence**: the server's stats must show the injected
   worker deaths (restarts and retries actually happened — the identity
   in (1) was recovered, not lucky).

Usage::

    PYTHONPATH=src python tests/service_smoke.py [experiment]

No pytest dependency — a plain script the CI job (and a curious
developer) can run directly.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.runner import run_experiment  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402


def fail(message: str) -> None:
    print(f"service-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def start_server(scratch: Path) -> tuple[subprocess.Popen, str]:
    """Launch the real CLI server with chaos kills; return (proc, url).

    ``--chaos-kill 1.0`` kills every task's first (and second) worker
    attempt partway into the simulation; the default injection bound of
    2 plus the 4-attempt retry budget guarantees completion.
    """
    port_file = scratch / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "serve",
            "--port",
            "0",
            "--port-file",
            str(port_file),
            "--workers",
            "2",
            "--checkpoint-every",
            "250",
            "--data-dir",
            str(scratch / "data"),
            "--chaos-kill",
            "1.0",
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            port = int(port_file.read_text().strip())
            return process, f"http://127.0.0.1:{port}"
        if process.poll() is not None:
            fail(
                "server exited before binding: "
                f"{process.stderr.read() if process.stderr else ''}"
            )
        time.sleep(0.1)
    process.kill()
    fail("server never wrote its port file")
    raise AssertionError  # unreachable; keeps the type checker honest


def main() -> None:
    experiment = sys.argv[1] if len(sys.argv) > 1 else "figure3"

    print(f"service-smoke: serial baseline run of {experiment} (quick)")
    serial = run_experiment(experiment, quick=True).render()

    with tempfile.TemporaryDirectory(prefix="service-smoke-") as name:
        scratch = Path(name)
        process, url = start_server(scratch)
        try:
            client = ServiceClient(url)

            print(f"service-smoke: submitting {experiment} under chaos kills")
            status, first = client.submit(experiment, wait=True)
            if status != 200 or first.get("status") != "done":
                fail(f"chaos submit did not complete: {status} {first}")
            if first.get("source") != "fresh":
                fail(f"first submit should simulate, got {first.get('source')}")
            if first["result"]["report"] != serial:
                fail("chaos-run report differs from the serial run")
            print(
                "service-smoke: chaos run byte-identical "
                f"({first['tasks_executed']} tasks, "
                f"{first['job_seconds']:.2f}s)"
            )

            status, second = client.submit(experiment, wait=True)
            if status != 200 or not second.get("cache_hit"):
                fail(f"second submit was not a cache hit: {status} {second}")
            if second.get("tasks_executed") != 0:
                fail(
                    "cache hit ran "
                    f"{second.get('tasks_executed')} simulations (want 0)"
                )
            if second["result"]["report"] != serial:
                fail("cached report differs from the serial run")
            print("service-smoke: warm resubmit hit the cache, 0 simulations")

            pool = client.stats()["pool"]
            if pool["worker_restarts"] < 1 or pool["tasks_retried"] < 1:
                fail(
                    "chaos was configured but left no supervision "
                    f"evidence: {pool}"
                )
            print(
                "service-smoke: supervisor recovered "
                f"{pool['worker_restarts']} worker deaths "
                f"({pool['tasks_retried']} task retries, "
                f"mean recovery {pool['mean_recovery_seconds']:.2f}s)"
            )
        finally:
            process.terminate()
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()

    print("service-smoke: OK")


if __name__ == "__main__":
    main()
