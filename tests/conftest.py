"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet, PacketFactory


@pytest.fixture
def factory() -> PacketFactory:
    """A fresh packet factory per test."""
    return PacketFactory()


def make_packet(
    packet_id: int = 0,
    source: int = 0,
    destination: int = 0,
    size: int = 1,
    route: tuple[int, ...] = (),
) -> Packet:
    """Convenience constructor for buffer-level tests."""
    return Packet(
        packet_id=packet_id,
        source=source,
        destination=destination,
        route=route,
        size=size,
    )


def fill_buffer(buffer, destination: int, count: int, start_id: int = 100):
    """Push ``count`` size-1 packets for one destination; return them."""
    packets = []
    for offset in range(count):
        packet = make_packet(packet_id=start_id + offset, destination=destination)
        buffer.push(packet, destination)
        packets.append(packet)
    return packets
