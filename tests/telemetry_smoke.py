#!/usr/bin/env python
"""CI smoke check for the telemetry subsystem.

Four end-to-end properties, checked on a real (short) figure3-style
configuration:

1. **Artifacts are valid**: a traced run exports a VCD waveform that the
   structural VCD parser accepts, a Chrome ``trace_event`` JSON that its
   validator accepts (loadable in ``about://tracing``), and a metrics
   document the report renderer consumes.
2. **Counters reconcile**: per-buffer enqueue/dequeue totals, arbiter
   grants, and the network delivery counters agree exactly with the
   datapath's own accounting (sinks, meters, buffered residue).
3. **Results are unperturbed**: the traced run's meters are bit-identical
   to a plain run of the same config.
4. **Disabled path is free**: with telemetry off, ``make_simulator``
   returns the exact plain class, and an interleaved min-of-k timing of
   two identical disabled builds stays within 2% of each other —
   demonstrating the off-default adds no measurable overhead (both
   halves ARE the plain simulator; the comparison bounds timing noise,
   with one retry to absorb a noisy runner).

Usage::

    PYTHONPATH=src python tests/telemetry_smoke.py

No pytest dependency — a plain script CI (and a curious developer) can
run directly; exits non-zero with a diagnostic on the first violation.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.network.simulator import (  # noqa: E402
    NetworkConfig,
    OmegaNetworkSimulator,
    make_simulator,
)
from repro.telemetry import (  # noqa: E402
    TracedOmegaNetworkSimulator,
    read_vcd,
    render_report,
    validate_chrome_trace,
)
from repro.telemetry.report import (  # noqa: E402
    merge_metrics_documents,
    metrics_files,
)

#: The figure3 headline configuration at smoke scale: DAMQ, four slots,
#: blocking protocol, uniform traffic (Section 4.2.1 of the paper).
CONFIG = NetworkConfig(
    num_ports=16,
    radix=4,
    buffer_kind="DAMQ",
    slots_per_buffer=4,
    offered_load=0.7,
    seed=1988,
)
WARMUP, MEASURE = 100, 400

#: Disabled-path overhead budget (ratio of interleaved min-of-k times).
MAX_OVERHEAD = 1.02


def fail(message: str) -> None:
    print(f"telemetry-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_traced_run(export_dir: Path) -> None:
    """Properties 1-3: valid artifacts, exact reconciliation, no drift."""
    plain = OmegaNetworkSimulator(CONFIG)
    plain.run(WARMUP, MEASURE)

    traced = TracedOmegaNetworkSimulator(CONFIG, export_dir=export_dir)
    traced.run(WARMUP, MEASURE)

    if traced.meters.latency.get_state() != plain.meters.latency.get_state():
        fail("traced run perturbed the latency statistics")
    if (traced.meters.delivered, traced.meters.discarded) != (
        plain.meters.delivered,
        plain.meters.discarded,
    ):
        fail("traced run perturbed the delivery counters")
    print(
        f"telemetry-smoke: traced run bit-identical to plain "
        f"(delivered={traced.meters.delivered})"
    )

    vcd_info = read_vcd(next(export_dir.glob("*.vcd")))
    if not vcd_info["signals"] or not vcd_info["changes"]:
        fail(f"VCD export has no signals/changes: {vcd_info}")
    print(
        f"telemetry-smoke: VCD valid ({len(vcd_info['signals'])} signals, "
        f"{vcd_info['changes']} changes)"
    )

    trace_path = next(export_dir.glob("*.trace.json"))
    counts = validate_chrome_trace(trace_path)
    if not counts["counters"] or not counts["instants"]:
        fail(f"Chrome trace export is empty: {counts}")
    print(
        f"telemetry-smoke: Chrome trace valid ({counts['counters']} "
        f"counters, {counts['instants']} instants)"
    )

    metrics = traced.session.metrics
    delivered_total = sum(
        sink.received for row in traced._exit_sinks for sink in row
    )
    checks = [
        (
            "delivered_total == sum of sink.received",
            metrics.value("packets_delivered_total"),
            delivered_total,
        ),
        (
            "delivered_measured == meters.delivered",
            metrics.value("packets_delivered_measured"),
            traced.meters.delivered,
        ),
        (
            "discarded_measured == meters.discarded",
            metrics.value("packets_discarded_measured"),
            traced.meters.discarded,
        ),
        (
            "enqueues - dequeues == packets still buffered",
            metrics.value("buffer_enqueues_total")
            - metrics.value("buffer_dequeues_total"),
            traced.total_buffered_packets,
        ),
        (
            "arbiter grants == buffer dequeues",
            metrics.value("arbiter_grants_total"),
            metrics.value("buffer_dequeues_total"),
        ),
    ]
    for description, actual, expected in checks:
        if actual != expected:
            fail(f"{description}: {actual} != {expected}")
    print(f"telemetry-smoke: {len(checks)} counter reconciliations exact")

    registry, info = merge_metrics_documents(metrics_files(export_dir))
    report = render_report(registry, info)
    if "arbitration fairness" not in report or "hot queues" not in report:
        fail("rendered report is missing expected sections")
    print("telemetry-smoke: report renders from the exported document")


def _min_of_k_interleaved(runs: int = 3) -> tuple[float, float]:
    """Interleaved min-of-k wall times of two identical DISABLED builds.

    Both halves construct and run the plain simulator through
    ``make_simulator`` with telemetry off; interleaving A/B per round
    cancels thermal and scheduling drift, and min-of-k discards outlier
    runs.  The ratio between the halves bounds the measurement noise —
    and therefore the largest overhead the disabled default could be
    hiding.
    """
    config = CONFIG.with_overrides(offered_load=0.5)
    best_a = best_b = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        make_simulator(config).run(50, 150)
        best_a = min(best_a, time.perf_counter() - started)
        started = time.perf_counter()
        make_simulator(config).run(50, 150)
        best_b = min(best_b, time.perf_counter() - started)
    return best_a, best_b


def check_disabled_path() -> None:
    """Property 4: telemetry off means the plain class and no overhead."""
    for variable in ("REPRO_TRACE", "REPRO_METRICS", "REPRO_SANITIZE"):
        os.environ.pop(variable, None)
    simulator = make_simulator(CONFIG)
    if type(simulator) is not OmegaNetworkSimulator:
        fail(
            f"disabled default built {type(simulator).__name__}, "
            f"not the plain OmegaNetworkSimulator"
        )
    print("telemetry-smoke: disabled default constructs the plain class")

    for attempt in range(2):
        time_a, time_b = _min_of_k_interleaved()
        ratio = max(time_a, time_b) / min(time_a, time_b)
        if ratio < MAX_OVERHEAD:
            print(
                f"telemetry-smoke: disabled-path overhead bound "
                f"{ratio:.4f}x < {MAX_OVERHEAD}x "
                f"({time_a * 1000:.1f}ms vs {time_b * 1000:.1f}ms)"
            )
            return
        print(
            f"telemetry-smoke: noisy timing round ({ratio:.4f}x), "
            f"retry {attempt + 1}"
        )
    fail(
        f"disabled-path timing ratio {ratio:.4f}x exceeds {MAX_OVERHEAD}x "
        f"after retries (noisy runner or real overhead on the off path)"
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="telemetry_smoke_") as scratch:
        check_traced_run(Path(scratch))
    check_disabled_path()
    print("telemetry-smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
