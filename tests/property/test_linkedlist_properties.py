"""Property-based tests for the slot linked-list manager.

The manager is the foundation under both DAMQ models; these tests drive it
with arbitrary operation sequences and check slot conservation, FIFO order
and equivalence with a reference implementation built on plain deques.
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linkedlist import SlotListManager
from repro.errors import BufferEmptyError, BufferFullError

NUM_LISTS = 3
NUM_SLOTS = 8

#: An operation: (op, list_id).
operations = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "release"]),
        st.integers(min_value=0, max_value=NUM_LISTS - 1),
    ),
    max_size=60,
)


class ReferenceLists:
    """Trivially correct model: one deque per list plus a free deque."""

    def __init__(self) -> None:
        self.free = deque(range(NUM_SLOTS))
        self.lists = [deque() for _ in range(NUM_LISTS)]

    def alloc(self, list_id):
        slot = self.free.popleft()
        self.lists[list_id].append(slot)
        return slot

    def release(self, list_id):
        slot = self.lists[list_id].popleft()
        self.free.append(slot)
        return slot


@given(operations)
@settings(max_examples=200)
def test_matches_reference_model(ops):
    manager = SlotListManager(NUM_SLOTS, NUM_LISTS)
    reference = ReferenceLists()
    for op, list_id in ops:
        if op == "alloc":
            if reference.free:
                assert manager.allocate(list_id) == reference.alloc(list_id)
            else:
                try:
                    manager.allocate(list_id)
                    raise AssertionError("expected BufferFullError")
                except BufferFullError:
                    pass
        else:
            if reference.lists[list_id]:
                assert manager.release_head(list_id) == reference.release(list_id)
            else:
                try:
                    manager.release_head(list_id)
                    raise AssertionError("expected BufferEmptyError")
                except BufferEmptyError:
                    pass
        # Structural invariants hold after every single operation.
        manager.check_invariants()
        for list_id2 in range(NUM_LISTS):
            assert manager.slots(list_id2) == list(reference.lists[list_id2])
        assert manager.free_slots() == list(reference.free)


@given(operations)
@settings(max_examples=100)
def test_slot_conservation(ops):
    manager = SlotListManager(NUM_SLOTS, NUM_LISTS)
    for op, list_id in ops:
        try:
            if op == "alloc":
                manager.allocate(list_id)
            else:
                manager.release_head(list_id)
        except (BufferFullError, BufferEmptyError):
            continue
    total = manager.free_count + sum(
        manager.length(list_id) for list_id in range(NUM_LISTS)
    )
    assert total == NUM_SLOTS


@given(st.integers(min_value=1, max_value=NUM_SLOTS))
def test_fifo_order_for_any_batch_size(batch):
    manager = SlotListManager(NUM_SLOTS, 1)
    allocated = [manager.allocate(0) for _ in range(batch)]
    released = [manager.release_head(0) for _ in range(batch)]
    assert released == allocated
