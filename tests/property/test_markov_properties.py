"""Property-based tests on the Markov analysis.

These pin mathematical invariants that must hold for *any* parameters:
stochastic transition rows, probabilities in [0, 1], flow conservation,
and monotonicity of discarding in traffic rate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.arbitration import service_outcomes
from repro.markov.models import SwitchChainBuilder
from repro.markov.ports import port_model

KINDS = ["FIFO", "DAMQ", "SAMQ", "SAFC"]

_BUILDERS: dict[tuple[str, int], SwitchChainBuilder] = {}


def builder_for(kind: str, slots: int) -> SwitchChainBuilder:
    key = (kind, slots)
    if key not in _BUILDERS:
        _BUILDERS[key] = SwitchChainBuilder(kind, slots)
    return _BUILDERS[key]


@settings(max_examples=40, deadline=None)
@given(
    kind=st.sampled_from(KINDS),
    slots=st.sampled_from([2, 4]),
    rate=st.floats(min_value=0.0, max_value=1.0),
)
def test_chain_rows_stochastic_and_probabilities_bounded(kind, slots, rate):
    builder = builder_for(kind, slots)
    chain = builder.chain(rate)  # constructor validates row sums
    row_sums = np.asarray(chain.matrix.sum(axis=1)).ravel()
    assert np.allclose(row_sums, 1.0, atol=1e-8)
    state = builder.analyze(rate)
    assert 0.0 <= state.discard_probability <= 1.0
    assert 0.0 <= state.throughput <= 1.0


@settings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(KINDS),
    rate=st.floats(min_value=0.05, max_value=1.0),
)
def test_flow_conservation(kind, rate):
    """Accepted arrival rate equals departure rate in steady state."""
    state = builder_for(kind, 4).analyze(rate)
    accepted = rate * (1.0 - state.discard_probability)
    assert state.throughput == pytest.approx(accepted, abs=1e-8)


@settings(max_examples=20, deadline=None)
@given(
    kind=st.sampled_from(KINDS),
    low=st.floats(min_value=0.1, max_value=0.5),
    delta=st.floats(min_value=0.05, max_value=0.4),
)
def test_discard_monotone_in_traffic(kind, low, delta):
    builder = builder_for(kind, 4)
    assert (
        builder.analyze(low).discard_probability
        <= builder.analyze(min(1.0, low + delta)).discard_probability + 1e-12
    )


@settings(max_examples=40, deadline=None)
@given(
    kind=st.sampled_from(KINDS),
    counts=st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
    ),
)
def test_service_outcomes_always_valid(kind, counts):
    """For any joint state: weights sum to 1, service sets are feasible."""
    model = port_model(kind, 4)
    if kind == "FIFO":
        states = [
            tuple([0] * counts[0] + [1] * counts[1]),
            tuple([1] * counts[2] + [0] * counts[3]),
        ]
    else:
        states = [(counts[0], counts[1]), (counts[2], counts[3])]
    outcomes = service_outcomes(model, states)
    assert sum(weight for weight, _ in outcomes) == 1
    sizes = set()
    for _weight, served in outcomes:
        sizes.add(len(served))
        outputs = [output for _input, output in served]
        assert len(set(outputs)) == len(outputs)  # one packet per output
        per_input: dict[int, int] = {}
        for input_port, _output in served:
            per_input[input_port] = per_input.get(input_port, 0) + 1
        assert all(
            count <= model.max_serves_per_cycle for count in per_input.values()
        )
        for input_port, output in served:
            assert model.queue_lengths(states[input_port])[output] > 0
    assert len(sizes) <= 1  # all outcomes serve the same (maximal) count
