"""Property-based tests: the four buffer architectures against a reference.

A reference model (per-destination deques plus the architecture's
acceptance rule) is driven in lockstep with the real buffers through
arbitrary push/pop sequences.  FIFO order per queue, occupancy accounting,
and acceptance decisions must agree everywhere.
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DamqBuffer, FifoBuffer, SafcBuffer, SamqBuffer
from repro.core.packet import Packet

NUM_OUTPUTS = 4
CAPACITY = 8

BUFFER_CLASSES = [FifoBuffer, SamqBuffer, SafcBuffer, DamqBuffer]

#: (op, destination): push or pop against one destination queue.
operations = st.lists(
    st.tuples(
        st.sampled_from(["push", "pop"]),
        st.integers(min_value=0, max_value=NUM_OUTPUTS - 1),
    ),
    max_size=80,
)


class ReferenceBuffer:
    """Deque-based model of each architecture's acceptance/visibility."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.queues = [deque() for _ in range(NUM_OUTPUTS)]
        self.order = deque()  # arrival order, for FIFO visibility

    def occupancy(self) -> int:
        return sum(len(queue) for queue in self.queues)

    def can_accept(self, destination: int) -> bool:
        if self.kind == "FIFO":
            return self.occupancy() < CAPACITY
        if self.kind == "DAMQ":
            return self.occupancy() < CAPACITY
        return len(self.queues[destination]) < CAPACITY // NUM_OUTPUTS

    def push(self, packet, destination: int) -> None:
        self.queues[destination].append(packet)
        self.order.append((packet, destination))

    def visible(self, destination: int):
        if self.kind == "FIFO":
            if not self.order:
                return None
            packet, head_destination = self.order[0]
            return packet if head_destination == destination else None
        queue = self.queues[destination]
        return queue[0] if queue else None

    def pop(self, destination: int):
        packet = self.visible(destination)
        assert packet is not None
        self.queues[destination].popleft()
        if self.kind == "FIFO":
            self.order.popleft()
        else:
            self.order.remove((packet, destination))
        return packet


@settings(max_examples=120)
@given(ops=operations, cls=st.sampled_from(BUFFER_CLASSES))
def test_buffer_matches_reference(ops, cls):
    real = cls(CAPACITY, NUM_OUTPUTS)
    reference = ReferenceBuffer(cls.kind)
    next_id = 0
    for op, destination in ops:
        if op == "push":
            assert real.can_accept(destination) == reference.can_accept(
                destination
            ), f"can_accept diverged for {cls.kind}"
            if reference.can_accept(destination):
                packet = Packet(
                    packet_id=next_id, source=0, destination=destination
                )
                next_id += 1
                real.push(packet, destination)
                reference.push(packet, destination)
        else:
            expected = reference.visible(destination)
            actual = real.peek(destination)
            if expected is None:
                assert actual is None
            else:
                assert actual is expected
                assert real.pop(destination) is reference.pop(destination)
        assert real.occupancy == reference.occupancy()
    if isinstance(real, DamqBuffer):
        real.check_invariants()


@settings(max_examples=60)
@given(ops=operations)
def test_damq_total_slots_never_exceeded(ops):
    buffer = DamqBuffer(CAPACITY, NUM_OUTPUTS)
    next_id = 0
    for op, destination in ops:
        if op == "push" and buffer.can_accept(destination):
            buffer.push(
                Packet(packet_id=next_id, source=0, destination=destination),
                destination,
            )
            next_id += 1
        elif op == "pop" and buffer.peek(destination) is not None:
            buffer.pop(destination)
        assert 0 <= buffer.occupancy <= CAPACITY
        assert buffer.free_slots == CAPACITY - buffer.occupancy


@settings(max_examples=60)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=4), max_size=10),
    destination=st.integers(min_value=0, max_value=NUM_OUTPUTS - 1),
)
def test_damq_variable_size_slot_accounting(sizes, destination):
    """Multi-slot packets consume exactly their size and free it on pop."""
    buffer = DamqBuffer(16, NUM_OUTPUTS)
    accepted = []
    for index, size in enumerate(sizes):
        packet = Packet(
            packet_id=index, source=0, destination=destination, size=size
        )
        if buffer.can_accept(destination, size=size):
            buffer.push(packet, destination)
            accepted.append(packet)
    assert buffer.occupancy == sum(p.size for p in accepted)
    for packet in accepted:
        assert buffer.pop(destination) is packet
    assert buffer.occupancy == 0
    buffer.check_invariants()
