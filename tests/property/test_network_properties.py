"""Property-based tests over the network simulator's configuration space.

Randomized configurations (buffer type, load, protocol, arbitration,
packet sizes) must all preserve the fundamental accounting invariants:
packet conservation, capacity bounds, and correct delivery.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import NetworkConfig
from repro.network.simulator import OmegaNetworkSimulator
from repro.switch.flow_control import Protocol

configs = st.fixed_dictionaries(
    {
        "buffer_kind": st.sampled_from(["FIFO", "SAMQ", "SAFC", "DAMQ"]),
        "offered_load": st.sampled_from([0.1, 0.5, 0.9, 1.0]),
        "protocol": st.sampled_from([Protocol.BLOCKING, Protocol.DISCARDING]),
        "arbiter_kind": st.sampled_from(["smart", "dumb"]),
        "seed": st.integers(min_value=0, max_value=10_000),
        "slots_per_buffer": st.sampled_from([4, 8]),
    }
)


@settings(max_examples=25, deadline=None)
@given(config=configs)
def test_conservation_and_capacity(config):
    simulator = OmegaNetworkSimulator(
        NetworkConfig(num_ports=16, radix=4, **config)
    )
    simulator._measure_start_clock = 0  # count every discard
    for _ in range(150):
        simulator.step()
    generated = sum(source.generated for source in simulator.sources)
    delivered = sum(sink.received for sink in simulator.sinks)
    queued = sum(len(source.queue) for source in simulator.sources)
    in_network = simulator.total_buffered
    discarded = simulator.meters.discarded
    assert generated == delivered + queued + in_network + discarded
    assert all(sink.misrouted == 0 for sink in simulator.sinks)
    for row in simulator.switches:
        for switch in row:
            for buffer in switch.buffers:
                assert 0 <= buffer.occupancy <= buffer.capacity


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size_max=st.integers(min_value=1, max_value=3),
)
def test_variable_sizes_conserve_slots(seed, size_max):
    simulator = OmegaNetworkSimulator(
        NetworkConfig(
            num_ports=16,
            buffer_kind="DAMQ",
            slots_per_buffer=8,
            offered_load=0.8,
            packet_size=1,
            packet_size_max=size_max,
            seed=seed,
        )
    )
    for _ in range(120):
        simulator.step()
    for row in simulator.switches:
        for switch in row:
            for buffer in switch.buffers:
                buffer.check_invariants()
                assert buffer.occupancy == sum(
                    packet.size for packet in buffer.packets()
                )
