"""Property-based tests for the Omega topology over random sizes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import OmegaTopology

#: (radix, exponent) pairs small enough to check exhaustively per example.
shapes = st.sampled_from(
    [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (4, 2), (4, 3), (5, 2), (8, 2)]
)


@settings(max_examples=30, deadline=None)
@given(shape=shapes, data=st.data())
def test_random_pairs_self_route(shape, data):
    radix, exponent = shape
    num_ports = radix**exponent
    topology = OmegaTopology(num_ports, radix)
    source = data.draw(st.integers(min_value=0, max_value=num_ports - 1))
    destination = data.draw(st.integers(min_value=0, max_value=num_ports - 1))
    assert topology.delivered_output(source, destination) == destination
    route = topology.route(source, destination)
    assert len(route) == topology.num_stages
    assert all(0 <= port < radix for port in route)


@settings(max_examples=20, deadline=None)
@given(shape=shapes)
def test_shuffle_is_a_bijection(shape):
    radix, exponent = shape
    num_ports = radix**exponent
    topology = OmegaTopology(num_ports, radix)
    image = {topology.shuffle(link) for link in range(num_ports)}
    assert image == set(range(num_ports))
    for link in range(num_ports):
        assert topology.unshuffle(topology.shuffle(link)) == link


@settings(max_examples=20, deadline=None)
@given(shape=shapes, data=st.data())
def test_route_destination_only(shape, data):
    """An Omega route depends only on the destination, never the source —
    the property that makes destination-tag self-routing possible."""
    radix, exponent = shape
    num_ports = radix**exponent
    topology = OmegaTopology(num_ports, radix)
    destination = data.draw(st.integers(min_value=0, max_value=num_ports - 1))
    source_a = data.draw(st.integers(min_value=0, max_value=num_ports - 1))
    source_b = data.draw(st.integers(min_value=0, max_value=num_ports - 1))
    assert topology.route(source_a, destination) == topology.route(
        source_b, destination
    )
