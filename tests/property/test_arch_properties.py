"""Property-based tests for the ``repro.arch`` architecture zoo.

The two guarantees the zoo's buffers sell:

* **DAMQ-RSV never starves a below-quota output** — whatever push/pop/
  retire sequence ran before, an output currently holding fewer packets
  than its reservation must be able to accept a one-slot packet.  (This
  is the property plain DAMQ violates; the model checker's committed
  counterexample pins that.)
* **CQ crosspoints are hard partitions** — no sequence of operations
  drives any per-crosspoint occupancy above its dedicated (effective)
  capacity, and the total never exceeds the budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import CrosspointBuffer, DamqReservedBuffer
from repro.core.packet import Packet
from repro.errors import FaultError

NUM_OUTPUTS = 4
CAPACITY = 8

#: (op, destination): push, pop, or (destination-ignored) retire.
operations = st.lists(
    st.tuples(
        st.sampled_from(["push", "pop", "retire"]),
        st.integers(min_value=0, max_value=NUM_OUTPUTS - 1),
    ),
    max_size=80,
)


def _drive(buffer, ops):
    """Apply an arbitrary operation sequence, yielding after each step."""
    next_id = 0
    for op, destination in ops:
        if op == "push":
            if buffer.can_accept(destination):
                buffer.push(
                    Packet(
                        packet_id=next_id, source=0, destination=destination
                    ),
                    destination,
                )
                next_id += 1
        elif op == "pop":
            if buffer.peek(destination) is not None:
                buffer.pop(destination)
        else:
            try:
                buffer.retire_slot()
            except FaultError:
                pass  # no retirable slot left — a legal refusal
        buffer.check_invariants()
        yield


@settings(max_examples=150)
@given(ops=operations, reserved=st.integers(min_value=1, max_value=2))
def test_damq_reserved_never_rejects_below_quota(ops, reserved):
    buffer = DamqReservedBuffer(CAPACITY, NUM_OUTPUTS, reserved=reserved)
    for _ in _drive(buffer, ops):
        for output in range(NUM_OUTPUTS):
            if buffer.queue_length(output) < reserved:
                assert buffer.can_accept(output), (
                    f"output {output} holds "
                    f"{buffer.queue_length(output)} < quota {reserved} "
                    f"yet is rejected (lengths {buffer.queue_lengths()})"
                )


@settings(max_examples=150)
@given(ops=operations)
def test_crosspoint_occupancy_never_exceeds_dedicated_capacity(ops):
    buffer = CrosspointBuffer(CAPACITY, NUM_OUTPUTS)
    for _ in _drive(buffer, ops):
        total = 0
        for output in range(NUM_OUTPUTS):
            used = buffer.crosspoint_occupancy(output)
            assert used <= buffer.effective_crosspoint_capacity(output)
            assert (
                buffer.effective_crosspoint_capacity(output)
                <= buffer.crosspoint_capacity
            )
            total += used
        assert total == buffer.occupancy <= buffer.effective_capacity


@settings(max_examples=100)
@given(ops=operations, reserved=st.integers(min_value=1, max_value=2))
def test_damq_reserved_snapshot_round_trip(ops, reserved):
    buffer = DamqReservedBuffer(CAPACITY, NUM_OUTPUTS, reserved=reserved)
    for _ in _drive(buffer, ops):
        pass
    clone = DamqReservedBuffer(CAPACITY, NUM_OUTPUTS, reserved=reserved)
    clone.restore_state(buffer.snapshot_state())
    assert clone.canonical_state() == buffer.canonical_state()
    assert clone.shared_used == buffer.shared_used
    assert [
        clone.can_accept(output) for output in range(NUM_OUTPUTS)
    ] == [buffer.can_accept(output) for output in range(NUM_OUTPUTS)]
