"""Property-based cross-backend equivalence for the simulation kernels.

The vectorized numpy kernel claims *byte identity* with the reference
simulator — not statistical agreement.  Hypothesis drives randomized
configurations (buffer kind, protocol, arbiter, traffic, load, seed)
through both backends and asserts the complete packed result state —
every counter and the exact Welford accumulator state — is equal, plus
the packed per-cycle state digests at the end of the run.

Batching is part of the claim too: fusing several configurations into
one struct-of-arrays kernel must leave each configuration's results
identical to running it alone.
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.base import make_kernel
from repro.kernel.numpy_kernel import NumpyKernel, batch_group_key
from repro.network import NetworkConfig
from repro.switch.flow_control import Protocol
from repro.utils.digest import digest_json

configs = st.fixed_dictionaries(
    {
        "buffer_kind": st.sampled_from(["FIFO", "SAMQ", "SAFC", "DAMQ"]),
        "offered_load": st.sampled_from([0.1, 0.5, 0.9, 1.0]),
        "protocol": st.sampled_from([Protocol.BLOCKING, Protocol.DISCARDING]),
        "arbiter_kind": st.sampled_from(["smart", "dumb"]),
        "traffic_kind": st.sampled_from(["uniform", "hotspot"]),
        "seed": st.integers(min_value=0, max_value=10_000),
        # SAMQ statically partitions capacity across the radix-4 output
        # ports, so slots must stay divisible by 4.
        "slots_per_buffer": st.sampled_from([4, 8]),
        "discard_at_injection": st.booleans(),
    }
)


def both_backends(config, warmup=30, measure=90):
    reference = make_kernel(config, "reference")
    vectorized = make_kernel(config, "numpy")
    reference_result = reference.run(warmup, measure)
    numpy_result = vectorized.run(warmup, measure)
    return reference, vectorized, reference_result, numpy_result


@settings(max_examples=20, deadline=None)
@given(config=configs)
def test_backends_agree_on_random_configs(config):
    network = NetworkConfig(num_ports=16, radix=4, **config)
    reference, vectorized, ref_result, np_result = both_backends(network)
    # Byte identity of the complete result state: every counter and the
    # exact streaming-statistics state, not just headline metrics.
    assert ref_result.to_state() == np_result.to_state()
    # And of the packed simulator state the differential harness hashes.
    assert reference.state_digest() == vectorized.state_digest()


@settings(max_examples=8, deadline=None)
@given(
    kind=st.sampled_from(["FIFO", "DAMQ"]),
    protocol=st.sampled_from([Protocol.BLOCKING, Protocol.DISCARDING]),
    loads=st.lists(
        st.sampled_from([0.2, 0.4, 0.7, 1.0]),
        min_size=2,
        max_size=4,
        unique=True,
    ),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_batched_run_matches_individual_runs(kind, protocol, loads, seed):
    members = [
        NetworkConfig(
            num_ports=16,
            radix=4,
            buffer_kind=kind,
            protocol=protocol,
            offered_load=load,
            seed=seed,
        )
        for load in loads
    ]
    keys = {batch_group_key(config) for config in members}
    assert len(keys) == 1, "loads must not split the batch group"
    batched = NumpyKernel.batch(members).run_batch(20, 80)
    for config, fused in zip(members, batched):
        alone = NumpyKernel(config).run(20, 80)
        assert fused.to_state() == alone.to_state()


@settings(max_examples=10, deadline=None)
@given(config=configs, cycles=st.integers(min_value=1, max_value=40))
def test_stepwise_digests_match_cycle_by_cycle(config, cycles):
    # The differential harness's core claim: the packed states agree at
    # *every* cycle boundary, not only at the end of a run.
    network = NetworkConfig(num_ports=16, radix=4, **config)
    reference = make_kernel(network, "reference")
    vectorized = make_kernel(network, "numpy")
    for cycle in range(cycles):
        reference.step()
        vectorized.step()
        assert reference.state_digest() == vectorized.state_digest(), (
            f"diverged at cycle {cycle + 1}"
        )


def test_result_state_digest_is_json_stable():
    # to_state() must stay digestible by the shared canonical encoder —
    # the differential harness pins result digests through digest_json.
    config = NetworkConfig(num_ports=16, radix=4, seed=1988)
    result = make_kernel(config, "numpy").run(20, 60)
    assert digest_json(result.to_state()) == digest_json(result.to_state())
