"""Property-based tests on the chip model: arbitrary messages arrive intact.

Random payloads of arbitrary sizes, over random topologies of up to five
nodes, possibly several circuits at once — every byte must come out exactly
as it went in, every buffer must drain, and the structural invariants must
hold afterwards.  This is the end-to-end data-integrity property the whole
linked-list/cut-through machinery exists to preserve.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip import ChipNetwork

payloads = st.binary(min_size=1, max_size=300)


@settings(max_examples=30, deadline=None)
@given(payload=payloads)
def test_single_hop_roundtrip(payload):
    network = ChipNetwork()
    network.add_node("A")
    network.add_node("B")
    network.connect("A", 0, "B", 0)
    circuit = network.open_circuit(["A", "B"])
    network.send(circuit, payload)
    network.run_until_idle()
    messages = network.nodes["B"].host.received_messages
    assert len(messages) == 1
    assert messages[0].payload == payload
    network.check_invariants()
    assert network.nodes["A"].chip.resident_packets == 0
    assert network.nodes["B"].chip.resident_packets == 0


@settings(max_examples=20, deadline=None)
@given(
    payloads_list=st.lists(payloads, min_size=1, max_size=5),
    hops=st.integers(min_value=2, max_value=5),
)
def test_chain_of_nodes_delivers_everything(payloads_list, hops):
    network = ChipNetwork()
    names = [f"N{i}" for i in range(hops)]
    for name in names:
        network.add_node(name)
    for index, (left, right) in enumerate(zip(names[:-1], names[1:])):
        out_port = 0 if index == 0 else 1
        network.connect(left, out_port, right, 0)
    circuit = network.open_circuit(names)
    for payload in payloads_list:
        network.send(circuit, payload)
    network.run_until_idle()
    received = [
        message.payload
        for message in network.nodes[names[-1]].host.received_messages
    ]
    assert received == payloads_list  # in-order delivery on one circuit
    network.check_invariants()


@settings(max_examples=15, deadline=None)
@given(
    payload_ab=payloads,
    payload_ba=payloads,
    payload_ac=payloads,
)
def test_concurrent_circuits_do_not_interfere(payload_ab, payload_ba, payload_ac):
    """A star of three nodes with crossing traffic stays consistent."""
    network = ChipNetwork()
    for name in "ABC":
        network.add_node(name)
    network.connect("A", 0, "B", 0)
    network.connect("A", 1, "C", 0)
    ab = network.open_circuit(["A", "B"])
    ba = network.open_circuit(["B", "A"])
    ac = network.open_circuit(["A", "C"])
    network.send(ab, payload_ab)
    network.send(ba, payload_ba)
    network.send(ac, payload_ac)
    network.run_until_idle()
    assert network.nodes["B"].host.received_messages[0].payload == payload_ab
    assert network.nodes["A"].host.received_messages[0].payload == payload_ba
    assert network.nodes["C"].host.received_messages[0].payload == payload_ac
    network.check_invariants()


@settings(max_examples=10, deadline=None)
@given(
    payloads_list=st.lists(payloads, min_size=2, max_size=6),
    num_slots=st.sampled_from([8, 12]),
)
def test_relay_contention_with_flow_control(payloads_list, num_slots):
    """Two senders funnel through one relay node: flow control must hold
    everything together with small buffers."""
    network = ChipNetwork(num_slots=num_slots)
    for name in ("L", "R", "M", "D"):
        network.add_node(name)
    network.connect("L", 0, "M", 0)
    network.connect("R", 0, "M", 1)
    network.connect("M", 2, "D", 0)
    left = network.open_circuit(["L", "M", "D"])
    right = network.open_circuit(["R", "M", "D"])
    for index, payload in enumerate(payloads_list):
        network.send(left if index % 2 == 0 else right, payload)
    network.run_until_idle()
    received = network.nodes["D"].host.received_messages
    assert len(received) == len(payloads_list)
    by_tag: dict[int, list[bytes]] = {}
    for message in received:
        by_tag.setdefault(message.delivery_tag, []).append(message.payload)
    assert by_tag.get(left.delivery_tag, []) == payloads_list[0::2]
    assert by_tag.get(right.delivery_tag, []) == payloads_list[1::2]
    network.check_invariants()
