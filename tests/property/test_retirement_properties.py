"""Property-based tests for slot retirement under random interleavings.

Graceful degradation must preserve every structural invariant no matter
when hard faults strike: these tests interleave allocate / release /
retire / restore operations arbitrarily and check slot conservation
(free + listed + retired == total), that retired slots never reappear on
any list, and that a reference model built on plain sets and deques
agrees about which slots are alive.
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DamqBuffer, FifoBuffer, SafcBuffer, SamqBuffer
from repro.core.linkedlist import SlotListManager
from repro.core.packet import Packet
from repro.errors import (
    BufferEmptyError,
    BufferFullError,
    FaultError,
    InvariantError,
)

NUM_LISTS = 3
NUM_SLOTS = 8

#: An operation: (op, list_id).  ``retire``/``restore`` ignore list_id.
operations = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "release", "retire", "restore"]),
        st.integers(min_value=0, max_value=NUM_LISTS - 1),
    ),
    max_size=80,
)


class ReferenceRetirement:
    """Trivially correct model of the pool with retirement."""

    def __init__(self) -> None:
        self.free = deque(range(NUM_SLOTS))
        self.lists = [deque() for _ in range(NUM_LISTS)]
        self.retired: list[int] = []

    @property
    def usable(self) -> int:
        return NUM_SLOTS - len(self.retired)

    def alloc(self, list_id):
        slot = self.free.popleft()
        self.lists[list_id].append(slot)
        return slot

    def release(self, list_id):
        slot = self.lists[list_id].popleft()
        self.free.append(slot)
        return slot

    def retire(self):
        slot = self.free.popleft()
        self.retired.append(slot)
        return slot

    def restore(self):
        slot = self.retired.pop()
        self.free.append(slot)
        return slot


@given(operations)
@settings(max_examples=200)
def test_matches_reference_model_with_retirement(ops):
    manager = SlotListManager(NUM_SLOTS, NUM_LISTS)
    reference = ReferenceRetirement()
    for op, list_id in ops:
        if op == "alloc":
            if reference.free:
                assert manager.allocate(list_id) == reference.alloc(list_id)
            else:
                try:
                    manager.allocate(list_id)
                    raise AssertionError("expected BufferFullError")
                except BufferFullError:
                    pass
        elif op == "release":
            if reference.lists[list_id]:
                assert manager.release_head(list_id) == reference.release(
                    list_id
                )
            else:
                try:
                    manager.release_head(list_id)
                    raise AssertionError("expected BufferEmptyError")
                except BufferEmptyError:
                    pass
        elif op == "retire":
            # The implementation retires the free-list head, like the
            # reference; it must refuse only when no free slot exists or
            # the pool would be left with a single usable slot.
            if reference.free and reference.usable > 1:
                assert manager.retire_slot() == reference.retire()
            else:
                try:
                    manager.retire_slot()
                    raise AssertionError("expected FaultError")
                except FaultError:
                    pass
        else:  # restore
            if reference.retired:
                slot = reference.retired[-1]
                manager.restore_slot(slot)
                assert reference.restore() == slot
            else:
                pass  # nothing to restore
        # Structural invariants hold after every single operation.
        manager.check_invariants()
        for list_id2 in range(NUM_LISTS):
            assert manager.slots(list_id2) == list(reference.lists[list_id2])
        assert set(manager.retired_slots()) == set(reference.retired)
        assert manager.usable_slots == reference.usable


@given(operations)
@settings(max_examples=100)
def test_slot_conservation_with_retirement(ops):
    manager = SlotListManager(NUM_SLOTS, NUM_LISTS)
    for op, list_id in ops:
        try:
            if op == "alloc":
                manager.allocate(list_id)
            elif op == "release":
                manager.release_head(list_id)
            elif op == "retire":
                manager.retire_slot()
            else:
                retired = manager.retired_slots()
                if retired:
                    manager.restore_slot(retired[0])
        except (BufferFullError, BufferEmptyError, FaultError):
            continue
    listed = sum(manager.length(list_id) for list_id in range(NUM_LISTS))
    assert (
        manager.free_count + listed + manager.retired_count == NUM_SLOTS
    )
    # Retired slots never appear on any list or the free list.
    on_lists = {
        slot
        for list_id in range(NUM_LISTS)
        for slot in manager.slots(list_id)
    }
    assert not on_lists & set(manager.retired_slots())
    assert not set(manager.free_slots()) & set(manager.retired_slots())


#: Buffer-level operations: (op, destination).
buffer_operations = st.lists(
    st.tuples(
        st.sampled_from(["push", "pop", "retire"]),
        st.integers(min_value=0, max_value=1),
    ),
    max_size=60,
)


@given(buffer_operations, st.sampled_from(["fifo", "samq", "safc", "damq"]))
@settings(max_examples=150)
def test_buffers_stay_consistent_under_retirement(ops, kind):
    cls = {
        "fifo": FifoBuffer,
        "samq": SamqBuffer,
        "safc": SafcBuffer,
        "damq": DamqBuffer,
    }[kind]
    buffer = cls(capacity=6, num_outputs=2)
    next_id = 0
    for op, destination in ops:
        if op == "push":
            packet = Packet(
                packet_id=next_id, source=0, destination=destination
            )
            if buffer.can_accept(destination, packet.size):
                buffer.push(packet, destination)
                next_id += 1
        elif op == "pop":
            if buffer.peek(destination) is not None:
                buffer.pop(destination)
        else:  # retire
            try:
                buffer.retire_slot()
            except FaultError:
                pass  # nothing retirable right now - legal refusal
        # The structural self-check must pass after every operation, and
        # the books must balance.
        buffer.check_invariants()
        assert buffer.occupancy + buffer.free_slots == (
            buffer.effective_capacity
        )
        assert 0 <= buffer.retired_count <= buffer.capacity
        assert buffer.occupancy <= buffer.effective_capacity


@given(st.integers(min_value=0, max_value=4))
def test_retirement_reduces_capacity_exactly(count):
    buffer = DamqBuffer(capacity=6, num_outputs=2)
    buffer.retire_slots(count)
    assert buffer.retired_count == count
    assert buffer.effective_capacity == 6 - count
    # The remaining capacity is fully usable.
    accepted = 0
    while buffer.can_accept(0, 1):
        buffer.push(Packet(packet_id=accepted, source=0, destination=0), 0)
        accepted += 1
    assert accepted == 6 - count
    with_room = buffer.can_accept(0, 1)
    assert not with_room
    buffer.check_invariants()


def test_corrupting_retired_bookkeeping_is_detected():
    """Retirement state participates in the invariant checks."""
    manager = SlotListManager(NUM_SLOTS, NUM_LISTS)
    manager.retire_slot()
    # Corruption: a slot still on the free list is also marked retired.
    manager._retired.add(manager.free_slots()[0])
    try:
        manager.check_invariants()
    except InvariantError:
        pass
    else:
        raise AssertionError("expected InvariantError")
