"""Unit tests for the content-addressed experiment result cache."""

from __future__ import annotations

import json

import pytest

from repro.cache import keys as keys_module
from repro.cache import runtime
from repro.cache.codecs import decode_result, encode_result, known_codecs
from repro.cache.keys import cache_key, canonical_json, source_fingerprint
from repro.cache.runtime import CacheContext, activate, active
from repro.cache.store import ResultCache
from repro.cache.__main__ import main as cache_main
from repro.errors import ConfigurationError
from repro.markov.validation import ValidationReport
from repro.network.simulator import NetworkConfig, simulate


def small_result():
    config = NetworkConfig(num_ports=8, radix=2, offered_load=0.5, seed=5)
    return simulate(config, warmup_cycles=20, measure_cycles=80)


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------


def test_canonical_json_ignores_dict_order():
    assert canonical_json({"b": 1, "a": [2.5, True]}) == canonical_json(
        {"a": [2.5, True], "b": 1}
    )
    assert canonical_json({"a": 1}) != canonical_json({"a": 2})


def test_source_fingerprint_is_memoized_and_stable(monkeypatch):
    first = source_fingerprint()
    assert first == source_fingerprint()
    # The memo means an (impossible mid-process) source edit is not
    # re-read; prove the cached value is what is served.
    monkeypatch.setattr(keys_module, "_FINGERPRINT", "sentinel")
    assert source_fingerprint() == "sentinel"


def test_cache_key_depends_on_every_component():
    payload = {"config": {"seed": 1}, "warmup": 10, "measure": 20}
    base = cache_key("figure3", "simulation-result", payload)
    assert base == cache_key("figure3", "simulation-result", dict(payload))
    assert base != cache_key("figure4", "simulation-result", payload)
    assert base != cache_key("figure3", "json", payload)
    assert base != cache_key(
        "figure3", "simulation-result", {**payload, "warmup": 11}
    )


# ---------------------------------------------------------------------------
# Codecs
# ---------------------------------------------------------------------------


def test_simulation_result_codec_round_trips_bit_exact():
    result = small_result()
    blob = json.loads(json.dumps(encode_result("simulation-result", result)))
    clone = decode_result("simulation-result", blob)
    assert clone.buffer_kind == result.buffer_kind
    assert clone.meters.snapshot_state() == result.meters.snapshot_state()


def test_validation_report_codec_round_trips():
    report = ValidationReport(
        buffer_kind="FIFO",
        slots_per_port=4,
        traffic_rate=0.5,
        analytic_discard=0.01,
        simulated_discard=0.012,
        analytic_throughput=0.49,
        simulated_throughput=0.488,
        cycles=10000,
    )
    blob = json.loads(json.dumps(encode_result("validation-report", report)))
    assert decode_result("validation-report", blob) == report


def test_chip_campaign_codec_round_trips():
    from repro.faults.campaign import ChipCampaignResult

    campaign = ChipCampaignResult(
        nodes=16,
        bit_flip_rate=1e-3,
        retired_slots_per_buffer=1,
        messages_sent=96,
        messages_delivered=96,
        failed_messages=0,
        retransmissions=31,
        duplicates_dropped=2,
        undecodable_frames=29,
        misrouted_frames=0,
        bytes_seen=4096,
        flips_injected=57,
        cycles=9000,
        fault_counters={"checksum": 29},
    )
    blob = json.loads(json.dumps(encode_result("chip-campaign", campaign)))
    assert decode_result("chip-campaign", blob) == campaign


def test_json_codec_is_identity():
    value = {"fraction": 0.25, "slots": [1, 2, 3]}
    assert decode_result("json", encode_result("json", value)) == value


def test_unknown_codec_is_rejected():
    with pytest.raises(ConfigurationError):
        encode_result("nope", {})
    with pytest.raises(ConfigurationError):
        decode_result("nope", {})


def test_simulation_codec_rejects_foreign_objects():
    with pytest.raises(ConfigurationError):
        encode_result("simulation-result", {"not": "a result"})
    assert "simulation-result" in known_codecs()


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_put_get_round_trip_survives_reopen(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    result = small_result()
    cache.put("k" * 64, "figure3", "simulation-result", result)
    cache.flush()

    reopened = ResultCache(tmp_path / "cache")
    hit = reopened.get("k" * 64)
    assert hit is not None
    assert hit.meters.snapshot_state() == result.meters.snapshot_state()
    assert reopened.hits == 1 and reopened.misses == 0


def test_get_misses_on_unknown_key(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get("f" * 64) is None
    assert cache.misses == 1


def test_get_drops_entry_when_blob_is_deleted(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put("a" * 64, "exp", "json", {"x": 1})
    cache._blob_path("a" * 64).unlink()
    assert cache.get("a" * 64) is None
    assert cache.stats().entries == 0


def test_lru_eviction_keeps_most_recently_used(tmp_path):
    cache = ResultCache(tmp_path / "cache", max_entries=2)
    cache.put("a" * 64, "exp", "json", 1)
    cache.put("b" * 64, "exp", "json", 2)
    assert cache.get("a" * 64) == 1  # bump a's last-use past b's
    cache.put("c" * 64, "exp", "json", 3)  # evicts b, the oldest
    assert cache.get("b" * 64) is None
    assert cache.get("a" * 64) == 1
    assert cache.get("c" * 64) == 3
    assert not cache._blob_path("b" * 64).exists()


def test_stats_counts_entries_and_bytes(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put("a" * 64, "figure3", "json", {"x": 1})
    cache.put("b" * 64, "table4", "json", {"y": 2})
    stats = cache.stats()
    assert stats.entries == 2
    assert stats.total_bytes > 0
    assert stats.experiments == {"figure3": 1, "table4": 1}
    assert "figure3" in stats.describe()


def test_clear_removes_everything(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put("a" * 64, "exp", "json", 1)
    assert cache.clear() == 1
    assert cache.stats().entries == 0
    assert ResultCache(tmp_path / "cache").get("a" * 64) is None


def test_verify_detects_and_drops_corruption(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put("a" * 64, "exp", "json", {"x": 1})
    cache.put("b" * 64, "exp", "json", {"y": 2})
    assert cache.verify() == []
    cache._blob_path("a" * 64).write_text("tampered")
    problems = cache.verify()
    assert len(problems) == 1 and "mismatch" in problems[0]
    assert cache.stats().entries == 1


def test_rejects_bad_max_entries(tmp_path):
    with pytest.raises(ConfigurationError):
        ResultCache(tmp_path / "cache", max_entries=0)


def test_corrupt_index_is_treated_as_empty(tmp_path):
    root = tmp_path / "cache"
    root.mkdir()
    (root / "index.json").write_text("not json")
    assert ResultCache(root).stats().entries == 0


# ---------------------------------------------------------------------------
# Runtime context
# ---------------------------------------------------------------------------


def test_activate_installs_and_restores_context(tmp_path):
    assert active() is None
    cache = ResultCache(tmp_path / "cache")
    context = CacheContext(cache, "figure3")
    with activate(context) as installed:
        assert installed is context
        assert active() is context
        assert not context.checkpointing
        cache.put("a" * 64, "figure3", "json", 1)
    assert active() is None
    # activate() flushed the index on the way out.
    assert ResultCache(tmp_path / "cache").get("a" * 64) == 1


def test_activate_restores_previous_context_when_nested(tmp_path):
    outer = CacheContext(None, "outer")
    inner = CacheContext(None, "inner", checkpoint_every=500, checkpoint_dir=tmp_path)
    with activate(outer):
        with activate(inner):
            assert active() is inner
            assert inner.checkpointing
        assert active() is outer
    assert active() is None


def test_activate_restores_context_on_error(tmp_path):
    context = CacheContext(ResultCache(tmp_path / "cache"), "exp")
    with pytest.raises(RuntimeError):
        with activate(context):
            raise RuntimeError("boom")
    assert active() is None


# ---------------------------------------------------------------------------
# Maintenance CLI
# ---------------------------------------------------------------------------


def test_cli_stats_clear_verify(tmp_path, capsys):
    root = tmp_path / "cache"
    cache = ResultCache(root)
    cache.put("a" * 64, "figure3", "json", {"x": 1})
    cache.flush()

    assert cache_main(["--cache-dir", str(root), "stats"]) == 0
    assert "entries         1" in capsys.readouterr().out

    assert cache_main(["--cache-dir", str(root), "verify"]) == 0
    assert "sound" in capsys.readouterr().out

    cache._blob_path("a" * 64).write_text("tampered")
    assert cache_main(["--cache-dir", str(root), "verify"]) == 1
    assert "mismatch" in capsys.readouterr().out

    cache = ResultCache(root)
    cache.put("b" * 64, "figure3", "json", {"y": 2})
    cache.flush()
    assert cache_main(["--cache-dir", str(root), "clear"]) == 0
    assert "cleared 1" in capsys.readouterr().out
    assert ResultCache(root).stats().entries == 0


# ---------------------------------------------------------------------------
# parallel_map integration
# ---------------------------------------------------------------------------


def test_parallel_map_serves_hits_and_stores_misses(tmp_path):
    from repro.perf.parallel import parallel_map

    cache = ResultCache(tmp_path / "cache")
    executed: list[int] = []
    with activate(CacheContext(cache, "exp")):
        first = parallel_map(
            _double, [1, 2, 3], codec="json", on_executed=executed.append
        )
        second = parallel_map(
            _double, [1, 2, 3], codec="json", on_executed=executed.append
        )
    assert first == second == [2, 4, 6]
    assert executed == [3, 0]
    assert cache.hits == 3 and cache.misses == 3


def test_parallel_map_without_codec_bypasses_cache(tmp_path):
    from repro.perf.parallel import parallel_map

    cache = ResultCache(tmp_path / "cache")
    executed: list[int] = []
    with activate(CacheContext(cache, "exp")):
        parallel_map(_double, [1, 2], on_executed=executed.append)
        parallel_map(_double, [1, 2], on_executed=executed.append)
    assert executed == [2, 2]
    assert cache.stats().entries == 0


def test_parallel_map_validates_payload_length(tmp_path):
    from repro.perf.parallel import parallel_map

    with activate(CacheContext(ResultCache(tmp_path / "c"), "exp")):
        with pytest.raises(ConfigurationError):
            parallel_map(_double, [1, 2], codec="json", payloads=[1])


def _double(value: int) -> int:
    return value * 2
