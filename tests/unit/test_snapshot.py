"""Unit tests for the bit-exact simulator snapshot/restore machinery."""

from __future__ import annotations

import json

import pytest

from repro.core.packet import Packet, PacketFactory
from repro.errors import ConfigurationError
from repro.network.simulator import (
    SNAPSHOT_VERSION,
    NetworkConfig,
    OmegaNetworkSimulator,
    load_checkpoint,
    restore_simulator,
    resume_run,
    simulate,
)
from repro.switch.flow_control import Protocol
from repro.utils.rng import BatchedBernoulli, RandomStream
from repro.utils.stats import OnlineStats

BASE = dict(num_ports=16, radix=4, offered_load=0.7, seed=7)


def config(**overrides) -> NetworkConfig:
    return NetworkConfig(**{**BASE, **overrides})


def meters_state(simulator) -> dict:
    return simulator.meters.snapshot_state()


# ---------------------------------------------------------------------------
# Leaf components
# ---------------------------------------------------------------------------


def test_online_stats_state_round_trip_preserves_int_extrema():
    stats = OnlineStats()
    for value in (25, 30, 17):
        stats.add(value)
    clone = OnlineStats()
    clone.set_state(json.loads(json.dumps(stats.get_state())))
    assert clone.get_state() == stats.get_state()
    # add() keeps integer extrema as ints; restore must not widen them.
    assert isinstance(clone.minimum, int)
    assert isinstance(clone.maximum, int)


def test_random_stream_state_round_trip_is_draw_exact():
    stream = RandomStream(1988, "snap")
    stream.randint(0, 100)  # leave a half-word in the uint32 cache
    state = json.loads(json.dumps(stream.get_state()))
    expected = [stream.randint(0, 1000) for _ in range(8)]
    expected += [stream.random() for _ in range(8)]
    stream.set_state(state)
    actual = [stream.randint(0, 1000) for _ in range(8)]
    actual += [stream.random() for _ in range(8)]
    assert actual == expected


def test_batched_coin_matches_scalar_sequence_and_flush_state():
    """Batched draws equal scalar draws; flush lands on the scalar state.

    Components interleave other draws on the coin's stream only after a
    hit (when the block tail has been rewound), so that is the pattern
    exercised here.  After a flush the raw generator state must equal
    the one a scalar draw-per-call sequence leaves — that is what makes
    mid-run snapshots of a batched source bit-exact.
    """
    scalar = RandomStream(3, "coin")
    stream = RandomStream(3, "coin")
    coin = BatchedBernoulli(stream, 0.05)
    for _ in range(300):
        hit = coin.draw()
        assert hit == scalar.bernoulli(0.05)
        if hit:
            assert stream.randint(0, 16) == scalar.randint(0, 16)
    coin.flush()
    assert stream.get_state() == scalar.get_state()


def test_batched_coin_state_restores_into_fresh_coin():
    stream = RandomStream(11, "coin")
    coin = BatchedBernoulli(stream, 0.05)
    for _ in range(10):
        coin.draw()
    coin.flush()
    state = stream.get_state()
    expected = [coin.draw() for _ in range(50)]
    stream.set_state(state)
    fresh = BatchedBernoulli(stream, 0.05)
    assert [fresh.draw() for _ in range(50)] == expected


def test_packet_state_round_trip():
    packet = Packet(
        packet_id=9,
        source=1,
        destination=5,
        created_at=123,
        route=(2, 0, 1),
        size=3,
        hop=1,
        injected_at=140,
    )
    clone = Packet.from_state(json.loads(json.dumps(packet.to_state())))
    assert clone == packet
    assert isinstance(clone.route, tuple)


def test_packet_factory_counter_round_trip():
    factory = PacketFactory()
    factory.create(source=0, destination=1)
    factory.create(source=0, destination=2)
    clone = PacketFactory()
    clone.restore_state(factory.snapshot_state())
    assert clone.create(source=1, destination=0).packet_id == 2


# ---------------------------------------------------------------------------
# Whole-simulator snapshots
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["FIFO", "SAMQ", "SAFC", "DAMQ"])
def test_snapshot_restore_is_bit_exact(kind):
    cfg = config(buffer_kind=kind)
    reference = OmegaNetworkSimulator(cfg)
    reference.run(warmup_cycles=100, measure_cycles=150)

    simulator = OmegaNetworkSimulator(cfg)
    for _ in range(73):  # mid warm-up, so the resumed run opens the window
        simulator.step()
    state = json.loads(json.dumps(simulator.snapshot()))
    resumed = restore_simulator(state)
    resumed.run(warmup_cycles=100, measure_cycles=150)
    assert meters_state(resumed) == meters_state(reference)


def test_snapshot_does_not_perturb_the_run():
    cfg = config(buffer_kind="DAMQ")
    reference = OmegaNetworkSimulator(cfg)
    reference.run(warmup_cycles=100, measure_cycles=150)

    observed = OmegaNetworkSimulator(cfg)
    for _ in range(60):
        observed.step()
        observed.snapshot()  # every cycle of early warm-up
    observed.run(warmup_cycles=100, measure_cycles=150)
    assert meters_state(observed) == meters_state(reference)


def test_snapshot_round_trips_variable_length_in_flight_state():
    cfg = config(
        buffer_kind="DAMQ",
        packet_size=1,
        packet_size_max=3,
        serialize_links=True,
        protocol=Protocol.BLOCKING,
    )
    reference = OmegaNetworkSimulator(cfg)
    reference.run(warmup_cycles=100, measure_cycles=150)

    simulator = OmegaNetworkSimulator(cfg)
    for _ in range(73):
        simulator.step()
    assert simulator.in_flight_count > 0  # snapshot covers live transfers
    state = json.loads(json.dumps(simulator.snapshot()))
    resumed = restore_simulator(state)
    assert resumed.in_flight_count == simulator.in_flight_count
    resumed.run(warmup_cycles=100, measure_cycles=150)
    assert meters_state(resumed) == meters_state(reference)


def test_restore_rejects_wrong_version():
    simulator = OmegaNetworkSimulator(config())
    state = simulator.snapshot()
    state["version"] = SNAPSHOT_VERSION + 1
    with pytest.raises(ConfigurationError):
        simulator.restore(state)


def test_restore_rejects_mismatched_config():
    state = OmegaNetworkSimulator(config(offered_load=0.7)).snapshot()
    other = OmegaNetworkSimulator(config(offered_load=0.8))
    with pytest.raises(ConfigurationError):
        other.restore(state)


def test_network_config_state_round_trip():
    cfg = config(protocol=Protocol.DISCARDING, buffer_kind="SAMQ")
    assert NetworkConfig.from_state(cfg.to_state()) == cfg


# ---------------------------------------------------------------------------
# Checkpoint files
# ---------------------------------------------------------------------------


def test_checkpointed_run_and_resume_match_uninterrupted(tmp_path):
    cfg = config(buffer_kind="DAMQ")
    reference = simulate(cfg, warmup_cycles=50, measure_cycles=150)

    path = tmp_path / "run.ckpt"
    result = simulate(
        cfg,
        warmup_cycles=50,
        measure_cycles=150,
        checkpoint_every=60,
        checkpoint_path=path,
    )
    assert result.meters.snapshot_state() == reference.meters.snapshot_state()
    # The file holds the last mid-run checkpoint; resuming from it must
    # land on the identical result.
    document = load_checkpoint(path)
    assert document["state"]["cycle"] == 180
    resumed = resume_run(path)
    assert resumed.meters.snapshot_state() == reference.meters.snapshot_state()


def test_load_checkpoint_rejects_wrong_format(tmp_path):
    path = tmp_path / "bad.ckpt"
    path.write_text(json.dumps({"format": 999}))
    with pytest.raises(ConfigurationError):
        load_checkpoint(path)


def test_run_validates_checkpoint_cadence():
    simulator = OmegaNetworkSimulator(config())
    with pytest.raises(ConfigurationError):
        simulator.run(
            warmup_cycles=10,
            measure_cycles=10,
            checkpoint_every=0,
            checkpoint_path="unused.ckpt",
        )


def test_run_rejects_a_simulator_past_the_window():
    simulator = OmegaNetworkSimulator(config())
    for _ in range(30):
        simulator.step()
    with pytest.raises(ConfigurationError):
        simulator.run(warmup_cycles=10, measure_cycles=10)
