"""Unit tests for the link-serialization mode (variable-length extension).

With ``serialize_links=True`` a packet of ``size`` slots occupies its link
and its buffer's read port for ``size`` network cycles, landing downstream
``size - 1`` cycles after its grant.  One-slot packets must behave exactly
as in the paper's synchronized model.
"""

import pytest

from repro.network import NetworkConfig, simulate
from repro.network.simulator import OmegaNetworkSimulator
from repro.switch.flow_control import Protocol

SMALL = NetworkConfig(
    num_ports=16,
    radix=4,
    buffer_kind="DAMQ",
    slots_per_buffer=8,
    seed=12,
    serialize_links=True,
)


class TestEquivalenceForUnitPackets:
    def test_identical_results_with_single_slot_packets(self):
        plain = simulate(
            SMALL.with_overrides(serialize_links=False, offered_load=0.6),
            100,
            400,
        )
        serialized = simulate(
            SMALL.with_overrides(offered_load=0.6), 100, 400
        )
        assert plain.delivered_throughput == serialized.delivered_throughput
        assert plain.average_latency == serialized.average_latency


class TestSerializedTransfers:
    def test_multi_slot_packets_arrive_intact(self):
        simulator = OmegaNetworkSimulator(
            SMALL.with_overrides(
                offered_load=0.3, packet_size=3, source_queue_capacity=2
            )
        )
        result = simulator.run(warmup_cycles=50, measure_cycles=400)
        assert result.meters.delivered > 0
        assert all(sink.misrouted == 0 for sink in simulator.sinks)

    def test_conservation_includes_in_flight(self):
        simulator = OmegaNetworkSimulator(
            SMALL.with_overrides(offered_load=0.8, packet_size=2)
        )
        for _ in range(157):  # odd count so transfers are mid-flight
            simulator.step()
        generated = sum(source.generated for source in simulator.sources)
        delivered = sum(sink.received for sink in simulator.sinks)
        queued = sum(len(source.queue) for source in simulator.sources)
        buffered = simulator.total_buffered_packets
        assert generated == (
            delivered + queued + buffered + simulator.in_flight_count
        )

    def test_latency_reflects_serialization(self):
        """Three-slot packets must be slower per hop than one-slot ones."""
        small = simulate(
            SMALL.with_overrides(offered_load=0.1, packet_size=1), 100, 500
        )
        large = simulate(
            SMALL.with_overrides(
                offered_load=0.1, packet_size=3, source_queue_capacity=2
            ),
            100,
            500,
        )
        # Four transfers (inject + 2 hops + deliver... 16 ports = 2 stages:
        # inject + stage0 + stage1) each gain 2 cycles of serialization:
        # at least +4 network cycles = +48 clocks end to end.
        assert large.average_latency > small.average_latency + 40

    def test_throughput_in_slots_bounded_by_link_capacity(self):
        result = simulate(
            SMALL.with_overrides(offered_load=1.0, packet_size=2), 150, 600
        )
        slots_per_cycle = result.delivered_throughput * 2
        assert slots_per_cycle <= 1.0 + 1e-9

    def test_serialized_saturation_roughly_halves_for_double_size(self):
        unit = simulate(
            SMALL.with_overrides(offered_load=1.0, packet_size=1), 150, 600
        ).delivered_throughput
        double = simulate(
            SMALL.with_overrides(offered_load=1.0, packet_size=2), 150, 600
        ).delivered_throughput
        assert 0.35 < double / unit < 0.75

    def test_discarding_protocol_with_serialization(self):
        result = simulate(
            SMALL.with_overrides(
                protocol=Protocol.DISCARDING,
                offered_load=0.9,
                packet_size=2,
            ),
            100,
            400,
        )
        assert result.meters.delivered > 0

    def test_mixed_sizes_serialize_cleanly(self):
        simulator = OmegaNetworkSimulator(
            SMALL.with_overrides(
                offered_load=0.7, packet_size=1, packet_size_max=3
            )
        )
        for _ in range(300):
            simulator.step()
            for row in simulator.switches:
                for switch in row:
                    for buffer in switch.buffers:
                        assert buffer.occupancy <= buffer.capacity
        assert sum(sink.received for sink in simulator.sinks) > 0
