"""Unit tests for the Omega-network simulator (small configurations)."""

import pytest

from repro.errors import ConfigurationError
from repro.network.metrics import Meters
from repro.network.simulator import (
    NetworkConfig,
    OmegaNetworkSimulator,
    simulate,
)
from repro.switch.flow_control import Protocol

#: A small 16-port network keeps these tests fast.
SMALL = NetworkConfig(num_ports=16, radix=4, seed=5)


class TestConstruction:
    def test_paper_dimensions(self):
        simulator = OmegaNetworkSimulator(NetworkConfig())
        assert len(simulator.switches) == 3
        assert len(simulator.switches[0]) == 16
        assert len(simulator.sources) == 64
        assert len(simulator.sinks) == 64

    def test_single_stage_network(self):
        simulator = OmegaNetworkSimulator(
            SMALL.with_overrides(num_ports=4, radix=4)
        )
        assert len(simulator.switches) == 1

    @pytest.mark.parametrize(
        "num_ports,radix,stages",
        [(16, 2, 4), (16, 4, 2), (64, 8, 2), (8, 2, 3)],
    )
    def test_other_radices_work_end_to_end(self, num_ports, radix, stages):
        config = SMALL.with_overrides(
            num_ports=num_ports,
            radix=radix,
            slots_per_buffer=2 * radix,
            offered_load=0.4,
        )
        simulator = OmegaNetworkSimulator(config)
        assert len(simulator.switches) == stages
        result = simulator.run(warmup_cycles=30, measure_cycles=200)
        assert result.meters.delivered > 0
        assert all(sink.misrouted == 0 for sink in simulator.sinks)

    def test_config_overrides(self):
        config = SMALL.with_overrides(buffer_kind="FIFO", offered_load=0.9)
        assert config.buffer_kind == "FIFO"
        assert config.num_ports == 16  # untouched fields preserved

    def test_discarding_source_queues(self):
        sim_block = OmegaNetworkSimulator(
            SMALL.with_overrides(protocol=Protocol.BLOCKING)
        )
        assert sim_block.sources[0].queue_capacity == 4
        sim_drop = OmegaNetworkSimulator(
            SMALL.with_overrides(
                protocol=Protocol.DISCARDING, discard_at_injection=True
            )
        )
        assert sim_drop.sources[0].queue_capacity == 0


class TestConservation:
    @pytest.mark.parametrize("kind", ["FIFO", "SAMQ", "SAFC", "DAMQ"])
    def test_blocking_conserves_packets(self, kind):
        """generated = delivered + in flight (nothing lost, nothing made)."""
        simulator = OmegaNetworkSimulator(
            SMALL.with_overrides(
                buffer_kind=kind,
                protocol=Protocol.BLOCKING,
                offered_load=0.6,
            )
        )
        for _ in range(400):
            simulator.step()
        generated = sum(source.generated for source in simulator.sources)
        delivered = sum(sink.received for sink in simulator.sinks)
        queued_at_sources = sum(len(s.queue) for s in simulator.sources)
        in_network = simulator.total_buffered
        assert generated == delivered + queued_at_sources + in_network

    @pytest.mark.parametrize("kind", ["FIFO", "DAMQ"])
    def test_discarding_conserves_packets(self, kind):
        simulator = OmegaNetworkSimulator(
            SMALL.with_overrides(
                buffer_kind=kind,
                protocol=Protocol.DISCARDING,
                offered_load=0.9,
                discard_at_injection=True,
            )
        )
        simulator._measure_start_clock = 0  # count discards from cycle 0
        for _ in range(400):
            simulator.step()
        generated = sum(source.generated for source in simulator.sources)
        delivered = sum(sink.received for sink in simulator.sinks)
        discarded = simulator.meters.discarded
        in_network = simulator.total_buffered
        queued_at_sources = sum(len(s.queue) for s in simulator.sources)
        assert generated == (
            delivered + discarded + in_network + queued_at_sources
        )

    def test_no_misrouting(self):
        simulator = OmegaNetworkSimulator(SMALL.with_overrides(offered_load=0.7))
        for _ in range(300):
            simulator.step()
        assert all(sink.misrouted == 0 for sink in simulator.sinks)


class TestMeasurement:
    def test_run_returns_result(self):
        result = simulate(SMALL.with_overrides(offered_load=0.3), 50, 200)
        assert result.buffer_kind == "DAMQ"
        assert result.meters.cycles == 200
        assert 0.2 < result.delivered_throughput < 0.4
        assert result.average_latency > 36  # three hops minimum

    def test_warmup_packets_excluded(self):
        simulator = OmegaNetworkSimulator(SMALL.with_overrides(offered_load=0.5))
        result = simulator.run(warmup_cycles=100, measure_cycles=100)
        # Only packets created after warm-up may be counted.
        assert result.meters.generated <= 16 * 100

    def test_zero_load_network_stays_silent(self):
        result = simulate(SMALL.with_overrides(offered_load=0.0), 10, 50)
        assert result.meters.generated == 0
        assert result.meters.delivered == 0

    def test_invalid_windows_rejected(self):
        simulator = OmegaNetworkSimulator(SMALL)
        with pytest.raises(ConfigurationError):
            simulator.run(warmup_cycles=-1, measure_cycles=10)
        with pytest.raises(ConfigurationError):
            simulator.run(warmup_cycles=0, measure_cycles=0)

    def test_determinism_same_seed(self):
        first = simulate(SMALL.with_overrides(offered_load=0.5), 50, 200)
        second = simulate(SMALL.with_overrides(offered_load=0.5), 50, 200)
        assert first.delivered_throughput == second.delivered_throughput
        assert first.average_latency == second.average_latency

    def test_different_seeds_differ(self):
        first = simulate(SMALL.with_overrides(offered_load=0.5, seed=1), 50, 200)
        second = simulate(SMALL.with_overrides(offered_load=0.5, seed=2), 50, 200)
        assert first.average_latency != second.average_latency

    def test_network_latency_below_total_latency(self):
        result = simulate(SMALL.with_overrides(offered_load=0.5), 50, 300)
        assert result.average_network_latency <= result.average_latency


class TestFlowControlFidelity:
    def test_invalid_fidelity_rejected(self):
        with pytest.raises(ConfigurationError):
            OmegaNetworkSimulator(
                SMALL.with_overrides(flow_control_fidelity="psychic")
            )

    def test_conservative_network_still_delivers(self):
        result = simulate(
            SMALL.with_overrides(
                buffer_kind="SAMQ",
                offered_load=0.3,
                flow_control_fidelity="conservative",
            ),
            50,
            300,
        )
        assert result.meters.delivered > 0
        assert 0.2 < result.delivered_throughput < 0.4

    def test_conservative_hurts_partitioned_buffers_at_saturation(self):
        throughput = {}
        for fidelity in ("precise", "conservative"):
            throughput[fidelity] = simulate(
                SMALL.with_overrides(
                    buffer_kind="SAMQ",
                    offered_load=1.0,
                    flow_control_fidelity=fidelity,
                ),
                100,
                500,
            ).delivered_throughput
        assert throughput["conservative"] < throughput["precise"]

    def test_fidelity_is_noop_for_damq(self):
        results = [
            simulate(
                SMALL.with_overrides(
                    buffer_kind="DAMQ",
                    offered_load=0.8,
                    flow_control_fidelity=fidelity,
                ),
                50,
                300,
            ).delivered_throughput
            for fidelity in ("precise", "conservative")
        ]
        assert results[0] == results[1]


class TestMeters:
    def test_normalization(self):
        meters = Meters(num_ports=8)
        meters.cycles = 100
        meters.delivered = 400
        assert meters.delivered_throughput == pytest.approx(0.5)

    def test_discard_fraction_empty(self):
        import math

        meters = Meters(num_ports=8)
        assert math.isnan(meters.discard_fraction)
