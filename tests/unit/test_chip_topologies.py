"""Unit tests for the multicomputer topology builders and path routing."""

import pytest

from repro.chip import (
    ChipNetwork,
    TopologyBuilder,
    build_chain,
    build_complete,
    build_mesh,
    build_ring,
    build_star,
    open_shortest_circuit,
    shortest_path,
)
from repro.errors import ConfigurationError, RoutingError


class TestTopologyBuilder:
    def test_ports_allocated_in_order(self):
        network = ChipNetwork()
        builder = TopologyBuilder(network)
        for name in "abc":
            builder.add_node(name)
        assert builder.connect("a", "b") == (0, 0)
        assert builder.connect("a", "c") == (1, 0)

    def test_port_exhaustion(self):
        network = ChipNetwork()
        builder = TopologyBuilder(network)
        builder.add_node("hub")
        for index in range(4):
            builder.add_node(f"leaf{index}")
            builder.connect("hub", f"leaf{index}")
        builder.add_node("extra")
        with pytest.raises(ConfigurationError):
            builder.connect("hub", "extra")

    def test_unknown_node(self):
        builder = TopologyBuilder(ChipNetwork())
        with pytest.raises(ConfigurationError):
            builder.connect("x", "y")


class TestBuilders:
    def test_chain_structure(self):
        network, names = build_chain(4)
        assert len(names) == 4
        assert shortest_path(network, names[0], names[3]) == names

    def test_ring_wraps_around(self):
        network, names = build_ring(5)
        # Shortest path from node0 to node4 goes backwards (1 hop).
        assert shortest_path(network, names[0], names[4]) == [names[0], names[4]]

    def test_ring_minimum_size(self):
        with pytest.raises(ConfigurationError):
            build_ring(2)

    def test_star_routes_through_hub(self):
        network, names = build_star(4)
        hub, leaves = names[0], names[1:]
        path = shortest_path(network, leaves[0], leaves[3])
        assert path == [leaves[0], hub, leaves[3]]

    def test_star_leaf_limit(self):
        with pytest.raises(ConfigurationError):
            build_star(5)

    def test_mesh_dimensions_and_interior_degree(self):
        network, names = build_mesh(3, 3)
        assert len(names) == 9
        # Interior node of a 3x3 mesh has all four ports wired.
        wired = [key for key in network._adjacency if key[0] == "node_1_1"]
        assert len(wired) == 4

    def test_mesh_manhattan_distance(self):
        network, names = build_mesh(3, 4)
        path = shortest_path(network, "node_0_0", "node_2_3")
        assert len(path) == 6  # 5 hops = manhattan distance

    def test_complete_all_adjacent(self):
        network, names = build_complete(5)
        for index, left in enumerate(names):
            for right in names[index + 1 :]:
                assert shortest_path(network, left, right) == [left, right]

    def test_complete_size_limit(self):
        with pytest.raises(ConfigurationError):
            build_complete(6)


class TestShortestPath:
    def test_no_path(self):
        network = ChipNetwork()
        network.add_node("a")
        network.add_node("b")
        with pytest.raises(RoutingError):
            shortest_path(network, "a", "b")

    def test_same_node_rejected(self):
        network, names = build_chain(2)
        with pytest.raises(ConfigurationError):
            shortest_path(network, names[0], names[0])

    def test_unknown_node_rejected(self):
        network, names = build_chain(2)
        with pytest.raises(ConfigurationError):
            shortest_path(network, names[0], "ghost")


class TestEndToEnd:
    def test_message_across_mesh(self):
        network, names = build_mesh(2, 2)
        circuit = open_shortest_circuit(network, names[0], names[3])
        network.send(circuit, b"mesh delivery")
        network.run_until_idle()
        received = network.nodes[names[3]].host.received_messages
        assert received[0].payload == b"mesh delivery"

    def test_all_pairs_on_star(self):
        network, names = build_star(3)
        circuits = {}
        for source in names:
            for destination in names:
                if source != destination:
                    circuits[(source, destination)] = open_shortest_circuit(
                        network, source, destination
                    )
        for (source, destination), circuit in circuits.items():
            network.send(circuit, f"{source}->{destination}".encode())
        network.run_until_idle()
        for (source, destination), circuit in circuits.items():
            payloads = [
                message.payload
                for message in network.nodes[destination].host.received_messages
                if message.delivery_tag == circuit.delivery_tag
            ]
            assert payloads == [f"{source}->{destination}".encode()]
