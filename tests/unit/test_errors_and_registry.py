"""Unit tests for the exception hierarchy and the buffer registry."""

import pytest

from repro.core.registry import (
    BUFFER_TYPES,
    PAPER_ORDER,
    buffer_class,
    buffer_kinds,
    make_buffer,
    make_buffer_factory,
    register_buffer_type,
)
from repro.errors import (
    BufferEmptyError,
    BufferFullError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    RoutingError,
    SimulationError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            BufferEmptyError,
            BufferFullError,
            ConfigurationError,
            ProtocolError,
            RoutingError,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catching_base_catches_everything(self):
        caught = []
        for exc in (BufferFullError, RoutingError, ProtocolError):
            try:
                raise exc("x")
            except ReproError as error:
                caught.append(type(error))
        assert caught == [BufferFullError, RoutingError, ProtocolError]


class TestRegistry:
    def test_paper_order_registered(self):
        # The paper's four buffers are always present; extension
        # architectures (repro.arch) may add more but never shadow them.
        assert set(PAPER_ORDER) <= set(BUFFER_TYPES)
        for kind in PAPER_ORDER:
            assert buffer_class(kind).kind == kind

    def test_buffer_kinds_lists_paper_buffers_first(self):
        kinds = buffer_kinds()
        assert kinds[: len(PAPER_ORDER)] == PAPER_ORDER
        # buffer_kinds() loads the architecture zoo.
        assert "CQ" in kinds
        assert "DAMQ-RSV" in kinds

    def test_lookup_case_insensitive(self):
        assert buffer_class("damq").kind == "DAMQ"
        assert buffer_class("Fifo").kind == "FIFO"
        assert buffer_class("cq").kind == "CQ"
        assert buffer_class("damq-rsv").kind == "DAMQ-RSV"

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            buffer_class("VOQ")

    def test_unknown_kind_lists_available_architectures(self):
        with pytest.raises(ConfigurationError) as excinfo:
            buffer_class("VOQ")
        message = str(excinfo.value)
        for kind in (*PAPER_ORDER, "CQ", "DAMQ-RSV"):
            assert kind in message

    def test_register_rejects_rebinding(self):
        from repro.core.damq import DamqBuffer
        from repro.core.fifo import FifoBuffer

        register_buffer_type("DAMQ", DamqBuffer)  # idempotent no-op
        with pytest.raises(ConfigurationError):
            register_buffer_type("DAMQ", FifoBuffer)

    @pytest.mark.parametrize("kind", buffer_kinds())
    def test_make_buffer_constructs_each(self, kind):
        buffer = make_buffer(kind, capacity=4, num_outputs=4)
        assert buffer.kind == kind
        assert buffer.capacity == 4

    def test_factory_binds_capacity(self):
        factory = make_buffer_factory("SAMQ", capacity=8)
        buffer = factory(4)
        assert buffer.capacity == 8
        assert buffer.num_outputs == 4

    def test_factory_rejects_bad_combo_late(self):
        factory = make_buffer_factory("SAMQ", capacity=5)
        with pytest.raises(ConfigurationError):
            factory(4)  # 5 not divisible by 4
