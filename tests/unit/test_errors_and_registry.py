"""Unit tests for the exception hierarchy and the buffer registry."""

import pytest

from repro.core.registry import (
    BUFFER_TYPES,
    PAPER_ORDER,
    buffer_class,
    make_buffer,
    make_buffer_factory,
)
from repro.errors import (
    BufferEmptyError,
    BufferFullError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    RoutingError,
    SimulationError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            BufferEmptyError,
            BufferFullError,
            ConfigurationError,
            ProtocolError,
            RoutingError,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catching_base_catches_everything(self):
        caught = []
        for exc in (BufferFullError, RoutingError, ProtocolError):
            try:
                raise exc("x")
            except ReproError as error:
                caught.append(type(error))
        assert caught == [BufferFullError, RoutingError, ProtocolError]


class TestRegistry:
    def test_paper_order_covers_all_types(self):
        assert set(PAPER_ORDER) == set(BUFFER_TYPES)

    def test_lookup_case_insensitive(self):
        assert buffer_class("damq").kind == "DAMQ"
        assert buffer_class("Fifo").kind == "FIFO"

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            buffer_class("VOQ")

    @pytest.mark.parametrize("kind", sorted(BUFFER_TYPES))
    def test_make_buffer_constructs_each(self, kind):
        buffer = make_buffer(kind, capacity=4, num_outputs=4)
        assert buffer.kind == kind
        assert buffer.capacity == 4

    def test_factory_binds_capacity(self):
        factory = make_buffer_factory("SAMQ", capacity=8)
        buffer = factory(4)
        assert buffer.capacity == 8
        assert buffer.num_outputs == 4

    def test_factory_rejects_bad_combo_late(self):
        factory = make_buffer_factory("SAMQ", capacity=5)
        with pytest.raises(ConfigurationError):
            factory(4)  # 5 not divisible by 4
