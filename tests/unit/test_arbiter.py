"""Unit tests for the crossbar arbiters (dumb and smart round robin)."""

import pytest

from repro.core import DamqBuffer, FifoBuffer, SafcBuffer
from repro.errors import ConfigurationError
from repro.switch.arbiter import CrossbarArbiter, make_arbiter
from tests.conftest import make_packet


def never_blocked(input_port, output_port, packet):
    return False


def buffers_with(cls, layout, capacity=8, num_outputs=4):
    """Build buffers from {input: [(packet_id, dest), ...]}."""
    buffers = [cls(capacity, num_outputs) for _ in range(4)]
    for input_port, packets in layout.items():
        for packet_id, destination in packets:
            buffers[input_port].push(
                make_packet(packet_id=packet_id, destination=destination),
                destination,
            )
    return buffers


class TestBasicGrants:
    def test_single_packet_granted(self):
        buffers = buffers_with(DamqBuffer, {0: [(1, 2)]})
        arbiter = make_arbiter("dumb", 4, 4)
        grants = arbiter.arbitrate(buffers, never_blocked)
        assert len(grants) == 1
        assert (grants[0].input_port, grants[0].output_port) == (0, 2)

    def test_disjoint_requests_all_granted(self):
        buffers = buffers_with(
            DamqBuffer, {0: [(1, 0)], 1: [(2, 1)], 2: [(3, 2)], 3: [(4, 3)]}
        )
        arbiter = make_arbiter("smart", 4, 4)
        grants = arbiter.arbitrate(buffers, never_blocked)
        assert len(grants) == 4

    def test_output_conflict_grants_one(self):
        buffers = buffers_with(DamqBuffer, {0: [(1, 2)], 1: [(2, 2)]})
        arbiter = make_arbiter("dumb", 4, 4)
        grants = arbiter.arbitrate(buffers, never_blocked)
        assert len(grants) == 1
        assert grants[0].output_port == 2

    def test_longest_queue_wins_within_buffer(self):
        buffers = buffers_with(
            DamqBuffer, {0: [(1, 0), (2, 0), (3, 1)]}
        )
        arbiter = make_arbiter("dumb", 4, 4)
        grants = arbiter.arbitrate(buffers, never_blocked)
        assert len(grants) == 1
        assert grants[0].output_port == 0  # queue of length 2 beats 1

    def test_blocked_output_skipped(self):
        buffers = buffers_with(DamqBuffer, {0: [(1, 0), (2, 1)]})
        arbiter = make_arbiter("dumb", 4, 4)

        def block_output_zero(input_port, output_port, packet):
            return output_port == 0

        grants = arbiter.arbitrate(buffers, block_output_zero)
        assert len(grants) == 1
        assert grants[0].output_port == 1

    def test_fifo_buffer_offers_only_head(self):
        buffers = buffers_with(FifoBuffer, {0: [(1, 0), (2, 1)]})
        arbiter = make_arbiter("dumb", 4, 4)
        grants = arbiter.arbitrate(buffers, never_blocked)
        assert len(grants) == 1
        assert grants[0].output_port == 0  # head of line only

    def test_safc_buffer_feeds_multiple_outputs(self):
        buffers = buffers_with(SafcBuffer, {0: [(1, 0), (2, 1), (3, 2)]})
        arbiter = make_arbiter("dumb", 4, 4)
        grants = arbiter.arbitrate(buffers, never_blocked)
        assert len(grants) == 3
        assert {grant.output_port for grant in grants} == {0, 1, 2}

    def test_damq_buffer_feeds_one_output_per_cycle(self):
        buffers = buffers_with(DamqBuffer, {0: [(1, 0), (2, 1), (3, 2)]})
        arbiter = make_arbiter("dumb", 4, 4)
        grants = arbiter.arbitrate(buffers, never_blocked)
        assert len(grants) == 1


class TestFairness:
    def test_dumb_priority_rotates_every_cycle(self):
        arbiter = make_arbiter("dumb", 4, 4)
        winners = []
        for _ in range(4):
            buffers = buffers_with(DamqBuffer, {i: [(i, 0)] for i in range(4)})
            grants = arbiter.arbitrate(buffers, never_blocked)
            winners.append(grants[0].input_port)
        assert winners == [0, 1, 2, 3]

    def test_smart_priority_sticks_with_starved_buffer(self):
        """A buffer whose turn yields nothing keeps its priority."""
        arbiter = make_arbiter("smart", 4, 4)
        # Buffer 0 has nothing; buffer 1 does.  Buffer 0's turn is not
        # "counted": the pointer stays at 0 until buffer 0 transmits.
        for _ in range(3):
            buffers = buffers_with(DamqBuffer, {1: [(9, 0)]})
            arbiter.arbitrate(buffers, never_blocked)
        buffers = buffers_with(DamqBuffer, {0: [(1, 0)], 1: [(2, 0)]})
        grants = arbiter.arbitrate(buffers, never_blocked)
        assert grants[0].input_port == 0  # kept its priority

    def test_stale_count_breaks_queue_ties(self):
        arbiter = make_arbiter("smart", 4, 4)
        # Cycle 1: buffer 0 has queues for outputs 1 and 2, output 1 is
        # blocked, so queue (0,1) ages.
        buffers = buffers_with(DamqBuffer, {0: [(1, 1), (2, 2)]})

        def block_one(input_port, output_port, packet):
            return output_port == 1

        arbiter.arbitrate(buffers, block_one)
        assert arbiter.stale_count(0, 1) == 1
        # Cycle 2: both outputs free, equal queue lengths — the stale
        # queue (output 1) must win the tie.
        grants = arbiter.arbitrate(buffers, never_blocked)
        assert grants[0].output_port == 1

    def test_stale_count_resets_on_service(self):
        arbiter = make_arbiter("smart", 4, 4)
        buffers = buffers_with(DamqBuffer, {0: [(1, 1), (2, 1)]})
        arbiter.arbitrate(buffers, never_blocked)
        assert arbiter.stale_count(0, 1) == 0

    def test_stale_count_resets_when_queue_empties(self):
        arbiter = make_arbiter("smart", 4, 4)
        buffers = buffers_with(DamqBuffer, {0: [(1, 1)]})
        arbiter.arbitrate(buffers, lambda i, o, p: True)  # everything blocked
        assert arbiter.stale_count(0, 1) == 1
        empty = [DamqBuffer(8, 4) for _ in range(4)]
        arbiter.arbitrate(empty, never_blocked)
        assert arbiter.stale_count(0, 1) == 0


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_arbiter("clever", 4, 4)

    def test_buffer_count_mismatch_rejected(self):
        arbiter = CrossbarArbiter(4, 4, smart=False)
        with pytest.raises(ConfigurationError):
            arbiter.arbitrate([DamqBuffer(4, 4)], never_blocked)

    def test_kind_property(self):
        assert make_arbiter("smart", 2, 2).kind == "smart"
        assert make_arbiter("dumb", 2, 2).kind == "dumb"
