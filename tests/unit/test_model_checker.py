"""Unit tests for the bounded model checker (:mod:`repro.analysis.model`).

Exhaustive exploration is cheap at these parameters (tens to hundreds of
states), so the tests run the real checker end to end: every buffer kind
verifies cleanly, the refinement and dominance properties hold, planted
bugs are detected with replayable minimal counterexamples, and the
explored state graph's stationary distribution matches the analytic
:mod:`repro.markov` chain.
"""

import json
import subprocess
import sys

import pytest

from repro.analysis.__main__ import main, verify_main
from repro.analysis.counterexample import Counterexample
from repro.analysis.model import (
    MUTATIONS,
    cross_validate,
    run_self_test,
    verify_buffer,
    verify_dominance,
    verify_fifo_refinement,
    verify_switch,
)
from repro.core.registry import PAPER_ORDER
from repro.errors import ConfigurationError
from repro.telemetry import read_vcd, validate_chrome_trace


def mutation(name):
    for candidate in MUTATIONS:
        if candidate.name == name:
            return candidate
    raise LookupError(name)


class TestBufferVerification:
    @pytest.mark.parametrize("kind", PAPER_ORDER)
    def test_all_kinds_verify_clean(self, kind):
        # Capacity 4: SAMQ/SAFC need the partition to divide the slots.
        result = verify_buffer(kind, 4, 2)
        assert result.ok, result.describe()
        assert result.stats.states > 1
        assert not result.stats.truncated
        assert result.counterexample is None

    def test_exact_layout_explores_more_damq_states(self):
        exact = verify_buffer("DAMQ", 3, 2, exact_layout=True)
        collapsed = verify_buffer("DAMQ", 3, 2, exact_layout=False)
        assert exact.ok and collapsed.ok
        assert exact.stats.states > collapsed.stats.states

    def test_blocking_protocol_verifies(self):
        result = verify_buffer("SAMQ", 4, 2, protocol="blocking")
        assert result.ok, result.describe()

    def test_state_budget_sets_truncated_flag(self):
        result = verify_buffer("FIFO", 4, 2, max_states=5)
        assert result.ok
        assert result.stats.truncated
        assert result.stats.states <= 5

    def test_unknown_kind_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            verify_buffer("VOQ", 4, 2)


class TestSwitchVerification:
    @pytest.mark.parametrize("kind", PAPER_ORDER)
    def test_small_switch_verifies_clean(self, kind):
        result = verify_switch(kind, 2, 2)
        assert result.ok, result.describe()
        assert result.stats.states > 1
        assert not result.stats.truncated


class TestRefinementAndDominance:
    def test_single_queue_damq_refines_fifo(self):
        result = verify_fifo_refinement(4, 2)
        assert result.ok, result.describe()

    @pytest.mark.parametrize("kind", ["SAMQ", "SAFC"])
    def test_partitioned_acceptance_dominated_by_damq(self, kind):
        result = verify_dominance(kind, 4, 2)
        assert result.ok, result.describe()
        # Strict witnesses: states where DAMQ accepts what the
        # partitioned buffer refuses — the paper's headline advantage.
        assert result.strict_witnesses > 0

    def test_dominance_rejects_damq_argument(self):
        with pytest.raises(ConfigurationError):
            verify_dominance("DAMQ", 4, 2)


class TestSelfTest:
    def test_every_planted_bug_detected(self):
        results = run_self_test()
        assert len(results) == len(MUTATIONS)
        for result in results:
            assert result.detected, result.describe()
            assert result.violation is not None
            assert result.trace_length > 0


class TestCounterexamples:
    @pytest.fixture(scope="class")
    def planted(self):
        """A counterexample found under the fifo-reorder mutation."""
        bug = mutation("fifo-reorder")
        with bug.patch():
            result = bug.check()
        assert result.violation is not None
        assert result.counterexample is not None
        return bug, result

    def test_replay_reproduces_under_mutation(self, planted):
        bug, result = planted
        with bug.patch():
            violation = result.counterexample.replay()
        assert violation is not None
        assert violation.prop == result.violation.prop

    def test_replay_is_clean_without_mutation(self, planted):
        _bug, result = planted
        assert result.counterexample.replay() is None

    def test_json_round_trip(self, planted):
        _bug, result = planted
        payload = json.loads(json.dumps(result.counterexample.to_dict()))
        restored = Counterexample.from_dict(payload)
        assert restored.actions == result.counterexample.actions
        assert restored.config == result.counterexample.config
        assert restored.violation == result.counterexample.violation

    def test_from_dict_rejects_unknown_version(self):
        with pytest.raises(ConfigurationError):
            Counterexample.from_dict({"version": 99, "config": {},
                                      "actions": []})

    def test_render_script_replays_standalone(self, planted, tmp_path):
        bug, result = planted
        script = tmp_path / "replay.py"
        script.write_text(result.counterexample.render_script())
        # Without the mutation the violation must NOT reproduce: exit 1.
        run = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True
        )
        assert run.returncode == 1
        assert "did NOT reproduce" in run.stdout

    def test_waveform_export(self, planted, tmp_path):
        _bug, result = planted
        paths = result.counterexample.export(tmp_path, "cex")
        vcd = read_vcd(paths["vcd"])
        assert vcd["signals"]
        chrome = validate_chrome_trace(paths["chrome"])
        assert chrome["metadata"]


class TestMarkovCrossValidation:
    @pytest.mark.parametrize("kind", PAPER_ORDER)
    def test_stationary_distribution_matches_markov(self, kind):
        validation = cross_validate(kind, 2, 0.6)
        assert validation.ok, validation.describe()
        assert validation.max_error < 1e-9
        assert validation.explored_states > 1

    def test_rate_must_be_open_interval(self):
        with pytest.raises(ConfigurationError):
            cross_validate("FIFO", 2, 1.0)


class TestCommandLine:
    def test_verify_main_smoke(self, capsys):
        code = verify_main(
            ["--buffer", "FIFO", "--slots", "2", "--system", "buffer",
             "--skip-refinements"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "buffer[FIFO]: ok" in out

    def test_model_subcommand_with_cross_validation(self, capsys):
        code = main(
            ["model", "--buffer", "DAMQ", "--slots", "2", "--system",
             "buffer", "--skip-refinements", "--cross-validate"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "markov[DAMQ]" in out

    def test_unknown_buffer_exits_two(self, capsys):
        assert main(["model", "--buffer", "VOQ", "--slots", "2"]) == 2
        assert "aborted" in capsys.readouterr().out
