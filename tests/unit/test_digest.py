"""Regression pins for the shared content-digest helpers.

``repro.utils.digest`` is the single canonical-JSON + SHA-256 encoder
behind cache keys, service job dedup, checkpoint stamps and the kernel
differential harness.  These tests pin the *exact* encodings and hex
digests: a change here silently invalidates every existing cache entry
and breaks cross-backend state comparison, so any intentional change
must update these pins knowingly.
"""

from repro.utils.digest import canonical_json, digest_json, digest_text


class TestCanonicalJson:
    def test_key_order_is_canonicalized(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_encoding_pin(self):
        document = {
            "b": 1,
            "a": [1.5, "x", None, True],
            "nested": {"z": 0.1, "y": -2},
        }
        assert (
            canonical_json(document)
            == '{"a":[1.5,"x",null,true],"b":1,"nested":{"y":-2,"z":0.1}}'
        )

    def test_floats_encode_exactly(self):
        # repr-based float formatting: distinct values never collide.
        assert canonical_json(0.1) != canonical_json(0.1 + 2**-55)


class TestDigestPins:
    def test_digest_text_pin(self):
        assert digest_text("repro") == (
            "681d1638f10411fb29eb810a9184e68742579702b7f53496db912a21c3f9441a"
        )

    def test_digest_json_pin(self):
        document = {
            "b": 1,
            "a": [1.5, "x", None, True],
            "nested": {"z": 0.1, "y": -2},
        }
        assert digest_json(document) == (
            "e88f6652995d67cb9c87cd40f06d090ced1d6fab9be132180dac3ccefa5f98a3"
        )

    def test_empty_document_pin(self):
        assert digest_json({}) == (
            "44136fa355b3678a1146ad16f7e8649e94fb4fc21fe77e8310c060f61caaff8a"
        )

    def test_digest_json_is_digest_of_canonical_text(self):
        document = {"k": [1, 2, 3]}
        assert digest_json(document) == digest_text(canonical_json(document))


class TestSharedConsumers:
    """The consolidated call sites must actually go through this module."""

    def test_cache_keys_reexports_canonical_json(self):
        from repro.cache.keys import canonical_json as reexported

        assert reexported is canonical_json

    def test_job_stale_key_is_digest_json_of_payload(self):
        from repro.service.jobs import JobSpec

        spec = JobSpec(experiment="table2", quick=True, seed=3)
        assert spec.stale_key() == digest_json(spec.payload())
