"""Unit tests for the telemetry subsystem (repro.telemetry).

Covers the metrics registry's bit-exact snapshot/restore/merge contract,
the bounded event ring's drop accounting, the VCD and Chrome trace
exporters (written files must satisfy their own validators), the traced
simulator's counter reconciliation against the plain datapath's own
accounting, and chip-port adoption.
"""

import json

import pytest

from repro.chip import ChipNetwork
from repro.errors import ConfigurationError
from repro.network.simulator import NetworkConfig
from repro.telemetry import (
    EventRing,
    MetricsRegistry,
    TraceEvent,
    TraceSession,
    TracedOmegaNetworkSimulator,
    config_tag,
    jain_fairness,
    read_vcd,
    render_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_vcd,
)
from repro.telemetry.report import merge_metrics_documents, metrics_files


class TestEventRing:
    def test_append_and_iterate_in_order(self):
        ring = EventRing(capacity=4)
        for cycle in range(3):
            ring.append(TraceEvent(cycle, "enqueue", "b", 0, 1, 2))
        assert [event.cycle for event in ring] == [0, 1, 2]
        assert len(ring) == 3
        assert ring.emitted == 3
        assert ring.dropped == 0

    def test_overflow_evicts_oldest_and_counts_drops(self):
        ring = EventRing(capacity=2)
        for cycle in range(5):
            ring.append(TraceEvent(cycle, "enqueue", "b", 0, 1, 2))
        assert [event.cycle for event in ring.events()] == [3, 4]
        assert ring.emitted == 5
        assert ring.dropped == 3

    def test_capacity_zero_counts_but_retains_nothing(self):
        ring = EventRing(capacity=0)
        ring.append(TraceEvent(0, "enqueue", "b", 0, 1, 2))
        assert len(ring) == 0
        assert ring.emitted == 1
        assert ring.dropped == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            EventRing(capacity=-1)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", buffer="a")
        second = registry.counter("hits", buffer="a")
        assert first is second
        assert registry.counter("hits", buffer="b") is not first

    def test_snapshot_survives_json_round_trip_exactly(self):
        registry = MetricsRegistry()
        registry.counter("c", x="1").inc(41)
        registry.gauge("g").set(7)
        hist = registry.histogram("h")
        for value in (0.1, 0.2, 0.7, 3.14159, 1e-12):
            hist.record(value)
        state = json.loads(json.dumps(registry.snapshot_state()))
        restored = MetricsRegistry()
        restored.restore_state(state)
        assert restored.snapshot_state() == registry.snapshot_state()

    def test_restore_mutates_cached_references_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(5)
        state = registry.snapshot_state()
        counter.inc(10)
        registry.restore_state(state)
        assert counter.value == 5  # the same object, rewound

    def test_restore_zeroes_metrics_absent_from_snapshot(self):
        registry = MetricsRegistry()
        state = registry.snapshot_state()  # empty
        straggler = registry.counter("late")
        straggler.inc(3)
        registry.restore_state(state)
        assert straggler.value == 0

    def test_merge_adds_counters_and_merges_histograms(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("c").inc(2)
        right.counter("c").inc(3)
        for value in (1.0, 2.0):
            left.histogram("h").record(value)
        for value in (3.0, 4.0, 5.0):
            right.histogram("h").record(value)
        left.merge(right)
        assert left.value("c") == 5
        merged = left.histogram("h").stats
        reference = MetricsRegistry().histogram("h").stats
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            reference.add(value)
        assert merged.get_state() == reference.get_state()

    def test_merge_gauges_keeps_maximum(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.gauge("g").set(4)
        right.gauge("g").set(9)
        left.merge(right)
        assert left.gauge("g").value == 9
        untouched = MetricsRegistry()
        other = MetricsRegistry()
        other.gauge("g").set(2)
        untouched.merge(other)
        assert untouched.gauge("g").value == 2

    def test_version_mismatch_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.restore_state({"version": 999, "metrics": []})
        with pytest.raises(ConfigurationError):
            registry.merge_state({"version": 999, "metrics": []})

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        assert registry.counter("c", a="1", b="2") is registry.counter(
            "c", b="2", a="1"
        )


class TestJainFairness:
    def test_even_shares_are_perfectly_fair(self):
        # Exact: (4*5)^2 / (4 * 4*25) = 400/400, no rounding involved.
        assert jain_fairness([5, 5, 5, 5]) == 1.0  # repro: noqa=REP004 exact ratio

    def test_single_claimant_is_one_over_n(self):
        assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_nothing_served_reports_fair(self):
        # Both hit the literal-1.0 sentinel branch for empty service.
        assert jain_fairness([0, 0]) == 1.0  # repro: noqa=REP004 exact sentinel
        assert jain_fairness([]) == 1.0  # repro: noqa=REP004 exact sentinel


def _events():
    return [
        TraceEvent(0, "enqueue", "stage0.switch0.in0", 1, 1, 3),
        TraceEvent(1, "enqueue", "stage0.switch0.in0", 1, 2, 2),
        TraceEvent(1, "grant", "stage0.switch0", 0, 1, 1),
        TraceEvent(2, "dequeue", "stage0.switch0.in0", 1, 1, 3),
        TraceEvent(3, "alloc", "stage0.switch1.in2", 0, 5, 1),
        TraceEvent(4, "deliver", "network", 3, 1, 42),
    ]


class TestVcdExport:
    def test_written_file_passes_its_own_parser(self, tmp_path):
        path = write_vcd(_events(), tmp_path / "out.vcd", cycle_clocks=12)
        info = read_vcd(path)
        # q1 + free on switch0.in0, free on switch1.in2.
        assert set(info["signals"]) == {
            "stage0.switch0.in0.q1",
            "stage0.switch0.in0.free",
            "stage0.switch1.in2.free",
        }
        assert info["times"] > 0 and info["changes"] > 0

    def test_timestamps_scale_by_cycle_clocks(self, tmp_path):
        path = write_vcd(_events(), tmp_path / "out.vcd", cycle_clocks=12)
        stamps = [
            int(line[1:])
            for line in path.read_text().splitlines()
            if line.startswith("#")
        ]
        assert stamps == sorted(stamps)
        assert all(stamp % 12 == 0 for stamp in stamps)

    def test_output_is_deterministic(self, tmp_path):
        first = write_vcd(_events(), tmp_path / "a.vcd").read_text()
        second = write_vcd(_events(), tmp_path / "b.vcd").read_text()
        assert first == second

    def test_malformed_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.vcd"
        bad.write_text("$scope module top $end\nnot a vcd line\n")
        with pytest.raises(ConfigurationError):
            read_vcd(bad)


class TestChromeTraceExport:
    def test_written_file_passes_its_own_validator(self, tmp_path):
        path = write_chrome_trace(
            _events(), tmp_path / "t.json", cycle_clocks=12
        )
        counts = validate_chrome_trace(path)
        assert counts["counters"] == 3  # enqueue x2 + dequeue
        assert counts["instants"] == 3  # grant + alloc + deliver
        assert counts["metadata"] > 0

    def test_counter_events_carry_queue_and_free_args(self, tmp_path):
        path = write_chrome_trace(_events(), tmp_path / "t.json")
        document = json.loads(path.read_text())
        counters = [
            event
            for event in document["traceEvents"]
            if event["ph"] == "C"
        ]
        assert counters[0]["args"] == {"q1": 1, "free": 3}

    def test_invalid_document_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{"no": "traceEvents"}]))
        with pytest.raises(ConfigurationError):
            validate_chrome_trace(bad)


class TestTracedSimulator:
    CONFIG = NetworkConfig(
        num_ports=16, radix=4, offered_load=0.6, seed=7
    )

    @pytest.fixture(scope="class")
    def traced(self):
        simulator = TracedOmegaNetworkSimulator(self.CONFIG)
        simulator.run(warmup_cycles=0, measure_cycles=200)
        return simulator

    def test_counters_reconcile_with_datapath(self, traced):
        metrics = traced.session.metrics
        delivered_total = sum(
            sink.received for row in traced._exit_sinks for sink in row
        )
        assert metrics.value("packets_delivered_total") == delivered_total
        assert (
            metrics.value("packets_delivered_measured")
            == traced.meters.delivered
        )
        enqueued = metrics.value("buffer_enqueues_total")
        dequeued = metrics.value("buffer_dequeues_total")
        assert enqueued - dequeued == traced.total_buffered_packets
        assert metrics.value("arbiter_grants_total") == dequeued
        assert metrics.value("link_transfers_total") >= delivered_total

    def test_last_stage_dequeues_equal_deliveries(self, traced):
        metrics = traced.session.metrics
        last = traced.topology.num_stages - 1
        last_stage_dequeues = sum(
            counter.value
            for counter in metrics.counters("buffer_dequeues_total")
            if counter.labels["buffer"].startswith(f"stage{last}.")
        )
        assert last_stage_dequeues == metrics.value("packets_delivered_total")

    def test_events_are_cycle_ordered(self, traced):
        cycles = [event.cycle for event in traced.session.ring]
        assert cycles == sorted(cycles)

    def test_block_events_pair_with_unblocks(self, traced):
        blocks = sum(
            1 for event in traced.session.ring if event.kind == "block"
        )
        unblocks = sum(
            1 for event in traced.session.ring if event.kind == "unblock"
        )
        assert abs(blocks - unblocks) <= traced.session.metrics.value(
            "flow_control_blocks_total"
        )

    def test_export_report_round_trip(self, traced, tmp_path):
        traced.export(tmp_path)
        registry, info = merge_metrics_documents(metrics_files(tmp_path))
        text = render_report(registry, info)
        assert config_tag(self.CONFIG) in text
        assert "arbitration fairness" in text
        assert registry.snapshot_state() == (
            traced.session.metrics.snapshot_state()
        )

    def test_config_tag_is_filesystem_safe(self):
        tag = config_tag(self.CONFIG)
        assert "/" not in tag and "." not in tag
        assert tag == "damq_blocking_uniform_n16_r4_s4_load0p6_seed7"


class TestMetricsOnlyMode:
    def test_ring_empty_but_counters_complete(self):
        simulator = TracedOmegaNetworkSimulator(
            NetworkConfig(num_ports=16, radix=4, offered_load=0.5, seed=3),
            session=TraceSession(capacity=0),
        )
        simulator.run(warmup_cycles=0, measure_cycles=100)
        assert len(simulator.session.ring) == 0
        assert simulator.session.ring.emitted > 0
        assert simulator.session.metrics.value("buffer_enqueues_total") > 0

    def test_export_writes_only_the_metrics_document(self, tmp_path):
        simulator = TracedOmegaNetworkSimulator(
            NetworkConfig(num_ports=16, radix=4, offered_load=0.5, seed=3),
            session=TraceSession(capacity=0),
        )
        simulator.run(warmup_cycles=0, measure_cycles=50)
        written = simulator.export(tmp_path)
        assert [path.name.endswith(".metrics.json") for path in written] == [
            True
        ]


class TestChipAdoption:
    def test_port_counters_reconcile_across_a_link(self):
        session = TraceSession()
        network = ChipNetwork()
        network.add_node("A")
        network.add_node("B")
        network.connect("A", 0, "B", 0)
        for node in network.nodes.values():
            session.adopt_chip(node.chip)
        circuit = network.open_circuit(["A", "B"])
        network.send(circuit, b"telemetry payload " * 4)
        network.run_until_idle()
        metrics = session.metrics
        sent = metrics.value("chip_packets_sent_total")
        received = metrics.value("chip_packets_received_total")
        assert sent > 0
        assert received == sent
        link_events = [
            event for event in session.ring if event.kind == "link"
        ]
        assert len(link_events) > 0
        assert metrics.value("slot_retires_total") >= 0

    def test_adopting_twice_is_idempotent(self):
        session = TraceSession()
        network = ChipNetwork()
        network.add_node("A")
        chip = network.nodes["A"].chip
        session.adopt_chip(chip)
        session.adopt_chip(chip)
        assert len(session.metrics.counters("chip_packets_sent_total")) == 5


class TestArchZooTracing:
    """Telemetry adoption generalizes to the architecture-zoo classes."""

    def test_adopt_arbiter_covers_the_scheduler_zoo(self):
        from repro.arch.schedulers import (
            CrosspointScheduler,
            IterativeScheduler,
        )
        from repro.telemetry.session import (
            TracedCrosspointScheduler,
            TracedIterativeScheduler,
        )

        session = TraceSession()
        lqf = session.adopt_arbiter(CrosspointScheduler(2, 2), "sw0")
        islip = session.adopt_arbiter(
            IterativeScheduler(2, 2, iterations=2), "sw1"
        )
        assert isinstance(lqf, TracedCrosspointScheduler)
        assert isinstance(islip, TracedIterativeScheduler)
        # Re-adoption is a no-op on the same live object.
        assert session.adopt_arbiter(lqf, "sw0") is lqf

    def test_unknown_scheduler_subclass_rejected(self):
        from repro.switch.scheduler import Scheduler

        class Custom(Scheduler):
            def __init__(self):
                self.num_inputs = 2
                self.num_outputs = 2

            @property
            def kind(self):
                return "custom"

            def arbitrate(self, buffers, blocked, lengths=None):
                return []

            def snapshot_state(self):
                return {}

            def restore_state(self, state):
                pass

        session = TraceSession()
        with pytest.raises(ConfigurationError, match="cannot trace arbiter"):
            session.adopt_arbiter(Custom(), "bad")

    def test_traced_scheduler_records_grants_and_denies(self):
        from repro.arch.schedulers import CrosspointScheduler
        from repro.core.packet import Packet
        from repro.core.registry import make_buffer

        session = TraceSession()
        scheduler = session.adopt_arbiter(CrosspointScheduler(2, 2), "sw0")
        buffers = [make_buffer("CQ", 8, 2), make_buffer("CQ", 8, 2)]
        for input_port, buffer in enumerate(buffers):
            buffer.push(
                Packet(packet_id=input_port, source=0, destination=0), 0
            )
        grants = scheduler.arbitrate(buffers, lambda i, o, p: False)
        # Both inputs contend for output 0: one grant, one deny.
        assert len(grants) == 1
        assert session.metrics.value("arbiter_grants_total") == 1
        assert session.metrics.value("arbiter_denies_total") == 1
        kinds = {event.kind for event in session.ring}
        assert {"grant", "deny"} <= kinds

    def test_arch_buffers_are_traceable(self):
        from repro.arch import CrosspointBuffer, DamqReservedBuffer
        from repro.core.packet import Packet
        from repro.telemetry.session import (
            TracedCrosspointBuffer,
            TracedDamqReservedBuffer,
            TracedSlotListManager,
        )

        session = TraceSession()
        reserved = session.adopt_buffer(
            DamqReservedBuffer(8, 4, reserved=1), "rsv0"
        )
        crosspoint = session.adopt_buffer(CrosspointBuffer(8, 4), "cq0")
        assert isinstance(reserved, TracedDamqReservedBuffer)
        assert isinstance(crosspoint, TracedCrosspointBuffer)
        # The reserved DAMQ inherits the slot-manager adoption path.
        assert isinstance(reserved._lists, TracedSlotListManager)
        crosspoint.push(Packet(packet_id=0, source=0, destination=2), 2)
        assert crosspoint.pop(2).packet_id == 0
        assert session.metrics.value("buffer_enqueues_total") == 1
        assert session.metrics.value("buffer_dequeues_total") == 1
