"""Unit tests for the Omega-network topology and self-routing."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.network.topology import OmegaTopology


class TestConstruction:
    def test_paper_configuration(self):
        topology = OmegaTopology(num_ports=64, radix=4)
        assert topology.num_stages == 3
        assert topology.switches_per_stage == 16

    def test_binary_configuration(self):
        topology = OmegaTopology(num_ports=8, radix=2)
        assert topology.num_stages == 3
        assert topology.switches_per_stage == 4

    def test_non_power_rejected(self):
        with pytest.raises(ConfigurationError):
            OmegaTopology(num_ports=48, radix=4)

    def test_tiny_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            OmegaTopology(num_ports=4, radix=1)
        with pytest.raises(ConfigurationError):
            OmegaTopology(num_ports=2, radix=4)


class TestShuffle:
    def test_shuffle_rotates_digits_radix2(self):
        topology = OmegaTopology(num_ports=8, radix=2)
        # 3 bits: shuffle(b2 b1 b0) = b1 b0 b2
        assert topology.shuffle(0b100) == 0b001
        assert topology.shuffle(0b011) == 0b110

    def test_unshuffle_inverts(self):
        topology = OmegaTopology(num_ports=64, radix=4)
        for link in range(64):
            assert topology.unshuffle(topology.shuffle(link)) == link
            assert topology.shuffle(topology.unshuffle(link)) == link

    def test_shuffle_is_permutation(self):
        topology = OmegaTopology(num_ports=16, radix=4)
        assert sorted(topology.shuffle(x) for x in range(16)) == list(range(16))


class TestSelfRouting:
    @pytest.mark.parametrize(
        "num_ports,radix", [(8, 2), (16, 4), (16, 2), (64, 4), (27, 3)]
    )
    def test_every_pair_routes_to_its_destination(self, num_ports, radix):
        topology = OmegaTopology(num_ports, radix)
        for source in range(num_ports):
            for destination in range(num_ports):
                assert (
                    topology.delivered_output(source, destination)
                    == destination
                )

    def test_route_uses_destination_digits_msb_first(self):
        topology = OmegaTopology(num_ports=64, radix=4)
        # destination 27 = 1*16 + 2*4 + 3 -> digits (1, 2, 3)
        assert topology.route(source=0, destination=27) == (1, 2, 3)

    def test_route_length_equals_stages(self):
        topology = OmegaTopology(num_ports=64, radix=4)
        assert len(topology.route(5, 40)) == 3

    def test_trace_visits_every_stage(self):
        topology = OmegaTopology(num_ports=64, radix=4)
        visits = topology.trace(source=10, destination=33)
        assert len(visits) == 3
        for location in visits:
            assert 0 <= location.switch < 16
            assert 0 <= location.port < 4

    def test_next_hop_from_last_stage_rejected(self):
        topology = OmegaTopology(num_ports=16, radix=4)
        with pytest.raises(RoutingError):
            topology.next_hop(stage=1, switch=0, output_port=0)

    def test_entry_point_spreads_sources(self):
        topology = OmegaTopology(num_ports=16, radix=4)
        entries = {
            (loc.switch, loc.port)
            for loc in (topology.entry_point(s) for s in range(16))
        }
        assert len(entries) == 16  # bijective wiring

    def test_link_range_validation(self):
        topology = OmegaTopology(num_ports=16, radix=4)
        with pytest.raises(ConfigurationError):
            topology.route(16, 0)
        with pytest.raises(ConfigurationError):
            topology.shuffle(-1)


class TestHotSpotTree:
    def test_paths_to_one_destination_share_final_switch(self):
        """All traffic to one output converges — the tree-saturation root."""
        topology = OmegaTopology(num_ports=64, radix=4)
        final_switches = {
            topology.trace(source, destination=0)[-1].switch
            for source in range(64)
        }
        assert len(final_switches) == 1
