"""Unit tests for the ``repro.arch`` buffer architectures."""

import pytest

from repro.arch import ARCH_ORDER, CrosspointBuffer, DamqReservedBuffer
from repro.core.packet import Packet
from repro.errors import BufferFullError, ConfigurationError, FaultError


def _packet(packet_id: int, destination: int) -> Packet:
    return Packet(packet_id=packet_id, source=0, destination=destination)


def _fill(buffer, destination, count, start_id=0):
    for index in range(count):
        buffer.push(_packet(start_id + index, destination), destination)
    return start_id + count


class TestDamqReserved:
    def test_kind_and_registry_order(self):
        assert DamqReservedBuffer.kind == "DAMQ-RSV"
        assert "DAMQ-RSV" in ARCH_ORDER

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            DamqReservedBuffer(8, 4, reserved=0)
        with pytest.raises(ConfigurationError):
            DamqReservedBuffer(3, 4, reserved=1)  # capacity < n * reserved

    def test_reservation_survives_a_hot_output(self):
        buffer = DamqReservedBuffer(8, 4, reserved=1)
        # The hot output may take its reservation plus the whole shared
        # pool: 1 + (8 - 4) = 5 slots...
        next_id = _fill(buffer, 0, 5)
        assert not buffer.can_accept(0)
        with pytest.raises(BufferFullError, match="shared pool full"):
            buffer.push(_packet(next_id, 0), 0)
        # ...but every cold output still has its reserved slot.
        for output in (1, 2, 3):
            assert buffer.can_accept(output)
            next_id = _fill(buffer, output, 1, next_id)
        assert buffer.occupancy == 8

    def test_shared_pool_accounting(self):
        buffer = DamqReservedBuffer(8, 2, reserved=2)
        assert buffer.shared_capacity == 4
        assert buffer.shared_used == 0
        next_id = _fill(buffer, 0, 4)  # 2 reserved + 2 shared
        assert buffer.shared_used == 2
        buffer.pop(0)
        buffer.pop(0)
        assert buffer.shared_used == 0
        _fill(buffer, 1, 2, next_id)  # within output 1's reservation
        assert buffer.shared_used == 0

    def test_retire_consumes_shared_slack_only(self):
        buffer = DamqReservedBuffer(4, 2, reserved=1)
        assert buffer.shared_capacity == 2
        buffer.retire_slot()
        buffer.retire_slot()
        assert buffer.shared_capacity == 0
        # Retiring further would break a reservation: refused.
        with pytest.raises(FaultError):
            buffer.retire_slot()
        # Both outputs still accept their reserved packet.
        assert buffer.can_accept(0) and buffer.can_accept(1)
        _fill(buffer, 0, 1)
        assert not buffer.can_accept(0)

    def test_multi_slot_packets_count_against_the_pool(self):
        buffer = DamqReservedBuffer(8, 4, reserved=1)
        big = Packet(packet_id=0, source=0, destination=0, size=5)
        assert buffer.can_accept(0, size=5)
        buffer.push(big, 0)
        assert buffer.shared_used == 4
        assert not buffer.can_accept(0, size=1)
        assert buffer.can_accept(1, size=1)


class TestCrosspoint:
    def test_kind_and_partitioning(self):
        assert CrosspointBuffer.kind == "CQ"
        buffer = CrosspointBuffer(8, 4)
        assert buffer.crosspoint_capacity == 2
        assert buffer.max_reads_per_cycle == 4  # one read port per output

    def test_capacity_must_divide(self):
        with pytest.raises(ConfigurationError, match="not divisible"):
            CrosspointBuffer(6, 4)

    def test_crosspoints_are_hard_partitions(self):
        buffer = CrosspointBuffer(8, 4)
        next_id = _fill(buffer, 0, 2)
        assert not buffer.can_accept(0)
        with pytest.raises(BufferFullError, match="crosspoint for output 0"):
            buffer.push(_packet(next_id, 0), 0)
        # Other crosspoints are unaffected.
        for output in (1, 2, 3):
            assert buffer.can_accept(output)

    def test_retire_picks_the_fullest_crosspoint(self):
        buffer = CrosspointBuffer(8, 4)
        # Thin crosspoint 2 first, then check ties break low.
        assert buffer.retire_slot(2) == 2
        assert buffer.effective_crosspoint_capacity(2) == 1
        assert buffer.retire_slot() == 0  # all others tied at 2, lowest wins
        # Every free slot may be retired; only occupied slots are safe.
        with pytest.raises(FaultError, match="no free slot"):
            for _ in range(8):
                buffer.retire_slot()
        assert buffer.retired_count == 8
        assert all(not buffer.can_accept(output) for output in range(4))

    def test_snapshot_restore_round_trip(self):
        buffer = CrosspointBuffer(8, 4)
        next_id = _fill(buffer, 1, 2)
        _fill(buffer, 3, 1, next_id)
        buffer.retire_slot(0)
        clone = CrosspointBuffer(8, 4)
        clone.restore_state(buffer.snapshot_state())
        assert clone.canonical_state() == buffer.canonical_state()
        assert clone.observable_state() == buffer.observable_state()
        assert clone.pop(1).packet_id == 0
