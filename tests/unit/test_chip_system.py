"""Unit tests for the assembled chip: host adapter, networks, circuits."""

import pytest

from repro.chip import (
    ChipNetwork,
    ComCoBBChip,
    PROCESSOR_PORT,
    TraceRecorder,
    packetize,
)
from repro.errors import ConfigurationError, RoutingError, SimulationError


class TestPacketize:
    def test_small_message_single_packet(self):
        chunks = packetize(b"hello")
        assert len(chunks) == 1
        assert chunks[0] == b"\x05\x00hello"

    def test_length_prefix_little_endian(self):
        chunks = packetize(b"a" * 300)
        assert chunks[0][:2] == (300).to_bytes(2, "little")

    def test_all_chunks_maximal_except_last(self):
        chunks = packetize(b"b" * 100)  # 102 framed bytes
        assert [len(chunk) for chunk in chunks] == [32, 32, 32, 6]

    def test_exact_multiple_still_terminates(self):
        chunks = packetize(b"c" * 62)  # 64 framed bytes
        assert [len(chunk) for chunk in chunks] == [32, 32]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            packetize(b"")

    def test_oversized_rejected(self):
        with pytest.raises(ConfigurationError):
            packetize(b"x" * 70000)


class TestChipConstruction:
    def test_five_ports(self):
        chip = ComCoBBChip("test")
        assert len(chip.buffers) == 5
        assert len(chip.input_ports) == 5
        assert len(chip.output_ports) == 5

    def test_default_twelve_slots(self):
        chip = ComCoBBChip("test")
        assert chip.buffers[0].num_slots == 12

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            ComCoBBChip("test", num_slots=4, stop_threshold=8)


class TestNetworkBuilding:
    def test_connect_validates_ports(self):
        network = ChipNetwork()
        network.add_node("A")
        network.add_node("B")
        with pytest.raises(ConfigurationError):
            network.connect("A", PROCESSOR_PORT, "B", 0)
        with pytest.raises(ConfigurationError):
            network.connect("A", 0, "C", 0)

    def test_port_reuse_rejected(self):
        network = ChipNetwork()
        for name in "ABC":
            network.add_node(name)
        network.connect("A", 0, "B", 0)
        with pytest.raises(ConfigurationError):
            network.connect("A", 0, "C", 1)

    def test_duplicate_node_rejected(self):
        network = ChipNetwork()
        network.add_node("A")
        with pytest.raises(ConfigurationError):
            network.add_node("A")

    def test_circuit_requires_adjacency(self):
        network = ChipNetwork()
        network.add_node("A")
        network.add_node("B")
        with pytest.raises(RoutingError):
            network.open_circuit(["A", "B"])

    def test_circuit_headers_distinct_per_router(self):
        network = ChipNetwork()
        network.add_node("A")
        network.add_node("B")
        network.connect("A", 0, "B", 0)
        first = network.open_circuit(["A", "B"])
        second = network.open_circuit(["A", "B"])
        assert first.header != second.header
        assert first.delivery_tag != second.delivery_tag


class TestMessageDelivery:
    def build_pair(self):
        network = ChipNetwork()
        network.add_node("A")
        network.add_node("B")
        network.connect("A", 0, "B", 0)
        return network

    def test_single_byte_message(self):
        network = self.build_pair()
        circuit = network.open_circuit(["A", "B"])
        network.send(circuit, b"\x42")
        network.run_until_idle()
        messages = network.nodes["B"].host.received_messages
        assert len(messages) == 1
        assert messages[0].payload == b"\x42"
        assert messages[0].packet_count == 1

    def test_multi_packet_message_reassembled(self):
        network = self.build_pair()
        circuit = network.open_circuit(["A", "B"])
        payload = bytes(range(256)) * 2
        network.send(circuit, payload)
        network.run_until_idle()
        assert network.nodes["B"].host.received_messages[0].payload == payload

    def test_bidirectional_simultaneous(self):
        network = self.build_pair()
        to_b = network.open_circuit(["A", "B"])
        to_a = network.open_circuit(["B", "A"])
        network.send(to_b, b"ping" * 20)
        network.send(to_a, b"pong" * 20)
        network.run_until_idle()
        assert network.nodes["B"].host.received_messages[0].payload == b"ping" * 20
        assert network.nodes["A"].host.received_messages[0].payload == b"pong" * 20

    def test_multi_hop_delivery(self):
        network = ChipNetwork()
        for name in "ABC":
            network.add_node(name)
        network.connect("A", 0, "B", 0)
        network.connect("B", 1, "C", 0)
        circuit = network.open_circuit(["A", "B", "C"])
        network.send(circuit, b"through the middle")
        network.run_until_idle()
        assert (
            network.nodes["C"].host.received_messages[0].payload
            == b"through the middle"
        )
        assert not network.nodes["B"].host.received_messages

    def test_two_circuits_interleaved_to_same_destination(self):
        network = self.build_pair()
        first = network.open_circuit(["A", "B"])
        second = network.open_circuit(["A", "B"])
        network.send(first, b"first message payload " * 4)
        network.send(second, b"second payload " * 4)
        network.run_until_idle()
        received = {
            message.delivery_tag: message.payload
            for message in network.nodes["B"].host.received_messages
        }
        assert received[first.delivery_tag] == b"first message payload " * 4
        assert received[second.delivery_tag] == b"second payload " * 4

    def test_messages_on_one_circuit_arrive_in_order(self):
        network = self.build_pair()
        circuit = network.open_circuit(["A", "B"])
        for index in range(5):
            network.send(circuit, bytes([index]) * 10)
        network.run_until_idle()
        payloads = [
            message.payload
            for message in network.nodes["B"].host.received_messages
        ]
        assert payloads == [bytes([i]) * 10 for i in range(5)]

    def test_invariants_after_traffic(self):
        network = self.build_pair()
        circuit = network.open_circuit(["A", "B"])
        network.send(circuit, b"z" * 500)
        network.run_until_idle()
        network.check_invariants()

    def test_run_until_idle_bounded(self):
        network = self.build_pair()
        with pytest.raises(SimulationError):
            # An absurdly small bound on an active network must raise.
            circuit = network.open_circuit(["A", "B"])
            network.send(circuit, b"x" * 2000)
            network.run_until_idle(max_cycles=3)


class TestCutThroughTiming:
    def test_turnaround_is_four_cycles_on_idle_port(self):
        trace = TraceRecorder()
        network = ChipNetwork(trace=trace)
        network.add_node("A")
        network.add_node("B")
        network.connect("A", 0, "B", 0)
        circuit = network.open_circuit(["A", "B"])
        network.send(circuit, b"q")
        network.run_until_idle()
        turnarounds = [
            int(event.action.split("turnaround ")[1].split()[0])
            for event in trace.filter(contains="turnaround")
        ]
        assert turnarounds  # at least A's PI->out0 and B's in0->PI
        assert all(value == 4 for value in turnarounds)

    def test_per_hop_pipeline_latency(self):
        """Across a chain, each hop adds exactly 4 cycles when idle."""
        network = ChipNetwork()
        names = ["N0", "N1", "N2", "N3"]
        for name in names:
            network.add_node(name)
        for left, right in zip(names[:-1], names[1:]):
            network.connect(left, 0 if left == "N0" else 1, right, 0)
        short = network.open_circuit(["N0", "N1"])
        network.send(short, b"a")
        network.run_until_idle()
        short_cycle = network.nodes["N1"].host.received_messages[0].completed_cycle
        start_cycle = network.cycle

        long = network.open_circuit(["N0", "N1", "N2", "N3"])
        network.send(long, b"a")
        network.run_until_idle()
        long_cycle = network.nodes["N3"].host.received_messages[0].completed_cycle
        # Two more hops -> exactly 8 more cycles of pipeline latency.
        assert (long_cycle - start_cycle) - short_cycle == 8
