"""Tests for the shared exponential-backoff policy (repro.utils.backoff)."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.backoff import BackoffPolicy


class TestValidation:
    def test_rejects_nonpositive_base(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=0.0)

    def test_rejects_factor_below_one(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=1.0, factor=0.5)

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=1.0, max_attempts=0)

    def test_rejects_jitter_out_of_range(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=1.0, jitter=1.5)


class TestSchedule:
    def test_exponential_growth_without_jitter(self):
        # Powers of two: the schedule is exact, == is the contract
        # (the transport layer depends on bit-identical timeouts).
        policy = BackoffPolicy(base=1.0, factor=2.0, cap_multiple=64.0)
        assert policy.delay(1) == 1.0  # repro: noqa=REP004 exact powers of two
        assert policy.delay(2) == 2.0  # repro: noqa=REP004 exact powers of two
        assert policy.delay(3) == 4.0  # repro: noqa=REP004 exact powers of two
        assert policy.delay(4) == 8.0  # repro: noqa=REP004 exact powers of two

    def test_cap_bounds_the_delay(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, cap_multiple=4.0)
        assert policy.delay(10) == 4.0  # repro: noqa=REP004 exact cap

    def test_exhaustion_budget(self):
        policy = BackoffPolicy(base=1.0, max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)

    def test_schedule_lists_the_waits_between_attempts(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, max_attempts=4)
        # repro: noqa=REP004 exact powers of two
        assert policy.schedule() == [1.0, 2.0, 4.0]


class TestJitter:
    def test_jitter_is_deterministic_per_key_and_attempt(self):
        policy = BackoffPolicy(base=1.0, jitter=0.5, seed=7)
        again = BackoffPolicy(base=1.0, jitter=0.5, seed=7)
        assert policy.delay(2, key="a") == again.delay(2, key="a")

    def test_jitter_differs_across_keys(self):
        policy = BackoffPolicy(base=1.0, jitter=0.5, seed=7)
        delays = {policy.delay(1, key=f"task-{n}") for n in range(16)}
        assert len(delays) > 1

    def test_jitter_stays_within_fraction(self):
        policy = BackoffPolicy(base=1.0, factor=1.0, jitter=0.25)
        for attempt in range(1, 8):
            delay = policy.delay(attempt, key="bounded")
            assert 1.0 <= delay <= 1.25

    def test_seed_changes_the_draws(self):
        one = BackoffPolicy(base=1.0, jitter=0.5, seed=1)
        two = BackoffPolicy(base=1.0, jitter=0.5, seed=2)
        draws_one = [one.delay(a, key="k") for a in range(1, 6)]
        draws_two = [two.delay(a, key="k") for a in range(1, 6)]
        assert draws_one != draws_two


class TestSharedUsers:
    def test_transport_uses_policy_for_timeouts(self):
        """ReliableChannel derives its retransmit timeouts from the policy."""
        from repro.faults.transport import ReliableChannel

        channel = ReliableChannel.__new__(ReliableChannel)
        policy = BackoffPolicy(
            base=4, factor=2.0, cap_multiple=8.0, max_attempts=5
        )
        channel._backoff = policy
        assert channel._timeout(1) == 4
        assert channel._timeout(2) == 8
        assert channel._timeout(3) == 16
        assert channel._timeout(4) == 32  # capped at base * cap_multiple
        assert channel._timeout(5) == 32

    def test_parallel_restart_policy_is_shared_shape(self):
        from repro.perf.parallel import RESTART_POLICY

        assert isinstance(RESTART_POLICY, BackoffPolicy)
        assert RESTART_POLICY.max_attempts == 3

    def test_service_task_retry_is_shared_shape(self):
        from repro.service.backoff import TASK_RETRY

        assert isinstance(TASK_RETRY, BackoffPolicy)
        assert TASK_RETRY.jitter > 0
