"""Unit tests for the hardware-faithful slot linked-list manager."""

import pytest

from repro.core.linkedlist import NO_SLOT, SlotListManager
from repro.errors import BufferEmptyError, BufferFullError, ConfigurationError


class TestConstruction:
    def test_initial_free_list_chains_every_slot(self):
        manager = SlotListManager(num_slots=6, num_lists=3)
        assert manager.free_count == 6
        assert manager.free_slots() == [0, 1, 2, 3, 4, 5]

    def test_initial_lists_are_empty(self):
        manager = SlotListManager(num_slots=4, num_lists=2)
        assert manager.length(0) == 0
        assert manager.length(1) == 0
        assert manager.occupancy() == 0

    def test_rejects_zero_slots(self):
        with pytest.raises(ConfigurationError):
            SlotListManager(num_slots=0, num_lists=1)

    def test_rejects_zero_lists(self):
        with pytest.raises(ConfigurationError):
            SlotListManager(num_slots=4, num_lists=0)


class TestAllocate:
    def test_allocate_takes_free_head(self):
        manager = SlotListManager(num_slots=4, num_lists=2)
        assert manager.allocate(0) == 0
        assert manager.allocate(0) == 1
        assert manager.free_count == 2

    def test_allocate_appends_to_list_tail(self):
        manager = SlotListManager(num_slots=4, num_lists=2)
        manager.allocate(1)
        manager.allocate(1)
        assert manager.slots(1) == [0, 1]
        assert manager.head(1) == 0
        assert manager.tail(1) == 1

    def test_allocate_exhausted_raises(self):
        manager = SlotListManager(num_slots=2, num_lists=1)
        manager.allocate(0)
        manager.allocate(0)
        with pytest.raises(BufferFullError):
            manager.allocate(0)

    def test_allocate_interleaves_lists(self):
        manager = SlotListManager(num_slots=6, num_lists=2)
        manager.allocate(0)  # slot 0
        manager.allocate(1)  # slot 1
        manager.allocate(0)  # slot 2
        assert manager.slots(0) == [0, 2]
        assert manager.slots(1) == [1]

    def test_pointer_registers_chain_the_list(self):
        manager = SlotListManager(num_slots=4, num_lists=1)
        manager.allocate(0)
        manager.allocate(0)
        manager.allocate(0)
        assert manager.next_slot(0) == 1
        assert manager.next_slot(1) == 2
        assert manager.next_slot(2) == NO_SLOT


class TestRelease:
    def test_release_returns_head_slot(self):
        manager = SlotListManager(num_slots=4, num_lists=2)
        manager.allocate(0)
        manager.allocate(0)
        assert manager.release_head(0) == 0
        assert manager.slots(0) == [1]

    def test_release_recycles_to_free_tail(self):
        manager = SlotListManager(num_slots=3, num_lists=1)
        manager.allocate(0)  # slot 0; free = [1, 2]
        manager.release_head(0)
        assert manager.free_slots() == [1, 2, 0]

    def test_release_empty_raises(self):
        manager = SlotListManager(num_slots=2, num_lists=1)
        with pytest.raises(BufferEmptyError):
            manager.release_head(0)

    def test_full_cycle_returns_all_slots(self):
        manager = SlotListManager(num_slots=3, num_lists=2)
        for _ in range(3):
            manager.allocate(1)
        for _ in range(3):
            manager.release_head(1)
        assert manager.free_count == 3
        assert manager.occupancy() == 0

    def test_fifo_order_within_list(self):
        manager = SlotListManager(num_slots=5, num_lists=1)
        allocated = [manager.allocate(0) for _ in range(5)]
        released = [manager.release_head(0) for _ in range(5)]
        assert released == allocated


class TestCutThroughHeadRegister:
    """Empty lists point at the free head — the cut-through enabler."""

    def test_empty_list_head_is_free_head(self):
        manager = SlotListManager(num_slots=4, num_lists=2)
        assert manager.head(0) == 0
        manager.allocate(1)  # consumes slot 0
        assert manager.head(0) == 1  # free head moved

    def test_allocation_lands_on_predicted_slot(self):
        """The slot a cut-through would stream into is the one allocated."""
        manager = SlotListManager(num_slots=4, num_lists=2)
        predicted = manager.head(0)
        assert manager.allocate(0) == predicted

    def test_empty_list_with_no_free_slots(self):
        manager = SlotListManager(num_slots=1, num_lists=2)
        manager.allocate(0)
        assert manager.head(1) == NO_SLOT
        assert manager.peek_free() == NO_SLOT

    def test_nonempty_list_head_unaffected_by_free_list(self):
        manager = SlotListManager(num_slots=4, num_lists=2)
        manager.allocate(0)
        manager.allocate(1)
        assert manager.head(0) == 0


class TestValidation:
    def test_invariants_hold_through_mixed_operations(self):
        manager = SlotListManager(num_slots=8, num_lists=3)
        script = [
            ("alloc", 0), ("alloc", 1), ("alloc", 0), ("rel", 0),
            ("alloc", 2), ("alloc", 2), ("rel", 2), ("alloc", 1),
            ("rel", 1), ("rel", 0), ("alloc", 0),
        ]
        for op, list_id in script:
            if op == "alloc":
                manager.allocate(list_id)
            else:
                manager.release_head(list_id)
            manager.check_invariants()

    def test_bad_list_id_rejected(self):
        manager = SlotListManager(num_slots=2, num_lists=2)
        with pytest.raises(ConfigurationError):
            manager.length(2)
        with pytest.raises(ConfigurationError):
            manager.allocate(-1)

    def test_bad_slot_id_rejected(self):
        manager = SlotListManager(num_slots=2, num_lists=1)
        with pytest.raises(ConfigurationError):
            manager.next_slot(5)

    def test_length_tracks_operations(self):
        manager = SlotListManager(num_slots=4, num_lists=2)
        manager.allocate(0)
        manager.allocate(0)
        manager.allocate(1)
        assert manager.length(0) == 2
        assert manager.length(1) == 1
        assert manager.occupancy() == 3
        assert manager.is_empty(0) is False
        manager.release_head(0)
        manager.release_head(0)
        assert manager.is_empty(0) is True
