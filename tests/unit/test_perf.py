"""Tests for the parallel experiment engine and the perf harness."""

import json
import os

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.network.simulator import NetworkConfig
from repro.perf import (
    parallel_map,
    parallel_simulate,
    reset_simulated_cycles,
    resolve_jobs,
    simulated_cycles,
)
from repro.perf.harness import (
    BENCH_SCHEMA,
    compare_to_baseline,
    load_bench,
    measure_experiment,
    write_bench,
)

#: A small grid of independent configs (different loads and seeds).
GRID = [
    NetworkConfig(
        num_ports=16, radix=4, offered_load=load, seed=seed
    )
    for load, seed in [(0.3, 1), (0.6, 2), (0.9, 3)]
]


def fingerprint(result) -> tuple:
    """Exact per-run signature used to compare serial vs parallel rows."""
    meters = result.meters
    return (
        meters.generated,
        meters.injected,
        meters.delivered,
        meters.discarded,
        meters.latency.count,
        meters.latency.mean,
        meters.latency._m2,
    )


def _crash(_item):  # pragma: no cover - runs in the worker process
    os._exit(13)  # simulate a segfault/OOM kill: no exception, no result


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_none_and_zero_mean_cpu_count(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2)


class TestParallelSimulate:
    def test_parallel_rows_identical_to_serial(self):
        serial = parallel_simulate(GRID, 100, 400, jobs=1)
        parallel = parallel_simulate(GRID, 100, 400, jobs=4)
        assert [fingerprint(r) for r in serial] == [
            fingerprint(r) for r in parallel
        ]

    def test_cycle_accounting(self):
        reset_simulated_cycles()
        parallel_simulate(GRID, 100, 400, jobs=1)
        assert simulated_cycles() == (100 + 400) * len(GRID)
        reset_simulated_cycles()
        assert simulated_cycles() == 0


class TestParallelMap:
    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(_div_by_zero, [1, 2], jobs=2)

    def test_crashed_worker_reported_cleanly(self):
        with pytest.raises(SimulationError):
            parallel_map(_crash, [1, 2], jobs=2)


def _div_by_zero(item):  # pragma: no cover - runs in the worker process
    return item / 0


class TestHarness:
    def test_measure_experiment_record_shape(self, monkeypatch):
        # Register a tiny simulation-backed experiment so the test does
        # not pay for a real table's grid.
        from repro.experiments import runner

        def dummy(quick=False, seed=1988, jobs=1):
            parallel_simulate(GRID[:1], 50, 150, jobs=jobs)

        monkeypatch.setitem(runner.EXPERIMENTS, "dummy-sim", dummy)
        record = measure_experiment("dummy-sim", quick=True, jobs=1)
        assert set(record) == {"wall_s", "cycles_per_s", "jobs"}
        assert record["wall_s"] > 0
        # 200 simulated cycles over the measured wall time.
        assert record["cycles_per_s"] > 0
        assert record["jobs"] == 1

    def test_bench_roundtrip_and_schema_check(self, tmp_path):
        document = {
            "schema": BENCH_SCHEMA,
            "mode": "quick",
            "jobs": 1,
            "experiments": {"x": {"wall_s": 1.0, "cycles_per_s": 5.0, "jobs": 1}},
        }
        path = write_bench(document, tmp_path / "BENCH_test.json")
        assert load_bench(path) == document
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 99}))
        with pytest.raises(ConfigurationError):
            load_bench(bad)

    def test_compare_to_baseline(self):
        baseline = {
            "schema": BENCH_SCHEMA,
            "mode": "quick",
            "experiments": {
                "a": {"wall_s": 1.0, "cycles_per_s": 10.0, "jobs": 1},
                "b": {"wall_s": 2.0, "cycles_per_s": 10.0, "jobs": 1},
            },
        }
        current = {
            "schema": BENCH_SCHEMA,
            "mode": "quick",
            "experiments": {
                "a": {"wall_s": 1.2, "cycles_per_s": 9.0, "jobs": 1},
                "b": {"wall_s": 9.0, "cycles_per_s": 2.0, "jobs": 1},
                # Only-in-current experiments are skipped, not errors.
                "c": {"wall_s": 50.0, "cycles_per_s": 1.0, "jobs": 1},
            },
        }
        failures = compare_to_baseline(current, baseline, max_regression=3.0)
        assert len(failures) == 1 and "b:" in failures[0]
        assert compare_to_baseline(current, baseline, max_regression=10.0) == []

    def test_compare_rejects_mode_mismatch(self):
        quick = {"schema": BENCH_SCHEMA, "mode": "quick", "experiments": {}}
        full = {"schema": BENCH_SCHEMA, "mode": "full", "experiments": {}}
        assert "mode mismatch" in compare_to_baseline(quick, full)[0]

    def test_compare_rejects_backend_mismatch(self):
        numpy_doc = {
            "schema": BENCH_SCHEMA,
            "mode": "quick",
            "backend": "numpy",
            "experiments": {},
        }
        reference = {
            "schema": BENCH_SCHEMA,
            "mode": "quick",
            "backend": "reference",
            "experiments": {},
        }
        failures = compare_to_baseline(numpy_doc, reference)
        assert failures and "backend mismatch" in failures[0]

    def test_schema_v1_baseline_reads_as_reference_backend(self, tmp_path):
        # Pre-backend benchmark files (schema 1, no backend field) must
        # stay loadable and compare cleanly against a reference run.
        v1 = {
            "schema": 1,
            "mode": "quick",
            "experiments": {"a": {"wall_s": 1.0, "cycles_per_s": 10.0, "jobs": 1}},
        }
        path = tmp_path / "BENCH_v1.json"
        path.write_text(json.dumps(v1))
        baseline = load_bench(path)
        current = {
            "schema": BENCH_SCHEMA,
            "mode": "quick",
            "backend": "reference",
            "experiments": {"a": {"wall_s": 1.1, "cycles_per_s": 9.0, "jobs": 1}},
        }
        assert compare_to_baseline(current, baseline, max_regression=3.0) == []

    def test_invalid_max_regression_rejected(self):
        quick = {"schema": BENCH_SCHEMA, "mode": "quick", "experiments": {}}
        with pytest.raises(ConfigurationError):
            compare_to_baseline(quick, quick, max_regression=0)
