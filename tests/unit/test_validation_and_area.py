"""Unit tests for the extension modules: Markov cross-validation and the
slot-size area model."""

import pytest

from repro.chip.area import (
    estimate_slot_size,
    slot_size_sweep,
    uniform_length_distribution,
)
from repro.errors import ConfigurationError
from repro.markov.validation import LongClockSwitchSimulator, validate


class TestLongClockSimulator:
    def test_zero_traffic_stays_empty(self):
        simulator = LongClockSwitchSimulator("DAMQ", 4, traffic_rate=0.0)
        simulator.run(100)
        assert simulator.arrivals == 0
        assert simulator.discards == 0
        assert all(state == (0, 0) for state in simulator.states)

    def test_full_traffic_generates_every_cycle(self):
        simulator = LongClockSwitchSimulator("FIFO", 2, traffic_rate=1.0)
        simulator.run(500)
        assert simulator.arrivals == 1000

    def test_states_remain_legal(self):
        simulator = LongClockSwitchSimulator("SAMQ", 4, traffic_rate=0.9)
        for _ in range(300):
            simulator.step()
            for state in simulator.states:
                assert all(0 <= count <= 2 for count in state)

    def test_deterministic_under_seed(self):
        first = LongClockSwitchSimulator("DAMQ", 3, 0.8, seed=3)
        second = LongClockSwitchSimulator("DAMQ", 3, 0.8, seed=3)
        first.run(200)
        second.run(200)
        assert first.discards == second.discards
        assert first.states == second.states

    @pytest.mark.parametrize("kind", ["FIFO", "DAMQ", "SAMQ", "SAFC"])
    def test_agrees_with_markov_prediction(self, kind):
        report = validate(kind, 2, traffic_rate=0.9, cycles=40_000)
        assert report.discard_error < 0.01, report.describe()
        assert (
            abs(report.analytic_throughput - report.simulated_throughput)
            < 0.01
        )

    def test_report_describe(self):
        report = validate("DAMQ", 2, 0.5, cycles=2_000)
        text = report.describe()
        assert "DAMQ" in text and "analytic" in text


class TestAreaModel:
    def test_uniform_distribution_sums_to_one(self):
        lengths = uniform_length_distribution()
        assert sum(lengths.values()) == pytest.approx(1.0)
        assert set(lengths) == set(range(1, 33))

    def test_register_overhead_decreases_with_slot_size(self):
        estimates = slot_size_sweep((4, 8, 16, 32))
        overheads = [e.register_bits_per_byte for e in estimates]
        assert overheads == sorted(overheads, reverse=True)

    def test_fragmentation_increases_with_slot_size(self):
        estimates = slot_size_sweep((4, 8, 16, 32))
        fragmentation = [e.expected_fragmentation for e in estimates]
        assert fragmentation == sorted(fragmentation)

    def test_32_byte_slot_never_chains(self):
        estimate = estimate_slot_size(32)
        assert estimate.pointer_ops_per_packet == pytest.approx(1.0)

    def test_fixed_length_distribution(self):
        # All packets exactly 4 bytes: an 8-byte slot wastes half.
        estimate = estimate_slot_size(8, lengths={4: 1.0})
        assert estimate.expected_fragmentation == pytest.approx(0.5)
        assert estimate.pointer_ops_per_packet == pytest.approx(1.0)

    def test_budget_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_slot_size(4, buffer_bytes=16)  # max packet needs 32

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_slot_size(8, lengths={4: 0.4})

    def test_capacity_matches_slots_over_mean(self):
        estimate = estimate_slot_size(8, lengths={8: 0.5, 16: 0.5})
        # 12 slots, 1.5 slots per packet on average.
        assert estimate.expected_packets_capacity == pytest.approx(8.0)


class TestVariableSizeSources:
    def test_sizes_drawn_within_range(self):
        from repro.network import NetworkConfig
        from repro.network.simulator import OmegaNetworkSimulator

        config = NetworkConfig(
            num_ports=16,
            buffer_kind="DAMQ",
            slots_per_buffer=8,
            offered_load=1.0,
            packet_size=1,
            packet_size_max=3,
            seed=8,
        )
        simulator = OmegaNetworkSimulator(config)
        sizes = set()
        for _ in range(50):
            simulator.step()
        for source in simulator.sources:
            for packet in source.queue:
                sizes.add(packet.size)
        for row in simulator.switches:
            for switch in row:
                for buffer in switch.buffers:
                    for packet in buffer.packets():
                        sizes.add(packet.size)
        assert sizes <= {1, 2, 3}
        assert len(sizes) > 1

    def test_invalid_range_rejected(self):
        from repro.core.packet import PacketFactory
        from repro.errors import ConfigurationError
        from repro.network.sources import Source
        from repro.network.topology import OmegaTopology
        from repro.network.traffic import UniformTraffic
        from repro.utils.rng import RandomStream

        with pytest.raises(ConfigurationError):
            Source(
                port=0,
                offered_load=0.5,
                topology=OmegaTopology(16, 4),
                pattern=UniformTraffic(16),
                factory=PacketFactory(),
                rng=RandomStream(1, "x"),
                packet_size=3,
                packet_size_max=2,
            )
