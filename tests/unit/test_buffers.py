"""Unit tests for the four buffer architectures against the shared contract.

Parametrized tests cover the :class:`SwitchBuffer` contract for all four
types; per-architecture classes pin down the behaviours that distinguish
them (head-of-line blocking, static partitioning, dynamic sharing, read
fan-out).
"""

import pytest

from repro.core import (
    DamqBuffer,
    FifoBuffer,
    SafcBuffer,
    SamqBuffer,
)
from repro.errors import BufferEmptyError, BufferFullError, ConfigurationError
from tests.conftest import fill_buffer, make_packet

ALL_TYPES = [FifoBuffer, SamqBuffer, SafcBuffer, DamqBuffer]


@pytest.fixture(params=ALL_TYPES, ids=lambda cls: cls.kind)
def any_buffer(request):
    """One 4-slot, 4-output buffer of each architecture."""
    return request.param(capacity=4, num_outputs=4)


class TestSharedContract:
    def test_starts_empty(self, any_buffer):
        assert any_buffer.is_empty
        assert any_buffer.occupancy == 0
        assert any_buffer.free_slots == 4
        assert any_buffer.available_outputs() == []

    def test_push_then_peek_then_pop(self, any_buffer):
        packet = make_packet(packet_id=7, destination=2)
        any_buffer.push(packet, 2)
        assert any_buffer.occupancy == 1
        assert any_buffer.peek(2) is packet
        assert any_buffer.pop(2) is packet
        assert any_buffer.is_empty

    def test_pop_empty_raises(self, any_buffer):
        with pytest.raises(BufferEmptyError):
            any_buffer.pop(0)

    def test_push_beyond_capacity_raises(self, any_buffer):
        # Fill destination 1 to its limit, whatever that limit is.
        destination = 1
        count = 0
        while any_buffer.can_accept(destination):
            any_buffer.push(make_packet(packet_id=count, destination=destination), destination)
            count += 1
        with pytest.raises(BufferFullError):
            any_buffer.push(make_packet(packet_id=99, destination=destination), destination)

    @pytest.mark.parametrize("cls", ALL_TYPES, ids=lambda c: c.kind)
    def test_fifo_order_within_one_destination(self, cls):
        # capacity 8 so even the statically partitioned types hold two
        # packets per destination (partition of 2).
        buffer = cls(capacity=8, num_outputs=4)
        first = make_packet(packet_id=1, destination=0)
        second = make_packet(packet_id=2, destination=0)
        buffer.push(first, 0)
        buffer.push(second, 0)
        assert buffer.pop(0) is first
        assert buffer.pop(0) is second

    def test_invalid_output_index_rejected(self, any_buffer):
        with pytest.raises(ConfigurationError):
            any_buffer.peek(4)
        with pytest.raises(ConfigurationError):
            any_buffer.can_accept(-1)

    def test_packets_lists_everything(self, any_buffer):
        pushed = {
            any_buffer.push(make_packet(packet_id=i, destination=i), i) or i
            for i in range(3)
        }
        ids = {packet.packet_id for packet in any_buffer.packets()}
        assert ids == pushed

    def test_queue_length_zero_when_empty(self, any_buffer):
        for output in range(4):
            assert any_buffer.queue_length(output) == 0

    def test_capacity_validation(self):
        for cls in ALL_TYPES:
            with pytest.raises(ConfigurationError):
                cls(capacity=0, num_outputs=4)


class TestConservativeAcceptance:
    """can_accept_without_prerouting — the Section 2 flow-control question."""

    def test_single_pool_buffers_match_can_accept(self):
        for cls in (FifoBuffer, DamqBuffer):
            buffer = cls(capacity=4, num_outputs=4)
            fill_buffer(buffer, destination=0, count=3)
            assert buffer.can_accept_without_prerouting() is True
            fill_buffer(buffer, destination=1, count=1, start_id=50)
            assert buffer.can_accept_without_prerouting() is False

    def test_partitioned_buffer_needs_every_partition_open(self):
        buffer = SamqBuffer(capacity=4, num_outputs=4)
        assert buffer.can_accept_without_prerouting() is True
        buffer.push(make_packet(packet_id=1, destination=2), 2)
        # Partition 2 is full; a non-pre-routed packet cannot be promised.
        assert buffer.can_accept_without_prerouting() is False
        assert buffer.can_accept(0) is True  # precise knowledge still fits

    def test_size_parameter_respected(self):
        buffer = DamqBuffer(capacity=4, num_outputs=2)
        fill_buffer(buffer, destination=0, count=2)
        assert buffer.can_accept_without_prerouting(size=2) is True
        assert buffer.can_accept_without_prerouting(size=3) is False


class TestFifoSpecifics:
    def test_head_of_line_blocking(self):
        """A head packet for a busy port hides everything behind it."""
        buffer = FifoBuffer(capacity=4, num_outputs=4)
        buffer.push(make_packet(packet_id=1, destination=0), 0)
        buffer.push(make_packet(packet_id=2, destination=3), 3)
        assert buffer.peek(3) is None  # blocked behind the packet for 0
        assert buffer.available_outputs() == [0]

    def test_queue_length_attributed_to_head(self):
        buffer = FifoBuffer(capacity=4, num_outputs=4)
        buffer.push(make_packet(packet_id=1, destination=2), 2)
        buffer.push(make_packet(packet_id=2, destination=0), 0)
        assert buffer.queue_length(2) == 2  # whole buffer counts
        assert buffer.queue_length(0) == 0

    def test_whole_capacity_usable_by_one_destination(self):
        buffer = FifoBuffer(capacity=4, num_outputs=4)
        fill_buffer(buffer, destination=1, count=4)
        assert buffer.occupancy == 4
        assert not buffer.can_accept(2)

    def test_head_destination_helper(self):
        buffer = FifoBuffer(capacity=4, num_outputs=4)
        assert buffer.head_destination() is None
        buffer.push(make_packet(packet_id=1, destination=3), 3)
        assert buffer.head_destination() == 3

    def test_variable_size_packet_occupies_multiple_slots(self):
        buffer = FifoBuffer(capacity=4, num_outputs=2)
        big = make_packet(packet_id=1, destination=0, size=3)
        buffer.push(big, 0)
        assert buffer.occupancy == 3
        assert not buffer.can_accept(0, size=2)
        assert buffer.can_accept(0, size=1)
        assert buffer.pop(0) is big
        assert buffer.is_empty


class TestSamqSpecifics:
    def test_capacity_must_divide(self):
        with pytest.raises(ConfigurationError):
            SamqBuffer(capacity=5, num_outputs=4)

    def test_static_partition_rejects_when_full(self):
        buffer = SamqBuffer(capacity=4, num_outputs=4)
        buffer.push(make_packet(packet_id=1, destination=0), 0)
        assert not buffer.can_accept(0)  # partition of 1 slot is full
        assert buffer.can_accept(1)  # but other partitions are open
        with pytest.raises(BufferFullError):
            buffer.push(make_packet(packet_id=2, destination=0), 0)

    def test_no_head_of_line_blocking_across_queues(self):
        buffer = SamqBuffer(capacity=8, num_outputs=4)
        buffer.push(make_packet(packet_id=1, destination=0), 0)
        buffer.push(make_packet(packet_id=2, destination=3), 3)
        assert buffer.peek(3) is not None
        assert sorted(buffer.available_outputs()) == [0, 3]

    def test_partition_occupancy(self):
        buffer = SamqBuffer(capacity=8, num_outputs=4)
        fill_buffer(buffer, destination=2, count=2)
        assert buffer.partition_occupancy(2) == 2
        assert buffer.partition_occupancy(0) == 0

    def test_single_read_port_flag(self):
        assert SamqBuffer(4, 4).max_reads_per_cycle == 1


class TestSafcSpecifics:
    def test_read_fanout_equals_outputs(self):
        assert SafcBuffer(4, 4).max_reads_per_cycle == 4

    def test_storage_behaves_like_samq(self):
        buffer = SafcBuffer(capacity=4, num_outputs=4)
        buffer.push(make_packet(packet_id=1, destination=0), 0)
        assert not buffer.can_accept(0)
        assert buffer.can_accept(1)

    def test_kind_label(self):
        assert SafcBuffer(4, 4).kind == "SAFC"


class TestDamqSpecifics:
    def test_dynamic_sharing_uses_whole_pool(self):
        buffer = DamqBuffer(capacity=4, num_outputs=4)
        fill_buffer(buffer, destination=2, count=4)
        assert buffer.occupancy == 4
        assert not buffer.can_accept(0)  # pool exhausted, all queues reject

    def test_no_head_of_line_blocking(self):
        buffer = DamqBuffer(capacity=4, num_outputs=4)
        buffer.push(make_packet(packet_id=1, destination=0), 0)
        buffer.push(make_packet(packet_id=2, destination=3), 3)
        assert buffer.peek(3).packet_id == 2
        assert sorted(buffer.available_outputs()) == [0, 3]

    def test_queue_length_counts_packets_not_slots(self):
        buffer = DamqBuffer(capacity=6, num_outputs=2)
        buffer.push(make_packet(packet_id=1, destination=0, size=3), 0)
        buffer.push(make_packet(packet_id=2, destination=0, size=1), 0)
        assert buffer.queue_length(0) == 2
        assert buffer.occupancy == 4

    def test_multi_slot_packet_round_trip(self):
        buffer = DamqBuffer(capacity=4, num_outputs=2)
        big = make_packet(packet_id=1, destination=1, size=4)
        buffer.push(big, 1)
        assert not buffer.can_accept(0)
        assert buffer.pop(1) is big
        assert buffer.free_slots == 4
        buffer.check_invariants()

    def test_multi_slot_rejected_when_fragmented_free_space_insufficient(self):
        buffer = DamqBuffer(capacity=4, num_outputs=2)
        buffer.push(make_packet(packet_id=1, destination=0, size=2), 0)
        assert not buffer.can_accept(1, size=3)
        with pytest.raises(BufferFullError):
            buffer.push(make_packet(packet_id=2, destination=1, size=3), 1)

    def test_interleaved_queues_recycle_slots(self):
        buffer = DamqBuffer(capacity=3, num_outputs=3)
        a = make_packet(packet_id=1, destination=0)
        b = make_packet(packet_id=2, destination=1)
        c = make_packet(packet_id=3, destination=2)
        buffer.push(a, 0)
        buffer.push(b, 1)
        buffer.push(c, 2)
        assert buffer.pop(1) is b
        d = make_packet(packet_id=4, destination=1)
        buffer.push(d, 1)  # reuses the slot b freed
        assert buffer.occupancy == 3
        buffer.check_invariants()

    def test_invariants_after_stress(self):
        buffer = DamqBuffer(capacity=5, num_outputs=3)
        for round_number in range(20):
            destination = round_number % 3
            if buffer.can_accept(destination):
                buffer.push(
                    make_packet(packet_id=round_number, destination=destination),
                    destination,
                )
            elif buffer.peek(destination) is not None:
                buffer.pop(destination)
            buffer.check_invariants()
