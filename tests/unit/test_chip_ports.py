"""Unit tests for the chip's input/output port FSMs and the host adapter."""

import pytest

from repro.chip.comcobb import ComCoBBChip
from repro.chip.host import HostAdapter
from repro.chip.input_port import InputPort
from repro.chip.output_port import OutputPort
from repro.chip.router import CircuitRouter
from repro.chip.slots import DamqBufferHw
from repro.chip.wires import START, Link
from repro.errors import ProtocolError


def make_input_port(stop_threshold=7):
    buffer = DamqBufferHw(12, 5, port_id=0)
    router = CircuitRouter(0, 5)
    router.program(header=1, output_port=2, new_header=9)
    port = InputPort(0, "chip", buffer, router, stop_threshold)
    link = Link("in")
    port.attach(link)
    return port, link, buffer


def feed(port, link, symbols):
    """Drive a symbol sequence, one per cycle, sampling each cycle."""
    cycle = 0
    for symbol in symbols:
        link.data.drive(symbol)
        port.sample(cycle)
        link.end_cycle()
        cycle += 1
    # Two idle cycles flush the synchronizer.
    for _ in range(2):
        port.sample(cycle)
        cycle += 1


class TestInputPortFsm:
    def test_full_packet_reception(self):
        port, link, buffer = make_input_port()
        feed(port, link, [START, 1, 3, 0xAA, 0xBB, 0xCC])
        assert port.packets_received == 1
        packet = buffer.head_packet(2)
        assert packet is not None
        assert packet.new_header == 9
        assert packet.length == 3
        assert packet.fully_written

    def test_back_to_back_packets(self):
        port, link, buffer = make_input_port()
        feed(port, link, [START, 1, 1, 0x11, START, 1, 2, 0x22, 0x33])
        assert port.packets_received == 2
        assert buffer.queue_length(2) == 2

    def test_start_bit_mid_packet_rejected(self):
        port, link, buffer = make_input_port()
        with pytest.raises(ProtocolError):
            feed(port, link, [START, 1, 4, 0x11, START])

    def test_stray_byte_while_idle_rejected(self):
        port, link, _buffer = make_input_port()
        with pytest.raises(ProtocolError):
            feed(port, link, [0x55])

    def test_flow_control_threshold(self):
        port, link, buffer = make_input_port(stop_threshold=11)
        port.update_flow_control()
        assert link.stop is False  # 12 free >= 11
        feed(port, link, [START, 1, 10] + list(range(10)))  # uses 2 slots
        port.update_flow_control()
        assert link.stop is True  # 10 free < 11

    def test_idle_cycles_are_harmless(self):
        port, link, buffer = make_input_port()
        for cycle in range(5):
            port.sample(cycle)
        feed(port, link, [START, 1, 1, 0x77])
        assert port.packets_received == 1


class TestOutputPortProtocol:
    def test_grant_while_busy_rejected(self):
        buffer = DamqBufferHw(12, 5, port_id=0)
        packet = buffer.begin_packet(2, new_header=5)
        buffer.set_length(packet, 1)
        buffer.write_byte(packet, 0x42)
        port = OutputPort(2, "chip")
        port.attach(Link("out"))
        port.grant(buffer, packet, cycle=0)
        with pytest.raises(ProtocolError):
            port.grant(buffer, packet, cycle=1)

    def test_grant_on_buffer_with_active_reader_rejected(self):
        buffer = DamqBufferHw(12, 5, port_id=0)
        first = buffer.begin_packet(2, new_header=5)
        buffer.set_length(first, 1)
        buffer.write_byte(first, 1)
        second = buffer.begin_packet(3, new_header=6)
        buffer.set_length(second, 1)
        buffer.write_byte(second, 2)
        port_a = OutputPort(2, "chip")
        port_b = OutputPort(3, "chip")
        port_a.attach(Link("a"))
        port_b.attach(Link("b"))
        port_a.grant(buffer, first, cycle=0)
        with pytest.raises(ProtocolError):
            port_b.grant(buffer, second, cycle=0)

    def test_transmit_sequence_on_wire(self):
        buffer = DamqBufferHw(12, 5, port_id=0)
        packet = buffer.begin_packet(2, new_header=5)
        buffer.set_length(packet, 2)
        buffer.write_byte(packet, 0xDE)
        buffer.write_byte(packet, 0xAD)
        port = OutputPort(2, "chip")
        link = Link("out")
        port.attach(link)
        port.grant(buffer, packet, cycle=0)
        observed = []
        for cycle in range(1, 7):
            port.drive(cycle)
            observed.append(link.data.sample())
            link.end_cycle()
            port.latch(cycle)
        assert observed[0] is START
        assert observed[1:5] == [5, 2, 0xDE, 0xAD]
        assert not port.busy
        assert buffer.total_packets() == 0


class TestHostAdapter:
    def test_injection_respects_stop(self):
        chip = ComCoBBChip("c")
        host = HostAdapter(chip)
        host.send_message(0, b"xy")
        host.inject_link.stop = True
        host.drive(0)
        assert host.inject_link.data.sample() is None  # held at boundary
        host.inject_link.stop = False
        host.drive(1)
        assert host.inject_link.data.sample() is START

    def test_mid_packet_symbols_ignore_stop(self):
        chip = ComCoBBChip("c")
        host = HostAdapter(chip)
        host.send_message(0, b"z")
        host.drive(0)  # START out
        host.end_cycle()
        host.inject_link.stop = True
        host.drive(1)  # header must still flow
        assert host.inject_link.data.sample() is not None

    def test_receive_parses_wire_format(self):
        chip = ComCoBBChip("c")
        host = HostAdapter(chip)
        # Simulate the PI output port driving a complete 1-packet message:
        # framed payload = length prefix (2 bytes) + b"ab".
        symbols = [START, 7, 4, 2, 0, ord("a"), ord("b")]
        for cycle, symbol in enumerate(symbols):
            host.deliver_link.data.drive(symbol)
            host.sample(cycle)
            host.deliver_link.end_cycle()
        assert len(host.received_messages) == 1
        message = host.received_messages[0]
        assert message.payload == b"ab"
        assert message.delivery_tag == 7

    def test_interleaved_tags_reassemble_independently(self):
        chip = ComCoBBChip("c")
        host = HostAdapter(chip)
        # Two single-packet messages with different tags, back to back.
        for tag, byte in ((1, ord("p")), (2, ord("q"))):
            symbols = [START, tag, 3, 1, 0, byte]
            for cycle, symbol in enumerate(symbols):
                host.deliver_link.data.drive(symbol)
                host.sample(cycle)
                host.deliver_link.end_cycle()
        payloads = {m.delivery_tag: m.payload for m in host.received_messages}
        assert payloads == {1: b"p", 2: b"q"}
