"""Model checking the architecture zoo, including the starvation spec.

The committed fixture ``tests/fixtures/cex-starvation-damq.json`` is the
machine-checked witness of the claim the reserved-slot DAMQ exists to
fix: four same-output arrivals fill plain DAMQ's shared pool and the
other output is refused while empty.  The tests here re-verify the
violation from scratch *and* replay the committed trace.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.__main__ import main
from repro.analysis.counterexample import Counterexample
from repro.analysis.model import (
    verify_buffer,
    verify_starvation,
    verify_switch,
)

FIXTURE = (
    Path(__file__).parent.parent / "fixtures" / "cex-starvation-damq.json"
)

ARCH_KINDS = ("DAMQ-RSV", "CQ")


class TestArchConformance:
    @pytest.mark.parametrize("kind", ARCH_KINDS)
    def test_buffer_verifies_clean(self, kind):
        result = verify_buffer(kind, 4, 2)
        assert result.violation is None
        assert result.stats.states > 0

    @pytest.mark.parametrize("kind", ARCH_KINDS)
    def test_switch_verifies_clean(self, kind):
        result = verify_switch(kind, 2, 4, protocol="discarding")
        assert result.violation is None


class TestStarvation:
    @pytest.mark.parametrize("kind", ("DAMQ-RSV", "SAMQ", "SAFC", "CQ"))
    def test_partitioned_and_reserved_kinds_never_starve(self, kind):
        result = verify_starvation(kind, 4, 2)
        assert result.violation is None

    def test_reserved_damq_passes_at_larger_parameters(self):
        result = verify_starvation("DAMQ-RSV", 8, 4)
        assert result.violation is None

    @pytest.mark.parametrize("kind", ("DAMQ", "FIFO"))
    def test_shared_kinds_provably_starve(self, kind):
        result = verify_starvation(kind, 4, 2)
        assert result.violation is not None
        assert result.violation.prop == "starvation"
        assert result.counterexample is not None

    def test_damq_counterexample_is_the_minimal_hot_burst(self):
        result = verify_starvation("DAMQ", 4, 2)
        # Four same-output arrivals monopolize the whole shared pool.
        assert result.counterexample.actions == [("arrive", 0)] * 4


class TestCommittedFixture:
    def test_fixture_replays_to_starvation(self):
        counterexample = Counterexample.from_dict(
            json.loads(FIXTURE.read_text())
        )
        assert counterexample.config["kind"] == "DAMQ"
        violation = counterexample.replay()
        assert violation is not None
        assert violation.prop == "starvation"
        assert violation.message == counterexample.violation.message

    def test_fixture_matches_a_fresh_search(self):
        counterexample = Counterexample.from_dict(
            json.loads(FIXTURE.read_text())
        )
        fresh = verify_starvation(
            "DAMQ",
            counterexample.config["capacity"],
            counterexample.config["num_outputs"],
        ).counterexample
        assert fresh.actions == counterexample.actions
        assert fresh.violation.message == counterexample.violation.message

    def test_fixture_exports_waveforms(self, tmp_path):
        counterexample = Counterexample.from_dict(
            json.loads(FIXTURE.read_text())
        )
        written = counterexample.export(tmp_path, "starvation")
        assert written["vcd"].exists()
        assert written["chrome"].exists()


class TestCommandLine:
    def test_arch_sweep_with_starvation_flag(self, capsys):
        code = main(
            [
                "model",
                "--buffer",
                "arch",
                "--ports",
                "2",
                "--slots",
                "4",
                "--starvation",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "starvation[DAMQ-RSV]: ok" in output
        assert "starvation[CQ]: ok" in output

    def test_damq_starvation_violation_exits_nonzero(self, capsys):
        code = main(
            [
                "model",
                "--buffer",
                "DAMQ",
                "--ports",
                "2",
                "--slots",
                "4",
                "--system",
                "buffer",
                "--starvation",
                "--skip-refinements",
            ]
        )
        output = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION" in output and "starvation" in output
