"""Unit tests for the packet and message models."""

import pytest

from repro.core.packet import Message, Packet, PacketFactory
from repro.errors import ConfigurationError


class TestPacket:
    def test_route_and_hop_accounting(self):
        packet = Packet(packet_id=1, source=0, destination=9, route=(2, 1, 1))
        assert packet.hops_remaining == 3
        assert packet.output_port_at_current_hop() == 2
        packet.advance_hop()
        assert packet.output_port_at_current_hop() == 1
        assert packet.hops_remaining == 2

    def test_output_port_past_route_raises(self):
        packet = Packet(packet_id=1, source=0, destination=0, route=(3,))
        packet.advance_hop()
        with pytest.raises(ConfigurationError):
            packet.output_port_at_current_hop()

    def test_latency_requires_delivery(self):
        packet = Packet(packet_id=1, source=0, destination=0, created_at=10)
        with pytest.raises(ConfigurationError):
            packet.latency()
        packet.delivered_at = 55
        assert packet.latency() == 45

    def test_network_latency_from_injection(self):
        packet = Packet(packet_id=1, source=0, destination=0, created_at=10)
        packet.injected_at = 24
        packet.delivered_at = 60
        assert packet.network_latency() == 36
        assert packet.latency() == 50

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            Packet(packet_id=1, source=0, destination=0, size=0)


class TestMessage:
    def test_single_packet_message(self):
        message = Message(message_id=1, circuit=3, payload=b"x" * 20)
        assert message.packet_count == 1
        assert message.packet_payloads() == [b"x" * 20]

    def test_multi_packet_split_only_last_short(self):
        message = Message(message_id=1, circuit=3, payload=b"y" * 70)
        chunks = message.packet_payloads()
        assert [len(chunk) for chunk in chunks] == [32, 32, 6]
        assert message.packet_count == 3

    def test_exact_multiple_of_packet_size(self):
        message = Message(message_id=1, circuit=0, payload=b"z" * 64)
        assert [len(c) for c in message.packet_payloads()] == [32, 32]

    def test_empty_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            Message(message_id=1, circuit=0, payload=b"")


class TestPacketFactory:
    def test_ids_are_sequential_and_unique(self):
        factory = PacketFactory()
        packets = [factory.create(0, 1) for _ in range(5)]
        assert [p.packet_id for p in packets] == [0, 1, 2, 3, 4]

    def test_two_factories_are_independent(self):
        a, b = PacketFactory(), PacketFactory()
        assert a.create(0, 0).packet_id == 0
        assert b.create(0, 0).packet_id == 0

    def test_create_passes_fields_through(self):
        factory = PacketFactory()
        packet = factory.create(3, 17, created_at=99, route=(1, 2), size=2)
        assert packet.source == 3
        assert packet.destination == 17
        assert packet.created_at == 99
        assert packet.route == (1, 2)
        assert packet.size == 2
