"""Supervisor state-machine tests: death, wedge, deadline, retry budget.

The worker functions are module-level (they cross a process boundary).
Deterministic failure scripts — "die on the first attempt, succeed on
the second" via a marker file — rather than probabilities, so every test
exercises exactly the transition it names.
"""

import os
import signal
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, WorkerFailedError
from repro.service.chaos import ChaosPolicy
from repro.service.supervisor import SupervisedPool, SupervisorConfig
from repro.utils.backoff import BackoffPolicy

#: Fast supervision for tests: tight ticks, tiny backoff, 4-attempt budget.
FAST_RETRY = BackoffPolicy(
    base=0.02, factor=2.0, cap_multiple=4.0, max_attempts=4, jitter=0.5
)


def fast_config(workers: int = 1, **overrides) -> SupervisorConfig:
    defaults = dict(
        workers=workers,
        heartbeat_interval=0.02,
        heartbeat_timeout=0.4,
        task_deadline=5.0,
        retry=FAST_RETRY,
        tick=0.01,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def square(x):
    return x * x


def raise_value_error(x):
    raise ValueError(f"deterministic failure {x}")


def die_always(_item):  # pragma: no cover - runs in the worker
    os._exit(1)


def die_once(item):  # pragma: no cover - runs in the worker
    """First attempt hard-exits; later attempts see the marker and work."""
    marker, value = item
    path = Path(marker)
    if not path.exists():
        path.write_text("died")
        os._exit(1)
    return value * 2


def wedge_once(item):  # pragma: no cover - runs in the worker
    """First attempt SIGSTOPs its own process (heartbeat goes stale)."""
    marker, value = item
    path = Path(marker)
    if not path.exists():
        path.write_text("wedged")
        os.kill(os.getpid(), signal.SIGSTOP)
    return value * 3


def stall_once(item):  # pragma: no cover - runs in the worker
    """First attempt sleeps far past the task deadline."""
    marker, value = item
    path = Path(marker)
    if not path.exists():
        path.write_text("stalled")
        time.sleep(30.0)
    return value * 5


class TestHappyPath:
    def test_map_preserves_input_order(self):
        with SupervisedPool(fast_config(workers=2)) as pool:
            assert pool.map(square, list(range(10))) == [
                n * n for n in range(10)
            ]

    def test_map_before_start_rejected(self):
        pool = SupervisedPool(fast_config())
        with pytest.raises(ConfigurationError):
            pool.map(square, [1])

    def test_in_task_exception_propagates_without_retry(self):
        with SupervisedPool(fast_config()) as pool:
            with pytest.raises(ValueError, match="deterministic failure"):
                pool.map(raise_value_error, [1])
            stats = pool.stats()
            assert stats["tasks_failed"] == 1
            assert stats["tasks_retried"] == 0

    def test_pool_survives_failed_map(self):
        with SupervisedPool(fast_config()) as pool:
            with pytest.raises(ValueError):
                pool.map(raise_value_error, [1])
            assert pool.map(square, [4]) == [16]


class TestWorkerDeath:
    def test_dead_worker_retried_to_success(self, tmp_path):
        with SupervisedPool(fast_config()) as pool:
            result = pool.map(die_once, [(str(tmp_path / "m"), 21)])
            assert result == [42]
            stats = pool.stats()
            assert stats["tasks_retried"] >= 1
            assert stats["worker_restarts"] >= 1
            assert stats["recoveries"] == 1
            assert stats["mean_recovery_seconds"] > 0.0

    def test_budget_exhaustion_is_structured(self):
        with SupervisedPool(fast_config()) as pool:
            with pytest.raises(WorkerFailedError) as info:
                pool.map(die_always, [7])
            error = info.value
            assert error.attempts == FAST_RETRY.max_attempts
            assert error.task_id is not None
            stats = pool.stats()
            assert stats["tasks_failed"] == 1

    def test_exhaustion_error_names_the_checkpoint(self):
        # Checkpointed simulation tasks are 5-tuples ending in the
        # checkpoint path; the terminal error must surface it so a
        # manual retry can resume.
        item = ("config", 100, 300, 50, "/tmp/resume-here.ckpt")
        with SupervisedPool(fast_config()) as pool:
            with pytest.raises(WorkerFailedError) as info:
                pool.map(die_always, [item])
            assert info.value.checkpoint == "/tmp/resume-here.ckpt"

    def test_wedged_worker_detected_by_heartbeat(self, tmp_path):
        with SupervisedPool(fast_config()) as pool:
            result = pool.map(wedge_once, [(str(tmp_path / "m"), 9)])
            assert result == [27]
            restarts = pool.metrics.counter(
                "service_worker_restarts_total", reason="heartbeat"
            )
            assert restarts.value >= 1

    def test_deadline_expiry_kills_and_retries(self, tmp_path):
        config = fast_config(task_deadline=0.3)
        with SupervisedPool(config) as pool:
            result = pool.map(stall_once, [(str(tmp_path / "m"), 8)])
            assert result == [40]
            expiries = pool.metrics.value(
                "service_deadline_expirations_total"
            )
            assert expiries >= 1

    def test_admin_kill_worker_recovers(self, tmp_path):
        # Killing a busy worker from outside looks exactly like a crash:
        # detected, retried, recovered.
        marker = tmp_path / "m"
        with SupervisedPool(fast_config()) as pool:
            import threading

            def _assassin():
                for _ in range(100):
                    if marker.exists():
                        pool.kill_worker()
                        return
                    time.sleep(0.01)

            killer = threading.Thread(target=_assassin, daemon=True)
            killer.start()
            result = pool.map(stall_once, [(str(marker), 4)])
            killer.join(timeout=5.0)
            assert result == [20]


class TestChaosIntegration:
    def test_chaos_kills_bounded_so_work_completes(self):
        chaos = ChaosPolicy(
            kill_probability=1.0,
            kill_after_s=(0.0, 0.01),
            max_injections_per_task=2,
        )
        with SupervisedPool(fast_config(workers=2), chaos=chaos) as pool:
            assert pool.map(square, [2, 3, 4]) == [4, 9, 16]
            injections = pool.metrics.counter(
                "service_chaos_injections_total", kind="kill_after"
            )
            assert injections.value >= 1
