"""Unit tests for the zoo's schedulers and the scheduler registry."""

import pytest

from repro.arch.schedulers import CrosspointScheduler, IterativeScheduler
from repro.core.packet import Packet
from repro.core.registry import make_buffer
from repro.errors import ConfigurationError
from repro.switch.arbiter import CrossbarArbiter, make_arbiter
from repro.switch.scheduler import (
    Scheduler,
    register_scheduler,
    scheduler_kinds,
)


def _never_blocked(input_port, output_port, packet):
    return False


def _loaded_buffers(kind, lengths):
    """Buffers with the given per-(input, output) queue lengths."""
    num_outputs = len(lengths[0])
    buffers = []
    next_id = 0
    for row in lengths:
        buffer = make_buffer(kind, 8, num_outputs)
        for output, count in enumerate(row):
            for _ in range(count):
                buffer.push(
                    Packet(
                        packet_id=next_id, source=0, destination=output
                    ),
                    output,
                )
                next_id += 1
        buffers.append(buffer)
    return buffers


class TestRegistry:
    def test_make_arbiter_resolves_extensions(self):
        assert isinstance(make_arbiter("smart", 4, 4), CrossbarArbiter)
        assert isinstance(make_arbiter("lqf", 4, 4), CrosspointScheduler)
        assert isinstance(make_arbiter("RR", 4, 4), CrosspointScheduler)
        islip = make_arbiter("islip4", 4, 4)
        assert isinstance(islip, IterativeScheduler)
        assert islip.iterations == 4

    def test_unknown_kind_lists_all_schedulers(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_arbiter("bogus", 4, 4)
        message = str(excinfo.value)
        for kind in ("smart", "dumb", "lqf", "rr", "islip"):
            assert kind in message

    def test_builtin_names_are_reserved(self):
        with pytest.raises(ConfigurationError, match="reserved"):
            register_scheduler("smart", lambda ni, no: CrossbarArbiter(ni, no))

    def test_scheduler_kinds_enumeration(self):
        kinds = scheduler_kinds()
        assert kinds[:2] == ("smart", "dumb")
        assert {"lqf", "rr", "islip", "islip1", "islip2", "islip4"} <= set(
            kinds
        )

    def test_every_scheduler_is_a_scheduler(self):
        for kind in scheduler_kinds():
            assert isinstance(make_arbiter(kind, 4, 4), Scheduler)


class TestCrosspointScheduler:
    def test_lqf_drains_the_longest_queue(self):
        scheduler = CrosspointScheduler(2, 2, policy="lqf")
        buffers = _loaded_buffers("CQ", [[1, 0], [2, 0]])
        grants = scheduler.arbitrate(buffers, _never_blocked)
        assert [(g.input_port, g.output_port) for g in grants] == [(1, 0)]
        # Pointer advanced past input 1: on a tie, input 0 now wins.
        buffers = _loaded_buffers("CQ", [[1, 0], [1, 0]])
        grants = scheduler.arbitrate(buffers, _never_blocked)
        assert [(g.input_port, g.output_port) for g in grants] == [(0, 0)]

    def test_rr_rotates_across_inputs(self):
        scheduler = CrosspointScheduler(3, 1, policy="rr")
        buffers = _loaded_buffers("CQ", [[2], [2], [2]])
        order = []
        for _ in range(3):
            (grant,) = scheduler.arbitrate(buffers, _never_blocked)
            order.append(grant.input_port)
            buffers[grant.input_port].pop(0)
        assert order == [0, 1, 2]

    def test_outputs_never_contend(self):
        # Every output picks from its own crosspoint column: one grant
        # per output per cycle even when one input feeds them all.
        scheduler = CrosspointScheduler(2, 4, policy="lqf")
        buffers = _loaded_buffers("CQ", [[1, 1, 1, 1], [0, 0, 0, 0]])
        grants = scheduler.arbitrate(buffers, _never_blocked)
        assert sorted(g.output_port for g in grants) == [0, 1, 2, 3]
        assert all(g.input_port == 0 for g in grants)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="policy"):
            CrosspointScheduler(2, 2, policy="fifo")

    def test_snapshot_restore_round_trip(self):
        scheduler = CrosspointScheduler(4, 4)
        buffers = _loaded_buffers("CQ", [[1, 1, 0, 0]] * 4)
        scheduler.arbitrate(buffers, _never_blocked)
        state = scheduler.snapshot_state()
        clone = CrosspointScheduler(4, 4)
        clone.restore_state(state)
        assert clone.snapshot_state() == state


class TestIterativeScheduler:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="iteration"):
            IterativeScheduler(2, 2, iterations=0)
        assert IterativeScheduler(2, 2, iterations=3).kind == "islip3"

    def test_single_read_port_limits_grants(self):
        scheduler = IterativeScheduler(2, 2, iterations=4)
        # DAMQ has one read port: an input serves one output per cycle
        # no matter how many iterations run.
        buffers = _loaded_buffers("DAMQ", [[2, 2], [0, 0]])
        grants = scheduler.arbitrate(buffers, _never_blocked)
        assert len(grants) == 1

    def test_extra_iterations_fill_accept_conflicts(self):
        # Both outputs want input 0 first; with one iteration the loser
        # output stays unmatched, a second iteration pairs it with
        # input 1.  CQ's per-output read ports allow multiple grants.
        lengths = [[1, 1], [1, 1]]
        one = IterativeScheduler(2, 2, iterations=1)
        grants_one = one.arbitrate(
            _loaded_buffers("CQ", lengths), _never_blocked
        )
        two = IterativeScheduler(2, 2, iterations=2)
        grants_two = two.arbitrate(
            _loaded_buffers("CQ", lengths), _never_blocked
        )
        assert len(grants_one) == 1
        assert len(grants_two) == 2
        assert len({g.output_port for g in grants_two}) == 2

    def test_deterministic_given_state(self):
        lengths = [[1, 0, 1, 0]] * 4
        first = IterativeScheduler(4, 4)
        second = IterativeScheduler(4, 4)
        for _ in range(5):
            a = first.arbitrate(_loaded_buffers("CQ", lengths), _never_blocked)
            b = second.arbitrate(
                _loaded_buffers("CQ", lengths), _never_blocked
            )
            assert [(g.input_port, g.output_port) for g in a] == [
                (g.input_port, g.output_port) for g in b
            ]
        assert first.snapshot_state() == second.snapshot_state()

    def test_snapshot_restore_round_trip(self):
        scheduler = IterativeScheduler(4, 4, iterations=2)
        buffers = _loaded_buffers("DAMQ", [[1, 1, 1, 1]] * 4)
        scheduler.arbitrate(buffers, _never_blocked)
        state = scheduler.snapshot_state()
        clone = IterativeScheduler(4, 4, iterations=2)
        clone.restore_state(state)
        assert clone.snapshot_state() == state
        assert state["grant_pointers"] != [0, 0, 0, 0]
