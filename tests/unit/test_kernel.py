"""Unit tests for the :mod:`repro.kernel` backend abstraction.

Backend *selection* is pure policy — no numpy required — so most of
this file runs in the minimal tier-1 environment.  The handful of tests
that construct the vectorized kernel itself skip when numpy is absent.
"""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.base import (
    BACKEND_ENV,
    BACKENDS,
    DEFAULT_BACKEND,
    make_kernel,
    normalize_backend,
    numpy_available,
    numpy_unsupported_reason,
    requested_backend,
    resolve_backend,
)
from repro.network import NetworkConfig
from repro.switch.flow_control import Protocol

QUICK = dict(num_ports=16, radix=4, seed=1988)


class TestNormalize:
    def test_known_backends(self):
        assert BACKENDS == ("reference", "numpy")
        assert normalize_backend(" NumPy ") == "numpy"
        assert normalize_backend("reference") == "reference"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_backend("cuda")


class TestRequestedBackend:
    def test_unset_and_zero_mean_none(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert requested_backend() is None
        monkeypatch.setenv(BACKEND_ENV, "0")
        assert requested_backend() is None

    def test_env_value_is_normalized(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "NUMPY")
        assert requested_backend() == "numpy"

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "gpu")
        with pytest.raises(ConfigurationError):
            requested_backend()


class TestResolveBackend:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(NetworkConfig(**QUICK)) == DEFAULT_BACKEND

    def test_env_preference_applies_softly(self, monkeypatch):
        if not numpy_available():
            pytest.skip("numpy not installed")
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        config = NetworkConfig(**QUICK)
        assert resolve_backend(config) == "numpy"
        # Instrumentation the numpy kernel cannot host: the soft
        # preference yields to the reference kernel without complaint.
        assert resolve_backend(config, sanitize=True) == "reference"
        assert resolve_backend(config, trace=True) == "reference"
        assert resolve_backend(config, checkpoint=True) == "reference"

    @pytest.mark.parametrize(
        "flags",
        [dict(sanitize=True), dict(trace=True), dict(checkpoint=True)],
    )
    def test_forced_numpy_with_instrumentation_raises(self, flags):
        with pytest.raises(ConfigurationError):
            resolve_backend(NetworkConfig(**QUICK), "numpy", **flags)

    def test_forced_numpy_on_unsupported_config_raises(self):
        if not numpy_available():
            pytest.skip("numpy not installed")
        config = NetworkConfig(packet_size=4, **QUICK)
        with pytest.raises(ConfigurationError):
            resolve_backend(config, "numpy")

    def test_soft_preference_on_unsupported_config_falls_back(
        self, monkeypatch
    ):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        config = NetworkConfig(serialize_links=True, **QUICK)
        assert resolve_backend(config) == "reference"

    def test_forced_reference_always_works(self):
        assert (
            resolve_backend(NetworkConfig(**QUICK), "reference", sanitize=True)
            == "reference"
        )


class TestUnsupportedReason:
    def test_paper_grid_is_supported(self):
        if not numpy_available():
            pytest.skip("numpy not installed")
        for kind in ("FIFO", "SAMQ", "SAFC", "DAMQ"):
            for protocol in (Protocol.BLOCKING, Protocol.DISCARDING):
                config = NetworkConfig(
                    buffer_kind=kind, protocol=protocol, **QUICK
                )
                assert numpy_unsupported_reason(config) is None

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            (dict(packet_size=4), "packet sizes"),
            (dict(packet_size_max=8), "packet sizes"),
            (dict(serialize_links=True), "serialization"),
            (dict(packet_loss_rate=0.01), "packet loss"),
            (dict(retired_slots_per_buffer=1), "retired"),
        ],
    )
    def test_extension_features_named(self, overrides, fragment):
        if not numpy_available():
            pytest.skip("numpy not installed")
        reason = numpy_unsupported_reason(NetworkConfig(**overrides, **QUICK))
        assert reason is not None and fragment in reason


class TestArchZooGating:
    """The ``repro.arch`` architectures stay on the reference kernel."""

    ARCH = dict(slots_per_buffer=8, **QUICK)

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            (dict(buffer_kind="CQ", arbiter_kind="lqf"), "'CQ'"),
            (dict(buffer_kind="DAMQ-RSV"), "'DAMQ-RSV'"),
            (dict(buffer_kind="DAMQ", arbiter_kind="islip2"), "'islip2'"),
        ],
    )
    def test_unsupported_reason_names_the_kind(self, overrides, fragment):
        if not numpy_available():
            pytest.skip("numpy not installed")
        reason = numpy_unsupported_reason(
            NetworkConfig(**overrides, **self.ARCH)
        )
        assert reason is not None and fragment in reason

    def test_forced_numpy_rejects_arch_buffers(self):
        pytest.importorskip("numpy")
        config = NetworkConfig(buffer_kind="CQ", **self.ARCH)
        with pytest.raises(ConfigurationError, match="CQ"):
            make_kernel(config, "numpy")
        with pytest.raises(ConfigurationError, match="CQ"):
            resolve_backend(config, "numpy")

    def test_soft_preference_falls_back_to_reference(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        arch = NetworkConfig(buffer_kind="DAMQ-RSV", **self.ARCH)
        assert resolve_backend(arch) == "reference"
        paper = NetworkConfig(buffer_kind="DAMQ", **self.ARCH)
        assert resolve_backend(paper) == "numpy"

    def test_reference_kernel_runs_arch_buffers(self):
        config = NetworkConfig(
            buffer_kind="CQ", arbiter_kind="lqf", **self.ARCH
        )
        result = make_kernel(config, "reference").run(20, 60)
        assert result.buffer_kind == "CQ"


class TestMakeKernel:
    def test_reference_kernel_runs_and_matches_simulator(self):
        from repro.network.simulator import simulate

        config = NetworkConfig(**QUICK)
        result = make_kernel(config, "reference").run(20, 60)
        direct = simulate(config, warmup_cycles=20, measure_cycles=60)
        assert result.to_state() == direct.to_state()

    def test_numpy_kernel_construction_guarded(self):
        pytest.importorskip("numpy")
        kernel = make_kernel(NetworkConfig(**QUICK), "numpy")
        assert type(kernel).__name__ == "NumpyKernel"

    def test_unsupported_config_raises_for_numpy(self):
        pytest.importorskip("numpy")
        with pytest.raises(ConfigurationError):
            make_kernel(NetworkConfig(packet_size=2, **QUICK), "numpy")

    def test_state_digest_is_deterministic(self):
        config = NetworkConfig(**QUICK)
        first = make_kernel(config, "reference")
        second = make_kernel(config, "reference")
        for _ in range(30):
            first.step()
            second.step()
        assert first.state_digest() == second.state_digest()
