"""Unit tests for the runtime hardware sanitizer (repro.analysis.sanitizer).

Each hazard class is provoked deliberately — by corrupting a live
:class:`SlotListManager`'s register file or by exceeding a buffer's port
budget inside one cycle — and the test asserts the sanitizer produces a
precise report: violation kind, buffer label, slot, cycle, and an
operation trace.  A final section checks adoption is state-preserving and
that clean runs stay clean.
"""

import pytest

from repro.analysis.sanitizer import (
    HardwareSanitizer,
    SanitizedSlotListManager,
    sanitize_enabled,
)
from repro.core.damq import DamqBuffer
from repro.core.fifo import FifoBuffer
from repro.core.linkedlist import NO_SLOT, SlotListManager
from repro.core.packet import Packet
from repro.core.safc import SafcBuffer
from repro.errors import ConfigurationError, SanitizerError


def make_manager(num_slots=8, num_lists=4):
    sanitizer = HardwareSanitizer()
    manager = SlotListManager(num_slots=num_slots, num_lists=num_lists)
    adopted = sanitizer.adopt_slot_manager(manager, "bufA")
    return sanitizer, adopted


def packet(packet_id=0, destination=0, size=1):
    return Packet(
        packet_id=packet_id, source=0, destination=destination, size=size
    )


class TestAdoption:
    def test_adoption_preserves_live_state(self):
        manager = SlotListManager(num_slots=8, num_lists=4)
        first = manager.allocate(0)
        second = manager.allocate(1)
        sanitizer = HardwareSanitizer()
        adopted = sanitizer.adopt_slot_manager(manager, "bufA")
        assert adopted is manager
        assert isinstance(manager, SanitizedSlotListManager)
        assert manager.slots(0) == [first]
        assert manager.slots(1) == [second]
        assert manager.free_count == 6
        sanitizer.scan()
        assert sanitizer.clean

    def test_normal_traffic_is_clean(self):
        sanitizer, manager = make_manager()
        for cycle in range(50):
            sanitizer.begin_cycle(cycle)
            slot = manager.allocate(cycle % 4)
            released = manager.release_head(cycle % 4)
            assert released == slot
        sanitizer.scan()
        assert sanitizer.clean
        assert sanitizer.report()["violations"] == []

    def test_retire_and_restore_are_clean(self):
        sanitizer, manager = make_manager()
        retired = manager.retire_slot()
        manager.restore_slot(retired)
        sanitizer.scan()
        assert sanitizer.clean

    def test_double_adoption_is_idempotent(self):
        sanitizer, manager = make_manager()
        again = sanitizer.adopt_slot_manager(manager, "renamed")
        assert again is manager
        assert len(sanitizer._managers) == 1

    def test_foreign_subclass_rejected(self):
        class Custom(SlotListManager):
            pass

        sanitizer = HardwareSanitizer()
        with pytest.raises(ConfigurationError):
            sanitizer.adopt_slot_manager(Custom(4, 2), "bad")


class TestFreeListCorruption:
    def test_double_free_is_reported(self):
        sanitizer, manager = make_manager()
        sanitizer.begin_cycle(7)
        slot = manager.allocate(0)
        manager.release_head(0)
        # The controller frees the same slot twice: the second append
        # makes the free list alias itself.
        manager._append_free(slot)
        assert not sanitizer.clean
        violation = sanitizer.violations[0]
        assert violation.kind == "double-free"
        assert violation.buffer == "bufA"
        assert violation.slot == slot
        assert violation.cycle == 7
        assert any("free" in entry for entry in violation.trace)

    def test_use_after_free_is_reported(self):
        sanitizer, manager = make_manager()
        sanitizer.begin_cycle(3)
        held = manager.allocate(0)
        # Corrupt the free-list head register to point at the in-use slot:
        # the next allocation hands out storage that still belongs to the
        # queued packet.
        manager._next[held] = manager._free_head
        manager._free_head = held
        manager._free_count += 1
        got = manager.allocate(1)
        assert got == held
        kinds = [violation.kind for violation in sanitizer.violations]
        assert "use-after-free" in kinds
        violation = sanitizer.violations[kinds.index("use-after-free")]
        assert violation.slot == held
        assert violation.buffer == "bufA"
        assert any("allocate" in entry for entry in violation.trace)


class TestPointerScan:
    def test_pointer_cycle_is_reported(self):
        sanitizer, manager = make_manager()
        first = manager.allocate(0)
        second = manager.allocate(0)
        manager._next[second] = first  # loop the destination list
        sanitizer.scan()
        kinds = {violation.kind for violation in sanitizer.violations}
        assert "pointer-cycle" in kinds
        violation = next(
            v for v in sanitizer.violations if v.kind == "pointer-cycle"
        )
        assert violation.slot == first
        assert "list 0" in violation.message

    def test_pointer_leak_is_reported(self):
        sanitizer, manager = make_manager()
        first = manager.allocate(0)
        second = manager.allocate(0)
        manager._next[first] = NO_SLOT  # truncate the chain before `second`
        sanitizer.scan()
        leaks = [
            violation
            for violation in sanitizer.violations
            if violation.kind == "pointer-leak"
        ]
        assert [violation.slot for violation in leaks] == [second]

    def test_cross_link_is_reported(self):
        sanitizer, manager = make_manager()
        first = manager.allocate(0)
        second = manager.allocate(1)
        manager._next[first] = second  # list 0 now runs into list 1's slot
        sanitizer.scan()
        kinds = {violation.kind for violation in sanitizer.violations}
        assert "cross-link" in kinds

    def test_wild_pointer_is_reported(self):
        sanitizer, manager = make_manager()
        manager._free_head = 99  # points outside the 8-slot pool
        sanitizer.scan()
        kinds = [violation.kind for violation in sanitizer.violations]
        assert "wild-pointer" in kinds
        violation = sanitizer.violations[kinds.index("wild-pointer")]
        assert "99" in violation.message

    def test_retired_slots_are_not_leaks(self):
        sanitizer, manager = make_manager()
        manager.retire_slot()
        sanitizer.scan()
        assert sanitizer.clean


class TestPortBudget:
    def test_two_pushes_in_one_cycle_overrun_the_write_port(self):
        sanitizer = HardwareSanitizer()
        buffer = sanitizer.adopt_buffer(FifoBuffer(4, 4), label="switch0.in0")
        sanitizer.begin_cycle(11)
        buffer.push(packet(0, destination=1), 1)
        buffer.push(packet(1, destination=2), 2)
        assert not sanitizer.clean
        violation = sanitizer.violations[0]
        assert violation.kind == "write-port-overrun"
        assert violation.buffer == "switch0.in0"
        assert violation.cycle == 11
        assert len(violation.trace) == 2

    def test_one_push_per_cycle_is_clean(self):
        sanitizer = HardwareSanitizer()
        buffer = sanitizer.adopt_buffer(FifoBuffer(4, 4), label="b")
        for cycle in range(4):
            sanitizer.begin_cycle(cycle)
            buffer.push(packet(cycle, destination=cycle), cycle)
        assert sanitizer.clean

    def test_two_pops_in_one_cycle_overrun_a_single_read_port(self):
        sanitizer = HardwareSanitizer()
        buffer = sanitizer.adopt_buffer(DamqBuffer(8, 4), label="damq0")
        sanitizer.begin_cycle(0)
        buffer.push(packet(0, destination=0), 0)
        sanitizer.begin_cycle(1)
        buffer.push(packet(1, destination=1), 1)
        sanitizer.begin_cycle(2)
        buffer.pop(0)
        buffer.pop(1)
        assert not sanitizer.clean
        violation = sanitizer.violations[0]
        assert violation.kind == "read-port-overrun"
        assert violation.buffer == "damq0"
        assert violation.cycle == 2

    def test_safc_may_pop_once_per_output(self):
        sanitizer = HardwareSanitizer()
        buffer = sanitizer.adopt_buffer(SafcBuffer(8, 4), label="safc0")
        for cycle in range(4):
            sanitizer.begin_cycle(cycle)
            buffer.push(packet(cycle, destination=cycle), cycle)
        sanitizer.begin_cycle(10)
        for output in range(4):
            buffer.pop(output)
        assert sanitizer.clean

    def test_damq_buffer_adoption_also_sanitizes_its_slot_manager(self):
        sanitizer = HardwareSanitizer()
        buffer = sanitizer.adopt_buffer(DamqBuffer(8, 4), label="damq0")
        assert isinstance(buffer._lists, SanitizedSlotListManager)
        buffer._lists._next[5] = 5  # free-list self-loop
        sanitizer.scan()
        assert any(
            violation.kind == "pointer-cycle"
            for violation in sanitizer.violations
        )


class TestArchZooAdoption:
    def test_reserved_damq_adoption_sanitizes_its_slot_manager(self):
        from repro.arch import DamqReservedBuffer

        sanitizer = HardwareSanitizer()
        buffer = sanitizer.adopt_buffer(
            DamqReservedBuffer(8, 4, reserved=1), label="rsv0"
        )
        assert isinstance(buffer._lists, SanitizedSlotListManager)
        for cycle in range(4):
            sanitizer.begin_cycle(cycle)
            buffer.push(packet(cycle, destination=cycle), cycle)
        sanitizer.scan()
        assert sanitizer.clean

    def test_crosspoint_read_ports_are_per_output(self):
        from repro.arch import CrosspointBuffer

        sanitizer = HardwareSanitizer()
        buffer = sanitizer.adopt_buffer(CrosspointBuffer(8, 4), label="cq0")
        for cycle in range(4):
            sanitizer.begin_cycle(cycle)
            buffer.push(packet(cycle, destination=cycle), cycle)
        # Every crosspoint has its own read port: four pops in one cycle
        # are legal...
        sanitizer.begin_cycle(10)
        for output in range(4):
            buffer.pop(output)
        assert sanitizer.clean
        # ...but the pool still has one write port, so refilling all four
        # crosspoints in a single cycle is an overrun.
        sanitizer.begin_cycle(20)
        for output in range(4):
            buffer.push(packet(10 + output, destination=output), output)
        assert not sanitizer.clean
        assert sanitizer.violations[0].kind == "write-port-overrun"


class TestReporting:
    def test_assert_clean_raises_with_full_report(self):
        sanitizer, manager = make_manager()
        slot = manager.allocate(0)
        manager.release_head(0)
        manager._append_free(slot)
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.assert_clean()
        text = str(excinfo.value)
        assert "double-free" in text
        assert "bufA" in text

    def test_report_is_json_able(self):
        import json

        sanitizer, manager = make_manager()
        manager._free_head = 42
        sanitizer.scan()
        payload = json.loads(json.dumps(sanitizer.report()))
        assert payload["clean"] is False
        assert payload["violations"][0]["kind"] == "wild-pointer"

    def test_violations_beyond_cap_are_counted_not_stored(self):
        sanitizer = HardwareSanitizer(max_violations=2)
        for index in range(5):
            sanitizer.record("write-port-overrun", "b", f"overrun {index}")
        assert len(sanitizer.violations) == 2
        assert sanitizer.dropped == 3
        assert not sanitizer.clean

    def test_sanitize_enabled_parses_env_values(self):
        assert not sanitize_enabled(env="")
        assert not sanitize_enabled(env="0")
        assert sanitize_enabled(env="1")
        assert sanitize_enabled(env="yes")
