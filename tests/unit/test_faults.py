"""Unit tests for the fault-injection subsystem (`repro.faults`)."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.chip.wires import Link, Wire, xor_checksum
from repro.errors import ConfigurationError, ProtocolError
from repro.faults import (
    FRAME_OVERHEAD,
    KIND_ACK,
    KIND_DATA,
    MAX_FRAME_PAYLOAD,
    FaultInjector,
    Frame,
    ReliableChannel,
    StuckAtFault,
    crc8,
    decode_frame,
    encode_frame,
)


class TestChecksums:
    def test_xor_checksum_of_nothing_is_zero(self):
        assert xor_checksum([]) == 0

    def test_xor_checksum_self_cancels(self):
        assert xor_checksum([0x5A, 0x5A]) == 0

    def test_xor_checksum_masks_to_a_byte(self):
        assert xor_checksum([0x1FF]) == 0xFF

    def test_crc8_empty_is_zero(self):
        assert crc8(b"") == 0

    def test_crc8_detects_any_single_bit_error(self):
        data = bytes(range(20))
        reference = crc8(data)
        for index in range(len(data)):
            for bit in range(8):
                corrupted = bytearray(data)
                corrupted[index] ^= 1 << bit
                assert crc8(bytes(corrupted)) != reference

    def test_crc8_is_a_byte(self):
        for sample in (b"", b"\x00" * 64, bytes(range(256))):
            assert 0 <= crc8(sample) <= 255


class TestFrameCodec:
    def test_roundtrip(self):
        frame = Frame(KIND_DATA, src=3, dst=9, seq=42, payload=b"hello")
        assert decode_frame(encode_frame(frame)) == frame

    def test_ack_roundtrip_has_empty_payload(self):
        frame = Frame(KIND_ACK, src=1, dst=2, seq=200)
        decoded = decode_frame(encode_frame(frame))
        assert decoded == frame
        assert decoded.payload == b""

    def test_every_single_bit_corruption_is_rejected_or_differs(self):
        wire = encode_frame(Frame(KIND_DATA, 0, 1, 7, b"payload"))
        for index in range(len(wire)):
            for bit in range(8):
                corrupted = bytearray(wire)
                corrupted[index] ^= 1 << bit
                decoded = decode_frame(bytes(corrupted))
                # CRC-8 catches all single-bit errors.
                assert decoded is None

    def test_truncated_frame_is_rejected(self):
        wire = encode_frame(Frame(KIND_DATA, 0, 1, 0, b"xyz"))
        assert decode_frame(wire[: FRAME_OVERHEAD - 1]) is None
        assert decode_frame(wire[:-1]) is None

    def test_not_a_frame_is_rejected(self):
        assert decode_frame(b"") is None
        assert decode_frame(b"arbitrary host bytes") is None

    def test_payload_size_limit_enforced(self):
        with pytest.raises(ConfigurationError):
            encode_frame(
                Frame(KIND_DATA, 0, 1, 0, b"x" * (MAX_FRAME_PAYLOAD + 1))
            )

    def test_address_range_enforced(self):
        with pytest.raises(ConfigurationError):
            encode_frame(Frame(KIND_DATA, 256, 0, 0))
        with pytest.raises(ConfigurationError):
            encode_frame(Frame(KIND_DATA, 0, 0, 999))

    def test_unknown_kind_rejected_both_ways(self):
        with pytest.raises(ConfigurationError):
            encode_frame(Frame(7, 0, 1, 0))
        wire = bytearray(encode_frame(Frame(KIND_DATA, 0, 1, 0)))
        wire[1] = 7  # invalid kind on the wire
        assert decode_frame(bytes(wire)) is None


class TestStuckAtFault:
    def test_stuck_at_one_sets_the_bit(self):
        fault = StuckAtFault("link", bit=3, value=1)
        assert fault.apply(0x00) == 0x08
        assert fault.apply(0xFF) == 0xFF

    def test_stuck_at_zero_clears_the_bit(self):
        fault = StuckAtFault("link", bit=0, value=0)
        assert fault.apply(0xFF) == 0xFE
        assert fault.apply(0x00) == 0x00

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StuckAtFault("link", bit=8, value=1)
        with pytest.raises(ConfigurationError):
            StuckAtFault("link", bit=0, value=2)


class TestFaultInjector:
    def test_zero_rate_never_corrupts(self):
        injector = FaultInjector(seed=1, bit_flip_rate=0.0)
        wire = Wire("w")
        injector.attach_wire(wire)
        for byte in range(256):
            wire.drive(byte)
            assert wire.sample() == byte
            wire.end_cycle()
        assert injector.flips_injected == 0
        assert injector.bytes_seen == 256

    def test_same_seed_same_corruption(self):
        def run(seed):
            injector = FaultInjector(seed=seed, bit_flip_rate=0.05)
            wire = Wire("w")
            injector.attach_wire(wire)
            observed = []
            for byte in range(500):
                wire.drive(byte % 256)
                observed.append(wire.sample())
                wire.end_cycle()
            return observed, injector.flips_injected

        first, flips_first = run(99)
        second, flips_second = run(99)
        assert first == second
        assert flips_first == flips_second > 0
        different, _ = run(100)
        assert different != first

    def test_every_flip_is_exactly_one_bit(self):
        injector = FaultInjector(seed=7, bit_flip_rate=0.2)
        wire = Wire("w")
        injector.attach_wire(wire)
        for _ in range(300):
            wire.drive(0x00)
            sampled = wire.sample()
            assert bin(sampled).count("1") in (0, 1)
            wire.end_cycle()
        assert injector.flips_injected > 0

    def test_stuck_fault_applies_only_to_matching_wires(self):
        injector = FaultInjector(
            seed=1, stuck_faults=(StuckAtFault("victim", bit=0, value=1),)
        )
        victim, bystander = Wire("victim.data"), Wire("healthy.data")
        injector.attach_wire(victim)
        injector.attach_wire(bystander)
        victim.drive(0x00)
        bystander.drive(0x00)
        assert victim.sample() == 0x01
        assert bystander.sample() == 0x00
        assert injector.stuck_corruptions == 1

    def test_start_bits_and_idle_are_never_corrupted(self):
        from repro.chip.wires import START

        injector = FaultInjector(seed=1, bit_flip_rate=1.0)
        wire = Wire("w")
        injector.attach_wire(wire)
        wire.drive(START)
        assert wire.sample() is START
        wire.end_cycle()
        wire.drive(None)
        assert wire.sample() is None
        assert injector.bytes_seen == 0

    def test_attach_links_and_detach(self):
        injector = FaultInjector(seed=1, bit_flip_rate=1.0)
        links = [Link("a"), Link("b")]
        assert injector.attach(links) == 2
        links[0].data.drive(0x00)
        assert links[0].data.sample() != 0x00  # rate 1.0 always flips
        injector.detach()
        for link in links:
            assert link.data.fault is None
        links[1].data.drive(0x42)
        assert links[1].data.sample() == 0x42

    def test_refuses_to_stack_on_foreign_hook(self):
        wire = Wire("w")
        wire.fault = lambda name, value: value
        injector = FaultInjector(seed=1)
        with pytest.raises(ConfigurationError):
            injector.attach_wire(wire)

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(seed=1, bit_flip_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultInjector(seed=1, bit_flip_rate=-0.1)


class TestReliableChannel:
    def _channel(self, **overrides):
        sent = []
        defaults = dict(base_timeout=100, backoff_cap=4, max_attempts=3)
        defaults.update(overrides)
        channel = ReliableChannel(
            src=0, dst=1, transmit=sent.append, **defaults
        )
        return channel, sent

    def test_send_transmits_immediately(self):
        channel, sent = self._channel()
        seq = channel.send(b"data", cycle=0)
        assert seq == 0
        assert len(sent) == 1
        assert decode_frame(sent[0]).payload == b"data"
        assert channel.inflight == 1

    def test_ack_clears_pending(self):
        channel, sent = self._channel()
        seq = channel.send(b"data", cycle=0)
        channel.acknowledge(seq)
        assert channel.inflight == 0
        assert channel.acked == 1
        channel.tick(cycle=10_000)
        assert len(sent) == 1  # no retransmission after the ACK

    def test_stale_ack_is_harmless(self):
        channel, _ = self._channel()
        channel.acknowledge(77)
        assert channel.acked == 0

    def test_exponential_backoff_schedule(self):
        channel, sent = self._channel(
            base_timeout=100, backoff_cap=8, max_attempts=10
        )
        channel.send(b"x", cycle=0)
        pending = next(iter(channel._pending.values()))
        assert pending.next_retry_cycle == 100  # base
        retry_cycles = []
        cycle = 0
        for _ in range(5):
            cycle = pending.next_retry_cycle
            channel.tick(cycle)
            retry_cycles.append(pending.next_retry_cycle - cycle)
        # Timeouts double per attempt: 200, 400, 800, then cap at 8x base.
        assert retry_cycles == [200, 400, 800, 800, 800]
        assert channel.retransmissions == 5

    def test_no_retransmit_before_timeout(self):
        channel, sent = self._channel(base_timeout=100)
        channel.send(b"x", cycle=0)
        channel.tick(cycle=99)
        assert len(sent) == 1
        channel.tick(cycle=100)
        assert len(sent) == 2

    def test_gives_up_after_max_attempts(self):
        channel, sent = self._channel(base_timeout=10, max_attempts=3)
        seq = channel.send(b"x", cycle=0)
        for cycle in range(0, 10_000, 10):
            channel.tick(cycle)
        assert len(sent) == 3  # initial + 2 retransmissions
        assert channel.inflight == 0
        assert channel.failed == [seq]

    def test_sequence_space_exhaustion_is_loud(self):
        channel, _ = self._channel()
        for _ in range(256):
            seq = channel.send(b"", cycle=0)
            channel.acknowledge(seq)
        with pytest.raises(ProtocolError):
            channel.send(b"", cycle=0)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ReliableChannel(0, 1, lambda _: None, base_timeout=0)


class TestInvariantsUnderPythonO:
    """`python -O` strips `assert`; the invariant checks must not."""

    def test_invariant_error_fires_with_optimization_enabled(self):
        src = Path(__file__).resolve().parents[2] / "src"
        script = (
            "from repro.core.linkedlist import SlotListManager\n"
            "from repro.errors import InvariantError\n"
            "assert False  # proves -O is active: this must NOT raise\n"
            "manager = SlotListManager(num_slots=4, num_lists=2)\n"
            "manager.allocate(0)\n"
            "manager._length[0] = 2\n"
            "try:\n"
            "    manager.check_invariants()\n"
            "except InvariantError:\n"
            "    print('DETECTED')\n"
        )
        result = subprocess.run(
            [sys.executable, "-O", "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src)},
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "DETECTED"
