"""Unit tests for the experiment harness (fast experiments only; the
simulation-heavy tables are covered by the integration tests and
benchmarks)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import figure1, figure3, table1, table2
from repro.experiments.report import ExperimentResult, sim_cycles
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.utils.tables import TextTable


class TestReport:
    def test_render_contains_tables_and_notes(self):
        result = ExperimentResult(
            experiment_id="x", title="Title", paper_reference="Table 9"
        )
        table = TextTable("T", ["a"])
        table.add_row([1])
        result.tables.append(table)
        result.notes.append("a note")
        rendered = result.render()
        assert "Title" in rendered
        assert "Table 9" in rendered
        assert "a note" in rendered

    def test_sim_cycles_quick_shorter(self):
        quick_warmup, quick_measure = sim_cycles(True)
        full_warmup, full_measure = sim_cycles(False)
        assert quick_warmup < full_warmup
        assert quick_measure < full_measure


class TestRunnerRegistry:
    def test_all_paper_artifacts_registered(self):
        from repro.experiments.runner import PAPER_EXPERIMENTS

        assert set(PAPER_EXPERIMENTS) == {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "figure1",
            "figure3",
        }

    def test_extensions_registered(self):
        assert {
            "ext-varlen",
            "ext-slotsize",
            "ext-validation",
            "ext-radix",
        } <= set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("table9")

    def test_run_experiment_dispatches(self):
        result = run_experiment("TABLE1")
        assert result.experiment_id == "table1"


class TestTable1:
    def test_turnaround_is_exactly_four(self):
        result = table1.run()
        assert result.data["turnaround"] == 4

    def test_trace_table_rows_present(self):
        result = table1.run()
        trace_table = result.tables[0]
        actions = " ".join(" ".join(row) for row in trace_table.rows)
        assert "start bit detected" in actions
        assert "routed to output" in actions
        assert "start bit driven" in actions


class TestTable2:
    def test_quick_run_has_all_architectures(self):
        result = table2.run(quick=True)
        kinds = {kind for kind, _slots in result.data["discard"]}
        assert kinds == {"FIFO", "DAMQ", "SAMQ", "SAFC"}

    def test_rows_monotone_in_traffic(self):
        result = table2.run(quick=True)
        for probabilities in result.data["discard"].values():
            assert list(probabilities) == sorted(probabilities)

    def test_zero_plus_formatting_in_table(self):
        result = table2.run(quick=True)
        rendered = result.tables[0].render()
        assert "0+" in rendered


class TestFigure1:
    def test_structural_facts(self):
        result = figure1.run()
        facts = result.data["facts"]
        assert facts["FIFO"]["reads_per_cycle"] == 1
        assert facts["SAFC"]["reads_per_cycle"] == 4
        assert facts["FIFO"]["slots_usable_by_one_destination"] == 4
        assert facts["SAMQ"]["slots_usable_by_one_destination"] == 1
        assert facts["DAMQ"]["slots_usable_by_one_destination"] == 4
        assert facts["SAMQ"]["statically_partitioned"] is True
        assert facts["DAMQ"]["statically_partitioned"] is False

    def test_diagrams_included(self):
        result = figure1.run()
        assert any("crossbar" in note for note in result.notes)


class TestFigure3Plot:
    def test_ascii_plot_renders_marks(self):
        from repro.network.saturation import CurvePoint

        curves = {
            "FIFO": [CurvePoint(0.2, 0.2, 40.0), CurvePoint(0.5, 0.5, 160.0)],
            "DAMQ": [CurvePoint(0.2, 0.2, 40.0), CurvePoint(0.7, 0.7, 100.0)],
        }
        plot = figure3.ascii_plot(curves)
        assert "F" in plot
        assert "D" in plot
        assert "delivered throughput" in plot

    def test_ascii_plot_empty(self):
        assert figure3.ascii_plot({}) == "(no data)"
