"""Unit tests for the experiment harness (fast experiments only; the
simulation-heavy tables are covered by the integration tests and
benchmarks)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import figure1, figure3, table1, table2
from repro.experiments.report import ExperimentResult, sim_cycles
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.utils.tables import TextTable


class TestReport:
    def test_render_contains_tables_and_notes(self):
        result = ExperimentResult(
            experiment_id="x", title="Title", paper_reference="Table 9"
        )
        table = TextTable("T", ["a"])
        table.add_row([1])
        result.tables.append(table)
        result.notes.append("a note")
        rendered = result.render()
        assert "Title" in rendered
        assert "Table 9" in rendered
        assert "a note" in rendered

    def test_sim_cycles_quick_shorter(self):
        quick_warmup, quick_measure = sim_cycles(True)
        full_warmup, full_measure = sim_cycles(False)
        assert quick_warmup < full_warmup
        assert quick_measure < full_measure


class TestRunnerRegistry:
    def test_all_paper_artifacts_registered(self):
        from repro.experiments.runner import PAPER_EXPERIMENTS

        assert set(PAPER_EXPERIMENTS) == {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "figure1",
            "figure3",
        }

    def test_extensions_registered(self):
        assert {
            "ext-varlen",
            "ext-slotsize",
            "ext-validation",
            "ext-radix",
        } <= set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("table9")

    def test_run_experiment_dispatches(self):
        result = run_experiment("TABLE1")
        assert result.experiment_id == "table1"


class TestTable1:
    def test_turnaround_is_exactly_four(self):
        result = table1.run()
        assert result.data["turnaround"] == 4

    def test_trace_table_rows_present(self):
        result = table1.run()
        trace_table = result.tables[0]
        actions = " ".join(" ".join(row) for row in trace_table.rows)
        assert "start bit detected" in actions
        assert "routed to output" in actions
        assert "start bit driven" in actions


class TestTable2:
    def test_quick_run_has_all_architectures(self):
        result = table2.run(quick=True)
        kinds = {kind for kind, _slots in result.data["discard"]}
        assert kinds == {"FIFO", "DAMQ", "SAMQ", "SAFC"}

    def test_rows_monotone_in_traffic(self):
        result = table2.run(quick=True)
        for probabilities in result.data["discard"].values():
            assert list(probabilities) == sorted(probabilities)

    def test_zero_plus_formatting_in_table(self):
        result = table2.run(quick=True)
        rendered = result.tables[0].render()
        assert "0+" in rendered


class TestFigure1:
    def test_structural_facts(self):
        result = figure1.run()
        facts = result.data["facts"]
        assert facts["FIFO"]["reads_per_cycle"] == 1
        assert facts["SAFC"]["reads_per_cycle"] == 4
        assert facts["FIFO"]["slots_usable_by_one_destination"] == 4
        assert facts["SAMQ"]["slots_usable_by_one_destination"] == 1
        assert facts["DAMQ"]["slots_usable_by_one_destination"] == 4
        assert facts["SAMQ"]["statically_partitioned"] is True
        assert facts["DAMQ"]["statically_partitioned"] is False

    def test_diagrams_included(self):
        result = figure1.run()
        assert any("crossbar" in note for note in result.notes)


class TestFigure3Plot:
    def test_ascii_plot_renders_marks(self):
        from repro.network.saturation import CurvePoint

        curves = {
            "FIFO": [CurvePoint(0.2, 0.2, 40.0), CurvePoint(0.5, 0.5, 160.0)],
            "DAMQ": [CurvePoint(0.2, 0.2, 40.0), CurvePoint(0.7, 0.7, 100.0)],
        }
        plot = figure3.ascii_plot(curves)
        assert "F" in plot
        assert "D" in plot
        assert "delivered throughput" in plot

    def test_ascii_plot_empty(self):
        assert figure3.ascii_plot({}) == "(no data)"


class TestRunAll:
    """run_all drives every registered experiment through one cache."""

    @staticmethod
    def _stub(name, calls):
        def run(quick=False, seed=1988, jobs=1):
            from repro.cache import runtime

            context = runtime.active()
            assert context is not None, "runner must activate a context"
            calls.append(
                {
                    "name": name,
                    "quick": quick,
                    "seed": seed,
                    "jobs": jobs,
                    "experiment": context.experiment,
                    "cache": context.cache,
                    "checkpointing": context.checkpointing,
                }
            )
            return ExperimentResult(
                experiment_id=name, title=name, paper_reference="stub"
            )

        return run

    def test_runs_every_experiment_in_order(self, monkeypatch, tmp_path):
        from repro.cache import runtime
        from repro.cache.store import ResultCache
        from repro.experiments import runner

        calls = []
        monkeypatch.setattr(
            runner,
            "EXPERIMENTS",
            {
                "alpha": self._stub("alpha", calls),
                "beta": self._stub("beta", calls),
            },
        )
        cache = ResultCache(tmp_path / "cache")
        results = runner.run_all(
            quick=True,
            seed=7,
            jobs=2,
            cache=cache,
            checkpoint_every=500,
            checkpoint_dir=tmp_path / "checkpoints",
        )
        assert [r.experiment_id for r in results] == ["alpha", "beta"]
        assert [c["experiment"] for c in calls] == ["alpha", "beta"]
        for call in calls:
            assert call["quick"] is True
            assert call["seed"] == 7
            assert call["jobs"] == 2
            assert call["cache"] is cache  # one store shared by the suite
            assert call["checkpointing"] is True
        # The context is torn down between and after experiments.
        assert runtime.active() is None

    def test_defaults_run_without_cache(self, monkeypatch):
        from repro.experiments import runner

        calls = []
        monkeypatch.setattr(
            runner, "EXPERIMENTS", {"solo": self._stub("solo", calls)}
        )
        results = runner.run_all()
        assert len(results) == 1
        assert calls[0]["cache"] is None
        assert calls[0]["checkpointing"] is False

    def test_run_experiment_normalizes_case(self, monkeypatch):
        from repro.experiments import runner

        calls = []
        monkeypatch.setattr(
            runner, "EXPERIMENTS", {"mixed": self._stub("mixed", calls)}
        )
        result = runner.run_experiment("MiXeD")
        assert result.experiment_id == "mixed"
        assert calls[0]["experiment"] == "mixed"
