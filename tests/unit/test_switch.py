"""Unit tests for the assembled n×n switch."""

import pytest

from repro.core.registry import make_buffer_factory
from repro.errors import BufferFullError, ConfigurationError
from repro.switch.arbiter import make_arbiter
from repro.switch.flow_control import Protocol
from repro.switch.switch import Switch
from tests.conftest import make_packet


def build_switch(kind="DAMQ", capacity=4, ports=4, arbiter_kind="smart"):
    return Switch(
        switch_id=0,
        num_inputs=ports,
        num_outputs=ports,
        buffer_factory=make_buffer_factory(kind, capacity),
        arbiter=make_arbiter(arbiter_kind, ports, ports),
    )


def never_blocked(input_port, output_port, packet):
    return False


class TestReceive:
    def test_receive_stores_and_counts(self):
        switch = build_switch()
        switch.receive(0, make_packet(packet_id=1, destination=2), 2)
        assert switch.occupancy == 1
        assert switch.packets_received == 1

    def test_receive_full_buffer_propagates(self):
        switch = build_switch(capacity=4)
        for i in range(4):
            switch.receive(0, make_packet(packet_id=i, destination=1), 1)
        with pytest.raises(BufferFullError):
            switch.receive(0, make_packet(packet_id=9, destination=1), 1)

    def test_can_accept_delegates_to_buffer(self):
        switch = build_switch(kind="SAMQ", capacity=4)
        switch.receive(0, make_packet(packet_id=1, destination=1), 1)
        assert not switch.can_accept(0, 1)  # SAMQ partition of one full
        assert switch.can_accept(0, 2)

    def test_invalid_input_rejected(self):
        switch = build_switch()
        with pytest.raises(ConfigurationError):
            switch.receive(7, make_packet(packet_id=1), 0)


class TestTransmit:
    def test_plan_and_execute_round_trip(self):
        switch = build_switch()
        packet = make_packet(packet_id=5, destination=3)
        switch.receive(1, packet, 3)
        grants = switch.plan_transmissions(never_blocked)
        assert len(grants) == 1
        taken = switch.execute(grants[0])
        assert taken is packet
        assert switch.occupancy == 0
        assert switch.packets_forwarded == 1

    def test_crossbar_validates_grants(self):
        """Every plan is checked against the fabric's legality rules."""
        switch = build_switch()
        for input_port in range(4):
            switch.receive(
                input_port,
                make_packet(packet_id=input_port, destination=input_port),
                input_port,
            )
        grants = switch.plan_transmissions(never_blocked)
        assert len(grants) == 4
        assert len(switch.crossbar.connections()) == 4

    def test_safc_switch_uses_wide_fabric(self):
        switch = build_switch(kind="SAFC", capacity=4)
        assert switch.crossbar.max_fanout == 4
        switch.receive(0, make_packet(packet_id=1, destination=1), 1)
        switch.receive(0, make_packet(packet_id=2, destination=2), 2)
        grants = switch.plan_transmissions(never_blocked)
        assert len(grants) == 2  # one input feeding two outputs

    def test_mixed_buffer_kinds_rejected(self):
        calls = iter([make_buffer_factory("FIFO", 4), make_buffer_factory("DAMQ", 4)])

        def flip_factory(num_outputs):
            return next(calls)(num_outputs)

        with pytest.raises(ConfigurationError):
            Switch(0, 2, 2, flip_factory, make_arbiter("dumb", 2, 2))

    def test_reset_counters(self):
        switch = build_switch()
        switch.receive(0, make_packet(packet_id=1, destination=1), 1)
        switch.reset_counters()
        assert switch.packets_received == 0
        assert switch.packets_forwarded == 0


class TestProtocolEnum:
    def test_from_name(self):
        assert Protocol.from_name("blocking") is Protocol.BLOCKING
        assert Protocol.from_name("DISCARDING") is Protocol.DISCARDING

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            Protocol.from_name("dropping")

    def test_str(self):
        assert str(Protocol.BLOCKING) == "blocking"
