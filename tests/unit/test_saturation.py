"""Unit tests for the saturation-measurement helpers (small networks)."""

import pytest

from repro.network import (
    NetworkConfig,
    latency_throughput_curve,
    measure_saturation,
)

SMALL = NetworkConfig(num_ports=16, radix=4, buffer_kind="DAMQ", seed=21)


class TestMeasureSaturation:
    def test_returns_plateau_at_full_load(self):
        result = measure_saturation(SMALL, warmup_cycles=100, measure_cycles=400)
        assert 0.3 < result.saturation_throughput < 1.0
        assert result.saturated_latency > 24  # two hops minimum
        assert result.buffer_kind == "DAMQ"

    def test_ignores_configured_offered_load(self):
        """Saturation measurement always drives at full load."""
        low = measure_saturation(
            SMALL.with_overrides(offered_load=0.1),
            warmup_cycles=100,
            measure_cycles=400,
        )
        high = measure_saturation(
            SMALL.with_overrides(offered_load=0.9),
            warmup_cycles=100,
            measure_cycles=400,
        )
        assert low.saturation_throughput == pytest.approx(
            high.saturation_throughput
        )

    def test_describe_mentions_key_fields(self):
        result = measure_saturation(SMALL, warmup_cycles=50, measure_cycles=200)
        text = result.describe()
        assert "DAMQ" in text and "saturation" in text


class TestLatencyThroughputCurve:
    def test_curve_is_monotone_in_delivered_throughput(self):
        points = latency_throughput_curve(
            SMALL, [0.2, 0.5, 1.0], warmup_cycles=100, measure_cycles=400
        )
        delivered = [point.delivered_throughput for point in points]
        assert delivered == sorted(delivered)

    def test_latency_rises_toward_saturation(self):
        points = latency_throughput_curve(
            SMALL, [0.2, 1.0], warmup_cycles=100, measure_cycles=400
        )
        assert points[-1].average_latency > points[0].average_latency

    def test_delivered_tracks_offered_below_saturation(self):
        points = latency_throughput_curve(
            SMALL, [0.2, 0.3], warmup_cycles=100, measure_cycles=600
        )
        for point in points:
            assert point.delivered_throughput == pytest.approx(
                point.offered_load, abs=0.05
            )
