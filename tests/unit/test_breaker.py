"""Tests for the service circuit breaker (repro.service.breaker)."""

import pytest

from repro.errors import ConfigurationError
from repro.service.breaker import CircuitBreaker


class FakeClock:
    """Injectable monotonic clock so cooldowns never sleep in tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def breaker(clock: FakeClock) -> CircuitBreaker:
    return CircuitBreaker(failure_threshold=3, cooldown=10.0, clock=clock)


class TestValidation:
    def test_rejects_zero_threshold(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)

    def test_rejects_nonpositive_cooldown(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown=0.0)


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        assert breaker.retry_after == 0.0  # repro: noqa=REP004 exact sentinel

    def test_opens_after_consecutive_failures(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.retry_after == pytest.approx(10.0)

    def test_success_resets_the_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_allows_exactly_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else waits for it

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.retry_after == pytest.approx(10.0)
        clock.advance(5.0)
        assert breaker.retry_after == pytest.approx(5.0)
        assert not breaker.allow()

    def test_snapshot_document(self, breaker):
        breaker.record_failure()
        document = breaker.snapshot()
        assert document["state"] == CircuitBreaker.CLOSED
        assert document["consecutive_failures"] == 1
        assert document["failure_threshold"] == 3
