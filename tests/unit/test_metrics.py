"""Unit tests for the metrics records (Meters / SimulationResult)."""

import math

import pytest

from repro.network.metrics import Meters, SimulationResult


def make_result(**meter_values) -> SimulationResult:
    meters = Meters(num_ports=16)
    for field_name, value in meter_values.items():
        setattr(meters, field_name, value)
    return SimulationResult(
        buffer_kind="DAMQ",
        protocol="blocking",
        arbiter_kind="smart",
        traffic_kind="uniform",
        offered_load=0.5,
        slots_per_buffer=4,
        warmup_cycles=100,
        measure_cycles=1000,
        seed=1,
        meters=meters,
    )


class TestMeters:
    def test_throughput_normalization(self):
        meters = Meters(num_ports=16)
        meters.cycles = 1000
        meters.delivered = 8000
        meters.generated = 8100
        assert meters.delivered_throughput == pytest.approx(0.5)
        assert meters.offered_throughput == pytest.approx(8100 / 16000)

    def test_nan_before_any_cycle(self):
        meters = Meters(num_ports=4)
        assert math.isnan(meters.delivered_throughput)
        assert math.isnan(meters.discard_fraction)

    def test_discard_fraction(self):
        meters = Meters(num_ports=4)
        meters.generated = 200
        meters.discarded = 10
        assert meters.discard_fraction == pytest.approx(0.05)


class TestSimulationResult:
    def test_discard_percent_scales_fraction(self):
        result = make_result(cycles=100, generated=1000, discarded=25)
        assert result.discard_percent == pytest.approx(2.5)

    def test_latency_properties_delegate(self):
        result = make_result(cycles=100)
        result.meters.latency.add(40.0)
        result.meters.latency.add(60.0)
        result.meters.network_latency.add(45.0)
        assert result.average_latency == pytest.approx(50.0)
        assert result.average_network_latency == pytest.approx(45.0)

    def test_describe_is_one_line_with_key_fields(self):
        result = make_result(cycles=100, generated=800, delivered=700)
        result.meters.latency.add(50.0)
        text = result.describe()
        assert "\n" not in text
        assert "DAMQ" in text
        assert "blocking" in text
        assert "offered=0.50" in text
