"""Unit tests for the chip model's building blocks: wires, synchronizer,
slot datapath, router."""

import pytest

from repro.chip.router import CircuitRouter
from repro.chip.slots import SLOT_BYTES, DamqBufferHw
from repro.chip.synchronizer import Synchronizer
from repro.chip.wires import START, Link, Wire
from repro.errors import (
    BufferEmptyError,
    ConfigurationError,
    ProtocolError,
    RoutingError,
)


class TestWire:
    def test_drive_and_sample(self):
        wire = Wire("w")
        wire.drive(0x41)
        assert wire.sample() == 0x41
        wire.end_cycle()
        assert wire.sample() is None

    def test_start_bit(self):
        wire = Wire("w")
        wire.drive(START)
        assert wire.sample() is START

    def test_double_drive_rejected(self):
        wire = Wire("w")
        wire.drive(1)
        with pytest.raises(ProtocolError):
            wire.drive(2)

    def test_non_byte_rejected(self):
        with pytest.raises(ProtocolError):
            Wire("w").drive(256)
        with pytest.raises(ProtocolError):
            Wire("w").drive("x")

    def test_driving_none_is_noop(self):
        wire = Wire("w")
        wire.drive(None)
        wire.drive(5)  # legal: None did not count as a driver
        assert wire.sample() == 5

    def test_link_bundles_stop(self):
        link = Link("l")
        link.stop = True
        link.data.drive(7)
        link.end_cycle()
        assert link.stop is True  # stop is a level, survives the cycle
        assert link.data.sample() is None


class TestSynchronizer:
    def test_one_cycle_delay(self):
        sync = Synchronizer()
        assert sync.tick(10) is None
        assert sync.tick(20) == 10
        assert sync.tick(None) == 20
        assert sync.tick(None) is None

    def test_flush(self):
        sync = Synchronizer()
        sync.tick(9)
        sync.flush()
        assert sync.tick(None) is None


def make_buffer(num_slots=12, port_id=0):
    return DamqBufferHw(num_slots=num_slots, num_ports=5, port_id=port_id)


class TestDamqBufferHw:
    def test_begin_packet_claims_free_head(self):
        buffer = make_buffer()
        packet = buffer.begin_packet(destination=1, new_header=0x10)
        assert packet.slots == [0]
        assert buffer.header_register[0] == 0x10
        assert buffer.queue_length(1) == 1
        assert buffer.free_count == 11

    def test_own_port_destination_rejected(self):
        buffer = make_buffer(port_id=2)
        with pytest.raises(ProtocolError):
            buffer.begin_packet(destination=2, new_header=0)

    def test_set_length_loads_register(self):
        buffer = make_buffer()
        packet = buffer.begin_packet(1, 0)
        buffer.set_length(packet, 20)
        assert buffer.length_register[0] == 20
        assert packet.length_known
        with pytest.raises(ProtocolError):
            buffer.set_length(packet, 20)

    def test_illegal_length_rejected(self):
        buffer = make_buffer()
        packet = buffer.begin_packet(1, 0)
        with pytest.raises(ProtocolError):
            buffer.set_length(packet, 0)
        with pytest.raises(ProtocolError):
            buffer.set_length(packet, 33)

    def test_write_allocates_continuation_slots(self):
        buffer = make_buffer()
        packet = buffer.begin_packet(1, 0)
        buffer.set_length(packet, 20)
        for i in range(20):
            buffer.write_byte(packet, i)
        assert len(packet.slots) == 3  # ceil(20/8)
        assert packet.fully_written
        assert buffer.occupancy == 3

    def test_write_before_length_rejected(self):
        buffer = make_buffer()
        packet = buffer.begin_packet(1, 0)
        with pytest.raises(ProtocolError):
            buffer.write_byte(packet, 1)

    def test_write_past_length_rejected(self):
        buffer = make_buffer()
        packet = buffer.begin_packet(1, 0)
        buffer.set_length(packet, 1)
        buffer.write_byte(packet, 1)
        with pytest.raises(ProtocolError):
            buffer.write_byte(packet, 2)

    def test_read_returns_written_bytes_in_order(self):
        buffer = make_buffer()
        packet = buffer.begin_packet(1, 0)
        payload = list(range(17))
        buffer.set_length(packet, len(payload))
        for byte in payload:
            buffer.write_byte(packet, byte)
        read_back = [buffer.read_byte(packet) for _ in payload]
        assert read_back == payload
        buffer.finish_packet(packet)
        assert buffer.free_count == 12
        buffer.check_invariants()

    def test_read_cannot_outrun_write(self):
        buffer = make_buffer()
        packet = buffer.begin_packet(1, 0)
        buffer.set_length(packet, 4)
        buffer.write_byte(packet, 1)
        assert buffer.read_byte(packet) == 1
        with pytest.raises(ProtocolError):
            buffer.read_byte(packet)

    def test_slots_recycle_while_packet_still_arriving(self):
        """Cut-through: head slots return to the free list mid-packet."""
        buffer = make_buffer(num_slots=4)
        packet = buffer.begin_packet(1, 0)
        buffer.set_length(packet, 32)
        for i in range(SLOT_BYTES * 2):  # two slots written
            buffer.write_byte(packet, i)
        for _ in range(SLOT_BYTES):  # first slot fully read
            buffer.read_byte(packet)
        assert packet.slots_released == 1
        # The freed slot is available again even though the packet is
        # still being received.
        assert buffer.free_count == 4 - 2 + 1

    def test_transmittable_requires_length(self):
        buffer = make_buffer()
        packet = buffer.begin_packet(3, 0)
        assert not buffer.transmittable(3)
        buffer.set_length(packet, 2)
        assert buffer.transmittable(3)
        buffer.reader_active = True
        assert not buffer.transmittable(3)

    def test_finish_requires_fully_read(self):
        buffer = make_buffer()
        packet = buffer.begin_packet(1, 0)
        buffer.set_length(packet, 2)
        buffer.write_byte(packet, 1)
        buffer.write_byte(packet, 2)
        with pytest.raises(ProtocolError):
            buffer.finish_packet(packet)

    def test_reading_non_head_packet_rejected(self):
        """Draining a packet that is not at its queue head is a protocol
        violation (the linked list would be corrupted)."""
        buffer = make_buffer()
        first = buffer.begin_packet(1, 0)
        second = buffer.begin_packet(1, 1)
        for packet in (first, second):
            buffer.set_length(packet, 1)
            buffer.write_byte(packet, 9)
        with pytest.raises(ProtocolError):
            buffer.read_byte(second)  # first is still at the head

    def test_finish_out_of_order_rejected(self):
        buffer = make_buffer()
        first = buffer.begin_packet(1, 0)
        second = buffer.begin_packet(1, 1)
        for packet in (first, second):
            buffer.set_length(packet, 1)
            buffer.write_byte(packet, 9)
        buffer.read_byte(first)
        # Claim 'second' finished although 'first' heads the queue.
        second.bytes_read = 1
        with pytest.raises(BufferEmptyError):
            buffer.finish_packet(second)

    def test_too_small_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            DamqBufferHw(num_slots=2, num_ports=5, port_id=0)


class TestCircuitRouter:
    def test_program_and_lookup(self):
        router = CircuitRouter(port_id=0, num_ports=5)
        router.program(header=3, output_port=2, new_header=9)
        entry = router.lookup(3)
        assert (entry.output_port, entry.new_header) == (2, 9)

    def test_missing_circuit_raises(self):
        router = CircuitRouter(0, 5)
        with pytest.raises(RoutingError):
            router.lookup(7)

    def test_turnaround_route_rejected(self):
        router = CircuitRouter(port_id=1, num_ports=5)
        with pytest.raises(ConfigurationError):
            router.program(header=0, output_port=1, new_header=0)

    def test_duplicate_header_rejected(self):
        router = CircuitRouter(0, 5)
        router.program(0, 2, 0)
        with pytest.raises(ConfigurationError):
            router.program(0, 3, 1)

    def test_free_header_skips_used(self):
        router = CircuitRouter(0, 5)
        assert router.free_header() == 0
        router.program(0, 2, 0)
        router.program(1, 2, 0)
        assert router.free_header() == 2

    def test_clear_releases_header(self):
        router = CircuitRouter(0, 5)
        router.program(0, 2, 0)
        router.clear(0)
        assert router.free_header() == 0
        assert router.circuit_count == 0

    def test_header_byte_range(self):
        router = CircuitRouter(0, 5)
        with pytest.raises(ConfigurationError):
            router.program(256, 2, 0)
