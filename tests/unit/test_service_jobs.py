"""Tests for job specs, the degradation ladder and chaos draws."""

import pytest

from repro.errors import ConfigurationError
from repro.service.chaos import ChaosPolicy
from repro.service.jobs import (
    DEGRADATION_LADDER,
    JobRecord,
    JobSpec,
    analytic_prediction,
)


class TestJobSpec:
    def test_from_payload_roundtrip(self):
        spec = JobSpec.from_payload(
            {"experiment": "Figure3", "quick": True, "seed": 7}
        )
        assert spec == JobSpec(experiment="figure3", quick=True, seed=7)
        assert spec.payload() == {
            "experiment": "figure3",
            "quick": True,
            "seed": 7,
        }

    def test_wait_field_is_tolerated(self):
        spec = JobSpec.from_payload({"experiment": "table1", "wait": True})
        assert spec.experiment == "table1"

    @pytest.mark.parametrize(
        "payload",
        [
            "not-a-dict",
            {},
            {"experiment": "nope"},
            {"experiment": "table1", "quick": "yes"},
            {"experiment": "table1", "seed": 1.5},
            {"experiment": "table1", "seed": True},
            {"experiment": "table1", "bogus": 1},
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(ConfigurationError):
            JobSpec.from_payload(payload)

    def test_key_folds_in_source_fingerprint(self):
        # Same spec -> same key; the key is a cache_key, so it embeds the
        # source fingerprint (shape asserted indirectly: differs from the
        # fingerprint-free stale key).
        spec = JobSpec(experiment="table2")
        assert spec.key() == JobSpec(experiment="table2").key()
        assert spec.key() != spec.stale_key()

    def test_stale_key_is_spec_identity_only(self):
        assert (
            JobSpec(experiment="table2").stale_key()
            == JobSpec(experiment="table2").stale_key()
        )
        assert (
            JobSpec(experiment="table2").stale_key()
            != JobSpec(experiment="table2", seed=3).stale_key()
        )

    def test_backend_field_parses_and_normalizes(self):
        spec = JobSpec.from_payload(
            {"experiment": "table1", "backend": "numpy"}
        )
        assert spec.backend == "numpy"
        assert JobSpec.from_payload({"experiment": "table1"}).backend is None

    @pytest.mark.parametrize("backend", ["cuda", 7, ""])
    def test_bad_backend_rejected(self, backend):
        with pytest.raises(ConfigurationError):
            JobSpec.from_payload(
                {"experiment": "table1", "backend": backend}
            )

    def test_backend_excluded_from_canonical_payload_and_key(self):
        # Backends produce byte-identical results, so jobs differing only
        # in backend must coalesce: same payload, same key, same stale key.
        plain = JobSpec.from_payload({"experiment": "table3", "quick": True})
        forced = JobSpec.from_payload(
            {"experiment": "table3", "quick": True, "backend": "numpy"}
        )
        assert forced.payload() == plain.payload()
        assert "backend" not in forced.payload()
        assert forced.key() == plain.key()
        assert forced.stale_key() == plain.stale_key()


class TestJobRecord:
    def test_describe_minimal_while_queued(self):
        record = JobRecord(spec=JobSpec(experiment="table1"), key="k")
        document = record.describe()
        assert document["status"] == "queued"
        assert "result" not in document
        assert "source" not in document

    def test_describe_terminal_fields(self):
        record = JobRecord(
            spec=JobSpec(experiment="table1"),
            key="k",
            status="done",
            source="cached",
            result={"report": "text"},
        )
        document = record.describe()
        assert document["source"] == "cached"
        assert document["result"] == {"report": "text"}

    def test_ids_are_unique(self):
        spec = JobSpec(experiment="table1")
        ids = {JobRecord(spec=spec, key="k").id for _ in range(10)}
        assert len(ids) == 10


class TestDegradation:
    def test_ladder_order(self):
        assert DEGRADATION_LADDER == ("fresh", "cached", "stale", "analytic")

    def test_analytic_prediction_shape(self):
        prediction = analytic_prediction(JobSpec(experiment="figure3"))
        assert prediction["model"] == "markov"
        assert set(prediction["steady_state_2x2"]) == {
            "FIFO",
            "DAMQ",
            "SAMQ",
            "SAFC",
        }
        for state in prediction["steady_state_2x2"].values():
            assert 0.0 <= state["discard_probability"] <= 1.0
            assert 0.0 < state["throughput"] <= 1.0
        assert "2" in prediction["hol_saturation_throughput"]


class TestChaosPolicy:
    def test_disabled_by_default(self):
        assert not ChaosPolicy().enabled
        assert ChaosPolicy().draw("t", 1) == {}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosPolicy(kill_probability=1.5)
        with pytest.raises(ConfigurationError):
            ChaosPolicy(kill_after_s=(0.4, 0.1))
        with pytest.raises(ConfigurationError):
            ChaosPolicy(max_injections_per_task=-1)

    def test_draws_are_deterministic(self):
        policy = ChaosPolicy(seed=3, kill_probability=0.5)
        again = ChaosPolicy(seed=3, kill_probability=0.5)
        for attempt in (1, 2):
            for task in ("a", "b", "c"):
                assert policy.draw(task, attempt) == again.draw(task, attempt)

    def test_certain_kill_lands_in_window(self):
        policy = ChaosPolicy(kill_probability=1.0, kill_after_s=(0.1, 0.2))
        envelope = policy.draw("task", 1)
        assert 0.1 <= envelope["kill_after_s"] <= 0.2

    def test_injections_stop_past_the_bound(self):
        policy = ChaosPolicy(
            kill_probability=1.0, max_injections_per_task=2
        )
        assert policy.draw("task", 2) != {}
        assert policy.draw("task", 3) == {}

    def test_one_fault_kind_per_attempt(self):
        policy = ChaosPolicy(
            kill_probability=1.0,
            stall_probability=1.0,
            slow_io_probability=1.0,
        )
        envelope = policy.draw("task", 1)
        assert list(envelope) == ["kill_after_s"]
