"""Unit tests for the crossbar connection-state model."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.switch.crossbar import Crossbar


class TestPlainCrossbar:
    def test_connect_and_query(self):
        crossbar = Crossbar(4, 4)
        crossbar.connect(1, 3)
        assert crossbar.source(3) == 1
        assert crossbar.connections() == [(1, 3)]
        assert not crossbar.is_output_free(3)
        assert crossbar.is_output_free(0)

    def test_output_conflict_rejected(self):
        crossbar = Crossbar(4, 4)
        crossbar.connect(0, 2)
        with pytest.raises(ProtocolError):
            crossbar.connect(1, 2)

    def test_input_fanout_limited_to_one(self):
        crossbar = Crossbar(4, 4)
        crossbar.connect(0, 1)
        with pytest.raises(ProtocolError):
            crossbar.connect(0, 2)

    def test_full_permutation_is_legal(self):
        crossbar = Crossbar(4, 4)
        for port in range(4):
            crossbar.connect(port, (port + 1) % 4)
        assert len(crossbar.connections()) == 4

    def test_reset_clears_connections(self):
        crossbar = Crossbar(2, 2)
        crossbar.connect(0, 0)
        crossbar.reset()
        assert crossbar.connections() == []
        crossbar.connect(1, 0)  # no conflict after reset

    def test_range_validation(self):
        crossbar = Crossbar(2, 2)
        with pytest.raises(ConfigurationError):
            crossbar.connect(2, 0)
        with pytest.raises(ConfigurationError):
            crossbar.connect(0, 5)
        with pytest.raises(ConfigurationError):
            Crossbar(0, 2)


class TestSafcFabric:
    """SAFC's four 4x1 switches = fan-out up to num_outputs per input."""

    def test_input_may_drive_multiple_outputs(self):
        fabric = Crossbar(4, 4, max_fanout=4)
        fabric.connect(0, 0)
        fabric.connect(0, 1)
        fabric.connect(0, 2)
        assert fabric.fanout(0) == 3

    def test_fanout_limit_still_enforced(self):
        fabric = Crossbar(2, 2, max_fanout=2)
        fabric.connect(0, 0)
        fabric.connect(0, 1)
        with pytest.raises(ProtocolError):
            fabric.connect(0, 1)  # output taken anyway

    def test_outputs_still_single_sourced(self):
        fabric = Crossbar(4, 4, max_fanout=4)
        fabric.connect(0, 3)
        with pytest.raises(ProtocolError):
            fabric.connect(1, 3)
