"""Unit tests for the chip trace recorder."""

from repro.chip.trace import TraceEvent, TraceRecorder


class TestTraceRecorder:
    def test_events_kept_in_order(self):
        recorder = TraceRecorder()
        recorder.record(3, "a.in0", "first")
        recorder.record(3, "a.out1", "second")
        recorder.record(4, "a.in0", "third")
        assert [event.action for event in recorder.events] == [
            "first",
            "second",
            "third",
        ]

    def test_filter_by_component_prefix(self):
        recorder = TraceRecorder()
        recorder.record(0, "chipA.in0", "x")
        recorder.record(0, "chipA.out0", "y")
        recorder.record(0, "chipB.in0", "z")
        assert len(recorder.filter(component="chipA")) == 2
        assert len(recorder.filter(component="chipA.in")) == 1

    def test_filter_by_action_substring(self):
        recorder = TraceRecorder()
        recorder.record(0, "c", "start bit detected")
        recorder.record(1, "c", "EOP")
        assert len(recorder.filter(contains="start bit")) == 1

    def test_combined_filters(self):
        recorder = TraceRecorder()
        recorder.record(0, "a.in0", "start bit detected")
        recorder.record(0, "b.in0", "start bit detected")
        matches = recorder.filter(component="a", contains="start")
        assert len(matches) == 1

    def test_render_one_line_per_event(self):
        recorder = TraceRecorder()
        recorder.record(7, "x", "did a thing")
        recorder.record(9, "y", "did another")
        lines = recorder.render().splitlines()
        assert len(lines) == 2
        assert "cycle    7" in lines[0]
        assert "did another" in lines[1]

    def test_clear(self):
        recorder = TraceRecorder()
        recorder.record(0, "x", "y")
        recorder.clear()
        assert recorder.events == []

    def test_event_render(self):
        event = TraceEvent(12, "chip.in3", "routed")
        text = event.render()
        assert "12" in text and "chip.in3" in text and "routed" in text
