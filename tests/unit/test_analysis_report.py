"""Unit tests for :mod:`repro.analysis.report` and the CLI exit codes.

The report module is the seam between the linter and everything that
consumes it (humans, CI annotations, tooling), so its three renderers
are pinned here independently of the lint rules: aggregation counts,
the empty-input (clean) forms, the versioned JSON schema with
repo-relative paths, the GitHub Actions workflow-command escaping, and
the exit codes of the ``lint`` sub-command driven in-process through
:func:`repro.analysis.__main__.main`.
"""

import json
import os

import pytest

from repro.analysis.__main__ import main
from repro.analysis.lint import Finding
from repro.analysis.report import (
    REPORT_VERSION,
    render_github,
    render_json,
    render_text,
)


def finding(code="REP005", path="src/repro/core/demo.py", line=3, column=0,
            message="bare assert in simulation code"):
    return Finding(
        code=code, message=message, path=path, line=line, column=column
    )


SAMPLE = [
    finding(),
    finding(code="REP004", line=9, column=4, message="float equality"),
    finding(code="REP005", path="src/repro/core/other.py", line=1),
]


class TestRenderText:
    def test_one_line_per_finding_plus_summary(self):
        text = render_text(SAMPLE, files_checked=7)
        lines = text.splitlines()
        assert len(lines) == len(SAMPLE) + 1
        assert lines[0] == SAMPLE[0].render()
        assert "3 finding(s) in 7 file(s)" in lines[-1]

    def test_summary_aggregates_counts_by_code(self):
        text = render_text(SAMPLE, files_checked=7)
        assert "REP004: 1" in text
        assert "REP005: 2" in text

    def test_empty_input_is_clean(self):
        assert render_text([], files_checked=12) == (
            "clean: 0 findings in 12 file(s)"
        )


class TestRenderJson:
    def test_schema_version_and_shape(self):
        payload = json.loads(render_json(SAMPLE, files_checked=7))
        assert payload["schema"] == REPORT_VERSION == 2
        assert "version" not in payload  # the v1 key is gone
        assert payload["files_checked"] == 7
        assert payload["clean"] is False
        assert payload["counts"] == {"REP004": 1, "REP005": 2}
        assert len(payload["findings"]) == 3
        entry = payload["findings"][0]
        assert entry["code"] == "REP005"
        assert entry["line"] == 3
        assert entry["column"] == 0

    def test_empty_input_is_clean(self):
        payload = json.loads(render_json([], files_checked=4))
        assert payload["clean"] is True
        assert payload["counts"] == {}
        assert payload["findings"] == []

    def test_rules_catalogue_includes_every_code(self):
        payload = json.loads(render_json([], files_checked=0))
        for code in ("REP001", "REP008"):
            assert code in payload["rules"]

    def test_absolute_paths_become_repo_relative(self):
        absolute = os.path.join(os.getcwd(), "src", "repro", "x.py")
        payload = json.loads(
            render_json([finding(path=absolute)], files_checked=1)
        )
        assert payload["findings"][0]["path"] == "src/repro/x.py"

    def test_paths_outside_repo_stay_absolute(self):
        payload = json.loads(
            render_json([finding(path="/elsewhere/x.py")], files_checked=1)
        )
        assert payload["findings"][0]["path"] == "/elsewhere/x.py"


class TestRenderGithub:
    def test_error_annotation_per_finding(self):
        lines = render_github(SAMPLE, files_checked=7).splitlines()
        assert len(lines) == len(SAMPLE) + 1  # + trailing ::notice
        assert lines[0] == (
            "::error file=src/repro/core/demo.py,line=3,col=0,"
            "title=REP005::bare assert in simulation code"
        )
        assert lines[-1].startswith("::notice title=repro-lint::")
        assert "3 finding(s) in 7 file(s)" in lines[-1]

    def test_message_percent_escaping(self):
        tricky = finding(message="50% chance\r\nof reorder")
        line = render_github([tricky], files_checked=1).splitlines()[0]
        assert line.endswith("::50%25 chance%0D%0Aof reorder")
        assert "\n" not in line

    def test_clean_run_still_emits_notice(self):
        lines = render_github([], files_checked=9).splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("::notice title=repro-lint::")
        assert "clean (9 file(s) checked)" in lines[0]


class TestCliExitCodes:
    """Drive ``main(argv)`` in-process: exit codes and format switches."""

    def test_clean_lint_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        dirty = tmp_path / "src" / "repro" / "core"
        dirty.mkdir(parents=True)
        (dirty / "demo.py").write_text("assert x\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "REP005" in capsys.readouterr().out

    def test_json_format_parses(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", "--format", "json", str(clean)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == REPORT_VERSION

    def test_github_format_emits_annotations(self, tmp_path, capsys):
        dirty = tmp_path / "src" / "repro" / "core"
        dirty.mkdir(parents=True)
        (dirty / "demo.py").write_text("assert x\n")
        assert main(["lint", "--format", "github", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=REP005" in out

    def test_select_filters_codes(self, tmp_path, capsys):
        dirty = tmp_path / "src" / "repro" / "core"
        dirty.mkdir(parents=True)
        (dirty / "demo.py").write_text("assert x\n")
        assert main(["lint", "--select", "REP004", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_no_subcommand_exits_two(self, capsys):
        assert main([]) == 2
        capsys.readouterr()

    def test_rules_subcommand_lists_all_codes(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP003", "REP008"):
            assert f"{code}:" in out


@pytest.mark.parametrize("renderer", [render_text, render_json, render_github])
def test_renderers_accept_tuples(renderer):
    # Sequence, not list, is the contract.
    assert renderer(tuple(SAMPLE), files_checked=3)
