"""Unit tests for the chip-level central arbiter."""

from repro.chip.arbiter import ChipArbiter
from repro.chip.output_port import OutputPort
from repro.chip.slots import DamqBufferHw
from repro.chip.wires import Link


def make_parts(num_slots=12):
    buffers = [DamqBufferHw(num_slots, 5, port) for port in range(5)]
    ports = [OutputPort(port, "chip") for port in range(5)]
    for port in ports:
        port.attach(Link(f"out{port.port_id}"))
    return buffers, ports


def ready_packet(buffer, destination, length=4):
    packet = buffer.begin_packet(destination, new_header=0)
    buffer.set_length(packet, length)
    for i in range(length):
        buffer.write_byte(packet, i)
    return packet


class TestGrants:
    def test_grants_ready_queue_to_idle_port(self):
        buffers, ports = make_parts()
        ready_packet(buffers[0], destination=2)
        arbiter = ChipArbiter("chip", 5)
        arbiter.tick(0, buffers, ports)
        assert ports[2].busy
        assert buffers[0].reader_active

    def test_skips_packet_without_length(self):
        buffers, ports = make_parts()
        buffers[0].begin_packet(destination=2, new_header=0)  # no length yet
        arbiter = ChipArbiter("chip", 5)
        arbiter.tick(0, buffers, ports)
        assert not ports[2].busy

    def test_single_read_port_per_buffer(self):
        """One buffer with packets for two outputs feeds only one."""
        buffers, ports = make_parts()
        ready_packet(buffers[0], destination=1)
        ready_packet(buffers[0], destination=2)
        arbiter = ChipArbiter("chip", 5)
        arbiter.tick(0, buffers, ports)
        assert sum(port.busy for port in ports) == 1

    def test_two_buffers_feed_two_ports(self):
        buffers, ports = make_parts()
        ready_packet(buffers[0], destination=1)
        ready_packet(buffers[2], destination=3)
        arbiter = ChipArbiter("chip", 5)
        arbiter.tick(0, buffers, ports)
        assert ports[1].busy and ports[3].busy

    def test_longest_queue_wins(self):
        buffers, ports = make_parts()
        ready_packet(buffers[0], destination=3, length=2)
        ready_packet(buffers[1], destination=3, length=2)
        ready_packet(buffers[1], destination=3, length=2)
        arbiter = ChipArbiter("chip", 5)
        arbiter.tick(0, buffers, ports)
        assert buffers[1].reader_active
        assert not buffers[0].reader_active

    def test_stopped_downstream_not_granted(self):
        buffers, ports = make_parts()
        ready_packet(buffers[0], destination=2)
        ports[2].link.stop = True
        arbiter = ChipArbiter("chip", 5)
        arbiter.tick(0, buffers, ports)
        assert not ports[2].busy
        ports[2].link.stop = False
        arbiter.tick(1, buffers, ports)
        assert ports[2].busy

    def test_busy_port_not_regranted(self):
        buffers, ports = make_parts()
        ready_packet(buffers[0], destination=2)
        ready_packet(buffers[1], destination=2)
        arbiter = ChipArbiter("chip", 5)
        arbiter.tick(0, buffers, ports)
        first_reader = buffers[0].reader_active
        arbiter.tick(1, buffers, ports)
        # Port 2 is mid-packet; the second queue must wait.
        assert buffers[0].reader_active == first_reader
        assert sum(b.reader_active for b in buffers) == 1


class TestStaleFairness:
    def test_stale_queue_wins_length_tie(self):
        buffers, ports = make_parts()
        arbiter = ChipArbiter("chip", 5)
        # Cycle 0: only buffer 3 has a packet; port 1 is stopped, so the
        # queue ages.
        ready_packet(buffers[3], destination=1)
        ports[1].link.stop = True
        arbiter.tick(0, buffers, ports)
        assert arbiter._stale[3][1] > 0
        # Cycle 1: buffer 0 now also has a same-length queue for port 1.
        ready_packet(buffers[0], destination=1)
        ports[1].link.stop = False
        arbiter.tick(1, buffers, ports)
        assert buffers[3].reader_active  # the older queue won
        assert not buffers[0].reader_active

    def test_grants_counter(self):
        buffers, ports = make_parts()
        ready_packet(buffers[0], destination=1)
        arbiter = ChipArbiter("chip", 5)
        arbiter.tick(0, buffers, ports)
        assert arbiter.grants_made == 1
