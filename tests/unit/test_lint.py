"""Unit tests for the determinism linter (repro.analysis.lint).

Every rule gets a positive case (the hazard is flagged), a negative case
(legitimate code is not), and a noqa case (a justified suppression
survives).  Sources are inline snippets run through :func:`lint_source`
with an explicit ``module=`` override so the scoping logic is exercised
without touching the filesystem.
"""

import json
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.lint import (
    RULES,
    Finding,
    lint_paths,
    lint_source,
)
from repro.analysis.report import render_json, render_text

SIM_MODULE = "repro.core.example"


def codes(source, module=SIM_MODULE, path="src/repro/core/example.py"):
    """Lint a dedented snippet and return the finding codes."""
    findings = lint_source(textwrap.dedent(source), path=path, module=module)
    return [finding.code for finding in findings]


class TestRep001UnseededRandom:
    def test_flags_stdlib_global_random(self):
        assert codes(
            """
            import random
            value = random.random()
            """
        ) == ["REP001"]

    def test_flags_numpy_global_draw(self):
        assert codes(
            """
            import numpy as np
            value = np.random.random()
            """
        ) == ["REP001"]

    def test_flags_from_import_alias(self):
        assert codes(
            """
            from random import randint as ri
            value = ri(0, 4)
            """
        ) == ["REP001"]

    def test_seeded_constructor_allowed(self):
        assert codes(
            """
            import numpy as np
            gen = np.random.default_rng(1988)
            """
        ) == []

    def test_unseeded_constructor_flagged(self):
        assert codes(
            """
            import numpy as np
            gen = np.random.default_rng()
            """
        ) == ["REP001"]

    def test_rng_module_is_exempt(self):
        assert (
            codes(
                """
                import numpy as np
                value = np.random.random()
                """,
                module="repro.utils.rng",
            )
            == []
        )

    def test_noqa_suppresses(self):
        assert codes(
            """
            import random
            value = random.random()  # repro: noqa=REP001 demo only
            """
        ) == []


class TestRep002WallClock:
    def test_flags_time_in_simulation_module(self):
        assert codes(
            """
            import time
            start = time.perf_counter()
            """
        ) == ["REP002"]

    def test_flags_datetime_now(self):
        assert codes(
            """
            import datetime
            stamp = datetime.datetime.now()
            """
        ) == ["REP002"]

    def test_perf_package_is_allowed(self):
        assert (
            codes(
                """
                import time
                start = time.perf_counter()
                """,
                module="repro.perf.harness",
            )
            == []
        )

    def test_noqa_suppresses(self):
        assert codes(
            """
            import time
            start = time.time()  # repro: noqa=REP002 logging only
            """
        ) == []


class TestKernelPackageScoping:
    """``repro.kernel`` is a simulation package: the vectorized backend
    must obey the same determinism contract as the scalar simulator."""

    KERNEL = dict(
        module="repro.kernel.numpy_kernel",
        path="src/repro/kernel/numpy_kernel.py",
    )

    def test_direct_numpy_random_in_kernel_is_flagged(self):
        assert codes(
            """
            import numpy as np
            noise = np.random.random(64)
            """,
            **self.KERNEL,
        ) == ["REP001"]

    def test_wall_clock_in_kernel_is_rep002(self):
        assert codes(
            """
            import time
            start = time.perf_counter()
            """,
            **self.KERNEL,
        ) == ["REP002"]

    def test_set_iteration_in_kernel_is_rep003(self):
        assert codes(
            """
            for stage in set(stages):
                advance(stage)
            """,
            **self.KERNEL,
        ) == ["REP003"]

    def test_kernel_is_in_simulation_packages(self):
        from repro.analysis.lint import SIMULATION_PACKAGES

        assert "repro.kernel" in SIMULATION_PACKAGES


class TestRep003SetIteration:
    def test_flags_for_over_set_call(self):
        assert codes(
            """
            for item in set(items):
                consume(item)
            """
        ) == ["REP003"]

    def test_flags_comprehension_over_set_literal(self):
        assert codes(
            """
            doubled = [2 * x for x in {1, 2, 3}]
            """
        ) == ["REP003"]

    def test_sorted_set_is_allowed(self):
        assert codes(
            """
            for item in sorted(set(items)):
                consume(item)
            """
        ) == []

    def test_membership_test_is_allowed(self):
        assert codes(
            """
            if item in {1, 2, 3}:
                consume(item)
            """
        ) == []

    def test_library_modules_are_rep008_not_rep003(self):
        assert (
            codes(
                """
                for item in set(items):
                    consume(item)
                """,
                module="repro.utils.tables",
            )
            == ["REP008"]
        )

    def test_noqa_suppresses(self):
        assert codes(
            """
            for item in set(items):  # repro: noqa=REP003 order-insensitive sum
                total += item
            """
        ) == []


class TestRep008SetIterationLibrary:
    SNIPPET = """
    for item in set(items):
        consume(item)
    """

    def test_flags_repro_library_module(self):
        assert codes(self.SNIPPET, module="repro.analysis.report") == [
            "REP008"
        ]

    def test_flags_comprehension_over_set_literal(self):
        assert codes(
            "rows = [f(x) for x in {1, 2, 3}]\n",
            module="repro.markov.bridge",
        ) == ["REP008"]

    def test_simulation_modules_stay_rep003(self):
        assert codes(self.SNIPPET, module="repro.core.damq") == ["REP003"]

    def test_non_repro_modules_exempt(self):
        assert codes(self.SNIPPET, module="somepkg.helpers") == []
        assert codes(self.SNIPPET, module=None, path="scripts/tool.py") == []

    def test_tests_exempt(self):
        assert (
            codes(
                self.SNIPPET,
                module="repro.utils.tables",
                path="tests/unit/test_tables.py",
            )
            == []
        )

    def test_sorted_set_is_allowed(self):
        assert codes(
            """
            for item in sorted(set(items)):
                consume(item)
            """,
            module="repro.utils.tables",
        ) == []

    def test_noqa_suppresses(self):
        assert codes(
            """
            for item in set(items):  # repro: noqa=REP008 order-insensitive
                total += item
            """,
            module="repro.utils.tables",
        ) == []


class TestRep004FloatEquality:
    def test_flags_equality_with_float_literal(self):
        assert codes("ok = value == 1.5\n") == ["REP004"]

    def test_flags_inequality_and_negative_literal(self):
        assert codes("ok = value != -0.5\n") == ["REP004"]

    def test_integer_literal_allowed(self):
        assert codes("ok = value == 3\n") == []

    def test_ordering_comparison_allowed(self):
        assert codes("ok = value < 1.5\n") == []

    def test_noqa_suppresses(self):
        assert codes("ok = p == 0.0  # repro: noqa=REP004 exact sentinel\n") == []


class TestRep005BareAssert:
    def test_flags_assert_in_library_module(self):
        assert codes("assert head is not None\n") == ["REP005"]

    def test_tests_may_assert(self):
        assert (
            codes(
                "assert head is not None\n",
                module="tests.unit.test_example",
                path="tests/unit/test_example.py",
            )
            == []
        )

    def test_raise_invariant_error_is_the_fix(self):
        assert codes(
            """
            if head is None:
                raise InvariantError("empty list has a head")
            """
        ) == []

    def test_noqa_suppresses(self):
        assert codes(
            "assert head is not None  # repro: noqa=REP005 debug scaffold\n"
        ) == []


class TestRep006MutableDefault:
    def test_flags_list_literal_default(self):
        assert codes("def f(items=[]):\n    return items\n") == ["REP006"]

    def test_flags_constructor_default(self):
        assert codes("def f(items=dict()):\n    return items\n") == ["REP006"]

    def test_flags_keyword_only_default(self):
        assert codes("def f(*, items={}):\n    return items\n") == ["REP006"]

    def test_none_default_allowed(self):
        assert codes("def f(items=None):\n    return items\n") == []

    def test_tuple_default_allowed(self):
        assert codes("def f(items=()):\n    return items\n") == []

    def test_noqa_suppresses(self):
        assert codes(
            "def f(items=[]):  # repro: noqa=REP006 module-lifetime cache\n"
            "    return items\n"
        ) == []


class TestRep007WallClockOutsideAllowlist:
    WALL_CLOCK = """
        import time
        def f():
            return time.perf_counter()
        """

    def test_flags_library_module_outside_allowlist(self):
        assert codes(
            self.WALL_CLOCK,
            module="repro.cache.store",
            path="src/repro/cache/store.py",
        ) == ["REP007"]

    def test_flags_datetime_now(self):
        assert codes(
            """
            from datetime import datetime
            stamp = datetime.now()
            """,
            module="repro.experiments.export",
            path="src/repro/experiments/export.py",
        ) == ["REP007"]

    def test_perf_harness_allowed(self):
        assert codes(
            self.WALL_CLOCK,
            module="repro.perf.harness",
            path="src/repro/perf/harness.py",
        ) == []

    def test_telemetry_allowed(self):
        assert codes(
            self.WALL_CLOCK,
            module="repro.telemetry.session",
            path="src/repro/telemetry/session.py",
        ) == []

    def test_service_allowed(self):
        # Process supervision is wall-clock by nature: heartbeats,
        # deadlines and retry delays all read real time.
        assert codes(
            self.WALL_CLOCK,
            module="repro.service.supervisor",
            path="src/repro/service/supervisor.py",
        ) == []

    def test_simulation_path_is_rep002_not_rep007(self):
        assert codes(self.WALL_CLOCK) == ["REP002"]

    def test_tests_out_of_scope(self):
        assert codes(
            self.WALL_CLOCK, module="tests.unit.example", path="tests/unit/example.py"
        ) == []

    def test_noqa_suppresses(self):
        assert codes(
            """
            import time
            started = time.perf_counter()  # repro: noqa=REP007 CLI timing
            """,
            module="repro.experiments.__main__",
            path="src/repro/experiments/__main__.py",
        ) == []


class TestNoqaMechanics:
    def test_wrong_code_does_not_suppress(self):
        assert codes("assert x  # repro: noqa=REP004 wrong code\n") == ["REP005"]

    def test_multiple_codes_on_one_line(self):
        assert codes(
            "assert x == 1.0  # repro: noqa=REP004,REP005 both intentional\n"
        ) == []


class TestInfrastructure:
    def test_every_rule_has_code_and_docs(self):
        assert set(RULES) == {
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
        }
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.summary()
            assert rule.doc()

    def test_finding_render_format(self):
        finding = Finding(
            code="REP004", message="msg", path="a.py", line=3, column=7
        )
        assert finding.render() == "a.py:3:7: REP004 msg"

    def test_lint_paths_reports_syntax_errors_as_rep000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings, checked = lint_paths([str(tmp_path)])
        assert checked == 1
        assert [finding.code for finding in findings] == ["REP000"]

    def test_lint_paths_walks_directories(self, tmp_path):
        package = tmp_path / "src" / "repro" / "core"
        package.mkdir(parents=True)
        (package / "demo.py").write_text("assert True\n")
        findings, checked = lint_paths([str(tmp_path)])
        assert checked == 1
        assert [finding.code for finding in findings] == ["REP005"]

    def test_json_report_schema(self):
        findings = lint_source(
            "assert x\n", path="src/repro/core/demo.py", module=SIM_MODULE
        )
        payload = json.loads(render_json(findings, files_checked=1))
        assert payload["schema"] == 2
        assert payload["clean"] is False
        assert payload["counts"] == {"REP005": 1}
        assert payload["findings"][0]["code"] == "REP005"
        assert payload["findings"][0]["line"] == 1
        assert "REP005" in payload["rules"]

    def test_text_report_clean_line(self):
        assert render_text([], files_checked=4).startswith("clean: 0 findings")


class TestCommandLine:
    """The installed entry point: exit codes and output formats."""

    def run(self, *args, **kwargs):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            **kwargs,
        )

    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        result = self.run("lint", str(clean))
        assert result.returncode == 0
        assert "clean" in result.stdout

    def test_findings_exit_nonzero_with_json(self, tmp_path):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "demo.py").write_text("assert True\n")
        result = self.run("lint", "--format", "json", str(tmp_path))
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["counts"] == {"REP005": 1}

    def test_select_restricts_rules(self, tmp_path):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "demo.py").write_text("assert x == 1.0\n")
        result = self.run("lint", "--select", "REP004", str(tmp_path))
        assert result.returncode == 1
        assert "REP004" in result.stdout
        assert "REP005" not in result.stdout

    def test_rules_subcommand_prints_docs(self):
        result = self.run("rules")
        assert result.returncode == 0
        for code in RULES:
            assert code in result.stdout
