"""Unit tests for traffic patterns, sources and sinks."""

import pytest

from repro.core.packet import PacketFactory
from repro.errors import ConfigurationError
from repro.network.sources import Sink, Source
from repro.network.topology import OmegaTopology
from repro.network.traffic import (
    HotSpotTraffic,
    PermutationTraffic,
    UniformTraffic,
    make_traffic,
)
from repro.utils.rng import RandomStream


class TestUniformTraffic:
    def test_destinations_cover_all_ports(self):
        pattern = UniformTraffic(16)
        rng = RandomStream(1, "t")
        seen = {pattern.destination(0, rng) for _ in range(2000)}
        assert seen == set(range(16))

    def test_roughly_uniform(self):
        pattern = UniformTraffic(4)
        rng = RandomStream(2, "t")
        counts = [0] * 4
        for _ in range(8000):
            counts[pattern.destination(0, rng)] += 1
        for count in counts:
            assert 0.2 < count / 8000 < 0.3


class TestHotSpotTraffic:
    def test_hot_port_receives_excess(self):
        pattern = HotSpotTraffic(64, hot_fraction=0.05, hot_port=7)
        rng = RandomStream(3, "t")
        draws = [pattern.destination(0, rng) for _ in range(20000)]
        hot_share = draws.count(7) / len(draws)
        # 5% redirected + 1/64 uniform background ~ 6.5%
        assert 0.05 < hot_share < 0.09

    def test_zero_fraction_degenerates_to_uniform(self):
        pattern = HotSpotTraffic(8, hot_fraction=0.0)
        rng = RandomStream(4, "t")
        seen = {pattern.destination(0, rng) for _ in range(500)}
        assert len(seen) == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HotSpotTraffic(8, hot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            HotSpotTraffic(8, hot_port=8)


class TestPermutationTraffic:
    def test_fixed_mapping(self):
        pattern = PermutationTraffic(4, mapping=[2, 3, 0, 1])
        rng = RandomStream(5, "t")
        assert pattern.destination(0, rng) == 2
        assert pattern.destination(3, rng) == 1

    def test_default_is_reversal(self):
        pattern = PermutationTraffic(4)
        rng = RandomStream(5, "t")
        assert pattern.destination(0, rng) == 3

    def test_non_permutation_rejected(self):
        with pytest.raises(ConfigurationError):
            PermutationTraffic(4, mapping=[0, 0, 1, 2])


class TestMakeTraffic:
    def test_by_name(self):
        assert make_traffic("uniform", 8).kind == "uniform"
        assert make_traffic("hotspot", 8).kind == "hotspot"
        assert make_traffic("permutation", 8).kind == "permutation"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_traffic("bursty", 8)


def make_source(offered=1.0, queue_capacity=4, port=0):
    topology = OmegaTopology(16, 4)
    return Source(
        port=port,
        offered_load=offered,
        topology=topology,
        pattern=UniformTraffic(16),
        factory=PacketFactory(),
        rng=RandomStream(11, f"s{port}"),
        queue_capacity=queue_capacity,
    )


class TestSource:
    def test_generates_at_full_load(self):
        source = make_source(offered=1.0)
        packet = source.maybe_generate(cycle=0)
        assert packet is not None
        assert source.head() is packet
        assert packet.route == source.topology.route(0, packet.destination)

    def test_creation_offset_within_frame(self):
        source = make_source()
        packet = source.maybe_generate(cycle=3)
        assert 3 * 12 <= packet.created_at < 4 * 12

    def test_stalls_when_queue_full(self):
        source = make_source(offered=1.0, queue_capacity=2)
        assert source.maybe_generate(0) is not None
        assert source.maybe_generate(1) is not None
        assert source.maybe_generate(2) is None  # stalled
        assert source.stalled_cycles == 1
        source.dequeue()
        assert source.maybe_generate(3) is not None

    def test_zero_load_generates_nothing(self):
        source = make_source(offered=0.0)
        assert all(source.maybe_generate(c) is None for c in range(50))
        assert source.generated == 0

    def test_generation_rate_approximates_load(self):
        source = make_source(offered=0.3, queue_capacity=0)
        for cycle in range(5000):
            source.maybe_generate(cycle)
            if source.queue:
                source.dequeue()
        assert 0.27 < source.generated / 5000 < 0.33

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_source(offered=1.2)


class TestSink:
    def test_delivery_stamps_clock(self):
        sink = Sink(port=3, cycle_clocks=12)
        factory = PacketFactory()
        packet = factory.create(0, 3, created_at=0)
        sink.deliver(packet, cycle=10)
        assert packet.delivered_at == 11 * 12
        assert sink.received == 1
        assert sink.misrouted == 0

    def test_misrouted_counted(self):
        sink = Sink(port=3)
        packet = PacketFactory().create(0, destination=5)
        sink.deliver(packet, cycle=0)
        assert sink.misrouted == 1
