"""Unit tests for the utility layer: RNG streams, stats, tables, events."""

import math

import pytest

from repro.utils.events import EventQueue
from repro.utils.rng import BatchedBernoulli, RandomStream, spawn_streams
from repro.utils.stats import OnlineStats, RateMeter
from repro.utils.tables import TextTable, format_value


class TestRandomStream:
    def test_same_seed_and_name_reproduces(self):
        a = RandomStream(42, "traffic")
        b = RandomStream(42, "traffic")
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_names_diverge(self):
        a = RandomStream(42, "port1")
        b = RandomStream(42, "port2")
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_similar_names_do_not_collide(self):
        a = RandomStream(42, "port1")
        b = RandomStream(42, "port11")
        assert a.randint(0, 10**9) != b.randint(0, 10**9)

    def test_spawn_is_order_independent(self):
        root = RandomStream(7)
        child_first = root.spawn("x").randint(0, 10**9)
        root2 = RandomStream(7)
        root2.spawn("y")  # creating another child must not disturb "x"
        assert root2.spawn("x").randint(0, 10**9) == child_first

    def test_bernoulli_extremes(self):
        stream = RandomStream(1)
        assert stream.bernoulli(0.0) is False
        assert stream.bernoulli(1.0) is True
        with pytest.raises(ValueError):
            stream.bernoulli(1.5)

    def test_bernoulli_frequency(self):
        stream = RandomStream(3, "freq")
        hits = sum(stream.bernoulli(0.3) for _ in range(20_000))
        assert 0.28 < hits / 20_000 < 0.32

    def test_choice_uniformity_and_empty(self):
        stream = RandomStream(5)
        values = [stream.choice("abc") for _ in range(3_000)]
        for letter in "abc":
            assert 0.25 < values.count(letter) / 3_000 < 0.42
        with pytest.raises(ValueError):
            stream.choice([])

    def test_spawn_streams_helper(self):
        streams = spawn_streams(9, ["a", "b"])
        assert set(streams) == {"a", "b"}
        assert streams["a"].randint(0, 10**9) != streams["b"].randint(0, 10**9)


class TestBatchedBernoulli:
    """The batched coin must be *bit-identical* to scalar bernoulli()."""

    @pytest.mark.parametrize(
        "probability", [0.05, 0.1, 0.2, 0.25, 0.4, 0.6, 0.9]
    )
    def test_interleaved_stream_exactness(self, probability):
        # Mimic a Source: every hit is followed by more draws on the SAME
        # stream, including an odd number of bounded-integer draws (those
        # consume half a 64-bit word and cache the rest, the trickiest
        # case for the rewind).
        def trace(stream, coin_fn):
            events = []
            for _ in range(600):
                if coin_fn():
                    events.append(
                        (
                            stream.bernoulli(0.05),
                            stream.randint(0, 16),
                            stream.randint(0, 12),
                            stream.randint(1, 4),
                        )
                    )
            # The coin guarantees stream exactness at hit points (it may
            # run ahead mid-block after misses — in the simulator nothing
            # else draws between coin flips), so flip until one more hit
            # before checking the tail of the stream.
            while not coin_fn():
                pass
            events.append(tuple(stream.randint(0, 1000) for _ in range(8)))
            return events

        scalar_stream = RandomStream(1234, "coin")
        expected = trace(
            scalar_stream, lambda: scalar_stream.bernoulli(probability)
        )

        batched_stream = RandomStream(1234, "coin")
        coin = BatchedBernoulli(batched_stream, probability)
        assert trace(batched_stream, coin.draw) == expected

    def test_extremes_draw_nothing(self):
        stream = RandomStream(7, "extreme")
        before = stream._gen.bit_generator.state["state"]["state"]
        assert BatchedBernoulli(stream, 0.0).draw() is False
        assert BatchedBernoulli(stream, 1.0).draw() is True
        # Degenerate probabilities must not consume from the stream.
        assert stream._gen.bit_generator.state["state"]["state"] == before

    def test_invalid_arguments_rejected(self):
        stream = RandomStream(7, "bad")
        with pytest.raises(ValueError):
            BatchedBernoulli(stream, 1.5)
        with pytest.raises(ValueError):
            BatchedBernoulli(stream, 0.5, block=0)


class TestOnlineStats:
    def test_empty_stats_are_nan(self):
        stats = OnlineStats()
        assert math.isnan(stats.mean)
        assert math.isnan(stats.variance)

    def test_matches_direct_computation(self):
        samples = [3.0, 1.5, 4.25, -2.0, 0.5, 10.0]
        stats = OnlineStats()
        for sample in samples:
            stats.add(sample)
        mean = sum(samples) / len(samples)
        variance = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
        assert stats.mean == pytest.approx(mean)
        assert stats.variance == pytest.approx(variance)
        assert stats.minimum == -2.0  # repro: noqa=REP004 min/max are copied inputs, not computed
        assert stats.maximum == 10.0  # repro: noqa=REP004 min/max are copied inputs, not computed

    def test_merge_equals_single_pass(self):
        left, right, combined = OnlineStats(), OnlineStats(), OnlineStats()
        for i, sample in enumerate([1.0, 2.0, 5.0, -1.0, 3.5]):
            (left if i < 2 else right).add(sample)
            combined.add(sample)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)

    def test_merge_with_empty(self):
        stats = OnlineStats()
        stats.add(4.0)
        stats.merge(OnlineStats())
        assert stats.count == 1
        empty = OnlineStats()
        empty.merge(stats)
        assert empty.mean == 4.0  # repro: noqa=REP004 merging into empty copies the state verbatim

    def test_mean_half_width_shrinks_with_samples(self):
        import random

        rng = random.Random(4)
        small, large = OnlineStats(), OnlineStats()
        for index in range(10_000):
            value = rng.gauss(10.0, 2.0)
            large.add(value)
            if index < 100:
                small.add(value)
        assert large.mean_half_width() < small.mean_half_width()
        # The true mean lies inside the 95% interval here.
        assert abs(large.mean - 10.0) < 3 * large.mean_half_width()

    def test_mean_half_width_undefined_for_single_sample(self):
        stats = OnlineStats()
        stats.add(1.0)
        assert math.isnan(stats.mean_half_width())


class TestRateMeter:
    def test_rate_normalizes_by_width_and_cycles(self):
        meter = RateMeter(width=4)
        meter.count(6)
        meter.advance(3)
        assert meter.rate == pytest.approx(0.5)

    def test_rate_before_cycles_is_nan(self):
        assert math.isnan(RateMeter().rate)

    def test_reset(self):
        meter = RateMeter()
        meter.count(5)
        meter.advance(5)
        meter.reset()
        assert meter.events == 0 and meter.cycles == 0

    def test_width_validation(self):
        with pytest.raises(ValueError):
            RateMeter(width=0)


class TestTextTable:
    def test_render_aligns_columns(self):
        table = TextTable("Demo", ["a", "long header"])
        table.add_row(["x", 1])
        table.add_row(["longer", 2.5])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "Demo"
        assert "a" in lines[2] and "long header" in lines[2]
        assert all(len(line) == len(lines[2]) for line in lines[4:])

    def test_row_width_mismatch(self):
        table = TextTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_format_value_zero_plus(self):
        assert format_value(0.0, zero_plus=True) == "0"
        assert format_value(0.0001, zero_plus=True) == "0+"
        assert format_value(0.1234, zero_plus=True) == "0.123"
        assert format_value(0.5) == "0.500"
        assert format_value("text") == "text"
        assert format_value(None) == ""


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5, lambda: fired.append("b"))
        queue.schedule(2, lambda: fired.append("a"))
        queue.run()
        assert fired == ["a", "b"]
        assert queue.now == 5

    def test_ties_fire_in_insertion_order(self):
        queue = EventQueue()
        fired = []
        for name in "xyz":
            queue.schedule(1, lambda n=name: fired.append(n))
        queue.run()
        assert fired == ["x", "y", "z"]

    def test_run_until_stops_at_horizon(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1, lambda: fired.append(1))
        queue.schedule(10, lambda: fired.append(10))
        assert queue.run_until(5) == 1
        assert fired == [1]
        assert queue.now == 5
        assert len(queue) == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda: None)

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        fired = []

        def chain():
            fired.append(queue.now)
            if queue.now < 3:
                queue.schedule(1, chain)

        queue.schedule(1, chain)
        queue.run()
        assert fired == [1, 2, 3]
