"""``check_invariants`` must be pure: observe, never mutate.

The model checker (and the optimized-invariants CI lane) calls
``check_invariants`` after every transition; the fault-injection
campaigns call it between every cycle.  If a check ever mutated state —
refreshed a cached register, drained a meter, drew from an RNG — those
callers would change the behaviour they are checking (a heisenbug
factory).  This suite pins the contract by byte-comparing
``snapshot_state()`` (via the cache's canonical JSON encoding) around
repeated invariant checks, for every implementation in the repo:

* the four ``repro.core`` buffers (audited: pure)
* ``repro.core.linkedlist.SlotListManager`` (audited: pure)
* the byte-granularity ``repro.chip.slots.DamqBufferHw`` (audited: pure;
  no ``snapshot_state``, so its manager snapshot + packet records are
  compared instead)
* ``repro.chip.comcobb.ComCoBBChip`` / ``repro.chip.network.ChipNetwork``
  delegate to the above per-port buffers and are covered transitively.

The model-checking hooks ``observable_state()`` and ``canonical_state()``
carry the same purity contract and are pinned the same way.
"""

import pytest

from repro.cache.keys import canonical_json
from repro.chip.slots import DamqBufferHw
from repro.core.linkedlist import SlotListManager
from repro.core.packet import Packet
from repro.core.registry import PAPER_ORDER, make_buffer

CAPACITY = 6
OUTPUTS = 2


def _populated_buffer(kind):
    """A mid-life buffer: pushes, pops and one retirement."""
    buffer = make_buffer(kind, CAPACITY, OUTPUTS)
    for packet_id in range(4):
        destination = packet_id % OUTPUTS
        if buffer.can_accept(destination):
            buffer.push(
                Packet(packet_id=packet_id, source=0, destination=destination),
                destination,
            )
    for destination in range(OUTPUTS):
        if buffer.peek(destination) is not None:
            buffer.pop(destination)
            break
    buffer.retire_slot()
    return buffer


@pytest.mark.parametrize("kind", PAPER_ORDER)
def test_check_invariants_does_not_change_snapshot_bytes(kind):
    buffer = _populated_buffer(kind)
    before = canonical_json(buffer.snapshot_state())
    for _ in range(3):
        buffer.check_invariants()
    assert canonical_json(buffer.snapshot_state()) == before


@pytest.mark.parametrize("kind", PAPER_ORDER)
def test_model_hooks_do_not_change_snapshot_bytes(kind):
    buffer = _populated_buffer(kind)
    before = canonical_json(buffer.snapshot_state())
    first_observable = buffer.observable_state()
    first_canonical = buffer.canonical_state()
    assert canonical_json(buffer.snapshot_state()) == before
    # The hooks are also deterministic: same state, same value.
    assert buffer.observable_state() == first_observable
    assert buffer.canonical_state() == first_canonical


def test_slot_list_manager_invariants_are_pure():
    manager = SlotListManager(num_slots=6, num_lists=2)
    for list_id in (0, 1, 0):
        manager.allocate(list_id)
    manager.release_head(0)
    manager.retire_slot()
    before = canonical_json(manager.snapshot_state())
    for _ in range(3):
        manager.check_invariants()
    assert canonical_json(manager.snapshot_state()) == before
    canonical = manager.canonical_state()
    assert canonical_json(manager.snapshot_state()) == before
    assert manager.canonical_state() == canonical


def test_chip_buffer_invariants_are_pure():
    buffer = DamqBufferHw(12, 5, port_id=0)
    packet = buffer.begin_packet(destination=2, new_header=9)
    buffer.set_length(packet, 20)
    for byte in range(20):
        buffer.write_byte(packet, byte % 256)

    def state():
        return canonical_json(
            {
                "lists": buffer.lists.snapshot_state(),
                "packets": [
                    [
                        hw.destination,
                        hw.length,
                        hw.bytes_written,
                        hw.bytes_read,
                        hw.slots_released,
                        list(hw.slots),
                    ]
                    for queue in buffer.queues
                    for hw in queue
                ],
                "data": [list(row) for row in buffer.data],
            }
        )

    before = state()
    for _ in range(3):
        buffer.check_invariants()
    assert state() == before
