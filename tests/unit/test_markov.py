"""Unit tests for the Markov analysis: chain solver, port models,
arbitration enumeration and the switch chains."""

import math
from fractions import Fraction

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ConfigurationError
from repro.markov.arbitration import service_outcomes
from repro.markov.chain import MarkovChain
from repro.markov.models import SwitchChainBuilder
from repro.markov.ports import (
    DamqPortModel,
    FifoPortModel,
    SafcPortModel,
    SamqPortModel,
    port_model,
)


class TestMarkovChain:
    def test_two_state_chain_steady_state(self):
        # P(0->1)=0.3, P(1->0)=0.6: pi = (2/3, 1/3)
        matrix = sp.csr_matrix(np.array([[0.7, 0.3], [0.6, 0.4]]))
        pi = MarkovChain(matrix).steady_state()
        assert pi == pytest.approx([2 / 3, 1 / 3])

    def test_identity_chain(self):
        """A reducible chain still yields a stationary distribution."""
        pi = MarkovChain(sp.identity(3, format="csr")).steady_state()
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0)

    def test_non_stochastic_rejected(self):
        matrix = sp.csr_matrix(np.array([[0.5, 0.3], [0.6, 0.4]]))
        with pytest.raises(ConfigurationError):
            MarkovChain(matrix)

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            MarkovChain(sp.csr_matrix(np.ones((2, 3)) / 3))

    def test_expected_value(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        chain = MarkovChain(matrix)
        assert chain.expected(np.array([2.0, 4.0])) == pytest.approx(3.0)

    def test_expected_wrong_shape(self):
        chain = MarkovChain(sp.identity(2, format="csr"))
        with pytest.raises(ConfigurationError):
            chain.expected(np.zeros(3))


class TestFifoPortModel:
    def test_state_count(self):
        # sum_{k=0..B} 2^k = 2^{B+1} - 1
        model = FifoPortModel(capacity=3)
        assert len(model.enumerate_states()) == 15

    def test_only_head_visible(self):
        model = FifoPortModel(capacity=4)
        state = (1, 0, 1)
        assert model.queue_lengths(state) == (0, 3)

    def test_serve_pops_head(self):
        model = FifoPortModel(capacity=4)
        assert model.serve((1, 0), 1) == (0,)
        with pytest.raises(ConfigurationError):
            model.serve((1, 0), 0)

    def test_accept_appends(self):
        model = FifoPortModel(capacity=2)
        assert model.accept((0,), 1) == (0, 1)
        assert not model.can_accept((0, 1), 0)

    def test_empty_state_first(self):
        assert FifoPortModel(capacity=2).empty_state() == ()


class TestCountingPortModels:
    def test_damq_shares_pool(self):
        model = DamqPortModel(capacity=3)
        assert model.can_accept((2, 0), 1)
        assert not model.can_accept((2, 1), 0)
        assert len(model.enumerate_states()) == 10  # compositions <= 3

    def test_samq_partitions(self):
        model = SamqPortModel(capacity=4)
        assert model.partition == 2
        assert not model.can_accept((2, 0), 0)
        assert model.can_accept((2, 0), 1)
        assert len(model.enumerate_states()) == 9

    def test_samq_odd_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SamqPortModel(capacity=3)

    def test_safc_serves_per_output(self):
        assert SafcPortModel(capacity=4).max_serves_per_cycle == 2
        assert SamqPortModel(capacity=4).max_serves_per_cycle == 1

    def test_serve_decrements(self):
        model = DamqPortModel(capacity=4)
        assert model.serve((2, 1), 0) == (1, 1)
        with pytest.raises(ConfigurationError):
            model.serve((0, 1), 0)

    def test_port_model_factory(self):
        assert port_model("fifo", 2).kind == "FIFO"
        assert port_model("DAMQ", 2).kind == "DAMQ"
        with pytest.raises(ConfigurationError):
            port_model("nope", 2)


class TestServiceOutcomes:
    def test_empty_switch_serves_nothing(self):
        model = DamqPortModel(capacity=2)
        outcomes = service_outcomes(model, [(0, 0), (0, 0)])
        assert outcomes == [(Fraction(1), ())]

    def test_two_packets_sent_when_possible(self):
        model = DamqPortModel(capacity=2)
        outcomes = service_outcomes(model, [(1, 0), (0, 1)])
        assert len(outcomes) == 1
        _, served = outcomes[0]
        assert set(served) == {(0, 0), (1, 1)}

    def test_symmetric_tie_split_evenly(self):
        """Both inputs head for output 0 only: 50/50 split."""
        model = DamqPortModel(capacity=2)
        outcomes = service_outcomes(model, [(1, 0), (1, 0)])
        assert len(outcomes) == 2
        assert all(weight == Fraction(1, 2) for weight, _ in outcomes)

    def test_longest_queue_preferred_on_conflict(self):
        model = DamqPortModel(capacity=4)
        outcomes = service_outcomes(model, [(3, 0), (1, 0)])
        assert outcomes == [(Fraction(1), ((0, 0),))]

    def test_two_beats_one_even_if_shorter_queues(self):
        """'Send two if at all possible' outranks queue length."""
        model = DamqPortModel(capacity=4)
        # Input 0 has a long queue for output 0; input 1 can only serve 0.
        # Sending two means input 0 takes output 1 (its short queue).
        outcomes = service_outcomes(model, [(3, 1), (1, 0)])
        assert len(outcomes) == 1
        _, served = outcomes[0]
        assert set(served) == {(0, 1), (1, 0)}

    def test_safc_input_serves_both_outputs(self):
        model = SafcPortModel(capacity=4)
        outcomes = service_outcomes(model, [(1, 1), (0, 0)])
        assert len(outcomes) == 1
        _, served = outcomes[0]
        assert set(served) == {(0, 0), (0, 1)}

    def test_samq_input_cannot_serve_both(self):
        model = SamqPortModel(capacity=4)
        outcomes = service_outcomes(model, [(1, 1), (0, 0)])
        for _weight, served in outcomes:
            assert len(served) == 1

    def test_fifo_head_conflict(self):
        model = FifoPortModel(capacity=2)
        outcomes = service_outcomes(model, [(0, 0), (0,)])
        # Both heads target output 0; queue lengths 2 vs 1 -> input 0 wins.
        assert outcomes == [(Fraction(1), ((0, 0),))]

    def test_probabilities_sum_to_one(self):
        model = DamqPortModel(capacity=3)
        for states in ([(2, 1), (1, 1)], [(0, 3), (3, 0)], [(1, 0), (0, 0)]):
            outcomes = service_outcomes(model, states)
            assert sum(weight for weight, _ in outcomes) == 1


class TestSwitchChainBuilder:
    def test_rows_are_stochastic_for_every_rate(self):
        builder = SwitchChainBuilder("DAMQ", slots_per_port=2)
        for rate in (0.0, 0.3, 1.0):
            chain = builder.chain(rate)  # validates row sums internally
            assert chain.num_states == len(builder.states)

    def test_zero_traffic_never_discards(self):
        builder = SwitchChainBuilder("FIFO", slots_per_port=2)
        assert builder.analyze(0.0).discard_probability == 0.0  # repro: noqa=REP004 zero arrivals give an exactly zero discard rate

    def test_flow_conservation(self):
        """Accepted arrivals equal departures in steady state."""
        for kind in ("FIFO", "DAMQ", "SAMQ", "SAFC"):
            builder = SwitchChainBuilder(kind, slots_per_port=2)
            state = builder.analyze(0.8)
            accepted = 0.8 * (1 - state.discard_probability)
            assert state.throughput == pytest.approx(accepted, abs=1e-9), kind

    def test_discard_increases_with_traffic(self):
        builder = SwitchChainBuilder("FIFO", slots_per_port=3)
        probabilities = [
            builder.analyze(rate).discard_probability
            for rate in (0.25, 0.5, 0.75, 0.95)
        ]
        assert probabilities == sorted(probabilities)

    def test_discard_decreases_with_slots(self):
        values = [
            SwitchChainBuilder("DAMQ", slots).analyze(0.9).discard_probability
            for slots in (2, 3, 4)
        ]
        assert values[0] > values[1] > values[2]

    def test_invalid_traffic_rate(self):
        builder = SwitchChainBuilder("DAMQ", 2)
        with pytest.raises(ConfigurationError):
            builder.analyze(1.2)

    def test_mean_occupancy_positive_under_load(self):
        state = SwitchChainBuilder("FIFO", 2).analyze(0.9)
        assert 0 < state.mean_occupancy <= 4
