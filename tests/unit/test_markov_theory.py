"""Tests anchoring the exact chains to published queueing theory."""

import pytest

from repro.errors import ConfigurationError
from repro.markov.analysis import analyze_switch
from repro.markov.theory import (
    HOL_ASYMPTOTE,
    HOL_SATURATION,
    hol_saturation_throughput,
)


class TestConstants:
    def test_table_values(self):
        assert hol_saturation_throughput(2) == 0.75  # repro: noqa=REP004 closed-form value is exactly representable
        assert hol_saturation_throughput(4) == pytest.approx(0.6553)

    def test_asymptote_for_large_switches(self):
        assert hol_saturation_throughput(100) == HOL_ASYMPTOTE
        assert HOL_ASYMPTOTE == pytest.approx(0.5858, abs=1e-4)

    def test_monotone_decreasing(self):
        values = [HOL_SATURATION[n] for n in sorted(HOL_SATURATION)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hol_saturation_throughput(0)


class TestChainsMatchTheory:
    def test_fifo_throughput_pinned_at_hol_limit(self):
        """A saturated FIFO input switch transmits at exactly Karol's
        0.75 for a 2x2 switch, independent of buffer depth (extra depth
        only changes what is discarded, not what the heads can move)."""
        for slots in (2, 4, 6):
            state = analyze_switch("FIFO", slots, traffic_rate=1.0)
            assert state.throughput == pytest.approx(0.75, abs=1e-9), slots

    def test_damq_exceeds_hol_limit(self):
        """No head-of-line blocking: DAMQ sails past the FIFO ceiling."""
        throughput = analyze_switch("DAMQ", 6, traffic_rate=1.0).throughput
        assert throughput > hol_saturation_throughput(2) + 0.05

    def test_safc_also_exceeds_hol_limit(self):
        throughput = analyze_switch("SAFC", 6, traffic_rate=1.0).throughput
        assert throughput > hol_saturation_throughput(2)

    def test_fifo_discard_at_saturation_follows_limit(self):
        """discard ≈ 1 - (HOL limit / arrival rate) at full load."""
        state = analyze_switch("FIFO", 6, traffic_rate=0.99)
        expected = 1.0 - 0.75 / 0.99
        assert state.discard_probability == pytest.approx(expected, abs=0.01)
