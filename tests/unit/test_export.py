"""Unit tests for the CSV export of experiment tables."""

import csv

from repro.experiments.export import export_result, export_table, slugify
from repro.experiments.report import ExperimentResult
from repro.utils.tables import TextTable


def make_table(title="My Table: results (50%)"):
    table = TextTable(title, ["name", "value"])
    table.add_row(["alpha", 1])
    table.add_row(["beta", 2.5])
    return table


class TestSlugify:
    def test_lowercases_and_strips_punctuation(self):
        assert slugify("My Table: results (50%)") == "my-table-results-50"

    def test_never_empty(self):
        assert slugify("!!!") == "table"

    def test_truncates_long_titles(self):
        assert len(slugify("x" * 200)) <= 60


class TestExportTable:
    def test_round_trip(self, tmp_path):
        path = export_table(make_table(), tmp_path / "out.csv")
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows == [["name", "value"], ["alpha", "1"], ["beta", "2.5"]]

    def test_creates_directories(self, tmp_path):
        path = export_table(make_table(), tmp_path / "a" / "b" / "out.csv")
        assert path.exists()


class TestExportResult:
    def test_one_file_per_table(self, tmp_path):
        result = ExperimentResult(
            experiment_id="table9", title="T", paper_reference="T9"
        )
        result.tables.append(make_table("first"))
        result.tables.append(make_table("second"))
        written = export_result(result, tmp_path)
        assert len(written) == 2
        assert written[0].name == "table9_0_first.csv"
        assert written[1].name == "table9_1_second.csv"
        assert all(path.exists() for path in written)

    def test_no_tables_writes_nothing(self, tmp_path):
        result = ExperimentResult(
            experiment_id="empty", title="E", paper_reference="none"
        )
        assert export_result(result, tmp_path) == []
        assert list(tmp_path.iterdir()) == []

    def test_accepts_string_directory(self, tmp_path):
        result = ExperimentResult(
            experiment_id="t", title="T", paper_reference="T"
        )
        result.tables.append(make_table("only"))
        written = export_result(result, str(tmp_path / "sub"))
        assert written[0].exists()

    def test_csv_matches_rendered_table_cells(self, tmp_path):
        table = make_table("cells")
        path = export_table(table, tmp_path / "cells.csv")
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == table.columns
        assert rows[1:] == table.rows
