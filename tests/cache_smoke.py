#!/usr/bin/env python
"""CI smoke check for the result cache and checkpoint/resume.

Two end-to-end properties, checked on a real experiment:

1. **Warm cache**: running the same experiment twice against one cache
   performs *zero* simulations the second time and prints a
   byte-identical report.
2. **Kill/resume**: an experiment killed at a mid-simulation checkpoint
   (via the ``REPRO_TEST_EXIT_AT_CHECKPOINT`` hook, which ``os._exit``\\ s
   the process the moment a checkpoint hits that cycle) and then re-run
   resumes from the checkpoint file and prints a report byte-identical
   to an uninterrupted run.

Usage::

    PYTHONPATH=src python tests/cache_smoke.py [experiment]

Runs ``figure3`` at quick fidelity by default; exits non-zero with a
diagnostic on the first violated property.  No pytest dependency — this
is a plain script so the CI job (and a curious developer) can run it
directly.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Checkpoint cadence and kill cycle for the quick windows (200 warmup +
#: 900 measure): cycle 500 is the second checkpoint, mid-simulation.
CHECKPOINT_EVERY = 250
KILL_AT_CYCLE = 500


def fail(message: str) -> None:
    print(f"cache-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def cli_env(**extra: str) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(extra)
    return env


def run_cli(arguments: list[str], env: dict[str, str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *arguments],
        env=env,
        capture_output=True,
        text=True,
        timeout=900,
        cwd=REPO_ROOT,
    )


def report_of(stdout: str) -> str:
    """The experiment report with the (run-dependent) timing line removed."""
    kept = [
        line
        for line in stdout.splitlines()
        if not (line.startswith("(") and line.endswith("s)"))
    ]
    return "\n".join(kept)


def check_warm_cache(experiment: str, scratch: Path) -> None:
    from repro.cache.store import ResultCache
    from repro.experiments.runner import run_experiment
    from repro.perf.parallel import reset_simulated_cycles, simulated_cycles

    cache = ResultCache(scratch / "cache")
    cold = run_experiment(experiment, quick=True, cache=cache)
    reset_simulated_cycles()
    warm = run_experiment(experiment, quick=True, cache=cache)
    if simulated_cycles() != 0:
        fail(
            f"warm re-run of {experiment} simulated "
            f"{simulated_cycles()} cycles; expected 0 (all cache hits)"
        )
    if cold.render() != warm.render():
        fail(f"warm re-run of {experiment} printed a different report")
    print(f"cache-smoke: warm {experiment} re-run: 0 simulations, "
          "byte-identical report")


def check_kill_resume(experiment: str, scratch: Path) -> None:
    cache_dir = scratch / "resume-cache"
    arguments = [
        experiment,
        "--quick",
        "--cache",
        "--cache-dir",
        str(cache_dir),
        "--checkpoint-every",
        str(CHECKPOINT_EVERY),
    ]

    reference = run_cli([experiment, "--quick"], cli_env())
    if reference.returncode != 0:
        fail(f"reference run failed:\n{reference.stderr}")

    killed = run_cli(
        arguments,
        cli_env(REPRO_TEST_EXIT_AT_CHECKPOINT=str(KILL_AT_CYCLE)),
    )
    if killed.returncode != 23:
        fail(
            f"killed run exited {killed.returncode}; expected the "
            f"checkpoint-exit code 23\n{killed.stderr}"
        )
    checkpoints = list((cache_dir / "checkpoints").glob("*.ckpt"))
    if not checkpoints:
        fail("killed run left no checkpoint file to resume from")

    resumed = run_cli(arguments, cli_env())
    if resumed.returncode != 0:
        fail(f"resumed run failed:\n{resumed.stderr}")
    if report_of(resumed.stdout) != report_of(reference.stdout):
        fail(
            f"resumed {experiment} report differs from the "
            "uninterrupted run"
        )
    print(f"cache-smoke: {experiment} killed at cycle {KILL_AT_CYCLE}, "
          "resumed byte-identically")


def main(argv: list[str]) -> int:
    experiment = argv[1] if len(argv) > 1 else "figure3"
    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as tmp:
        scratch = Path(tmp)
        check_warm_cache(experiment, scratch)
        check_kill_resume(experiment, scratch)
    print("cache-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
