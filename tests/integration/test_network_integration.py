"""Cross-module integration tests of the Omega-network simulator."""

import pytest

from repro.network import NetworkConfig
from repro.network.simulator import OmegaNetworkSimulator
from repro.switch.flow_control import Protocol


class TestBlockingNeverOverflows:
    @pytest.mark.parametrize("kind", ["FIFO", "SAMQ", "SAFC", "DAMQ"])
    def test_occupancy_never_exceeds_capacity(self, kind):
        config = NetworkConfig(
            num_ports=16,
            buffer_kind=kind,
            slots_per_buffer=4,
            protocol=Protocol.BLOCKING,
            offered_load=1.0,
            seed=31,
        )
        simulator = OmegaNetworkSimulator(config)
        for _ in range(300):
            simulator.step()
            for row in simulator.switches:
                for switch in row:
                    for buffer in switch.buffers:
                        assert buffer.occupancy <= buffer.capacity

    def test_damq_structural_invariants_under_saturation(self):
        config = NetworkConfig(
            num_ports=16,
            buffer_kind="DAMQ",
            offered_load=1.0,
            seed=77,
        )
        simulator = OmegaNetworkSimulator(config)
        for cycle in range(200):
            simulator.step()
            if cycle % 20 == 0:
                for row in simulator.switches:
                    for switch in row:
                        for buffer in switch.buffers:
                            buffer.check_invariants()


class TestPacketSizesExtension:
    """Variable-length packets — the paper's stated future direction."""

    def test_two_slot_packets_flow_end_to_end(self):
        config = NetworkConfig(
            num_ports=16,
            buffer_kind="DAMQ",
            slots_per_buffer=4,
            offered_load=0.3,
            packet_size=2,
            seed=13,
        )
        simulator = OmegaNetworkSimulator(config)
        result = simulator.run(warmup_cycles=50, measure_cycles=300)
        assert result.meters.delivered > 0
        assert all(sink.misrouted == 0 for sink in simulator.sinks)

    def test_damq_gains_more_than_fifo_with_variable_packets(self):
        """The DAMQ's dynamic allocation should cope better with 2-slot
        packets (more fragmentation pressure on static partitions)."""
        results = {}
        for kind in ("FIFO", "DAMQ"):
            config = NetworkConfig(
                num_ports=16,
                buffer_kind=kind,
                slots_per_buffer=4,
                offered_load=1.0,
                packet_size=2,
                seed=13,
            )
            results[kind] = (
                OmegaNetworkSimulator(config)
                .run(warmup_cycles=100, measure_cycles=600)
                .delivered_throughput
            )
        assert results["DAMQ"] > results["FIFO"]


class TestArbiterEffects:
    def test_smart_arbitration_not_worse_than_dumb_at_saturation(self):
        throughput = {}
        for arbiter in ("smart", "dumb"):
            config = NetworkConfig(
                num_ports=16,
                buffer_kind="DAMQ",
                offered_load=1.0,
                arbiter_kind=arbiter,
                seed=99,
            )
            throughput[arbiter] = (
                OmegaNetworkSimulator(config)
                .run(warmup_cycles=100, measure_cycles=600)
                .delivered_throughput
            )
        assert throughput["smart"] >= throughput["dumb"] - 0.03


class TestHotspotMechanics:
    def test_hot_sink_receives_most_traffic(self):
        config = NetworkConfig(
            num_ports=16,
            buffer_kind="DAMQ",
            traffic_kind="hotspot",
            hot_fraction=0.3,
            hot_port=5,
            offered_load=0.3,
            seed=3,
        )
        simulator = OmegaNetworkSimulator(config)
        for _ in range(400):
            simulator.step()
        received = [sink.received for sink in simulator.sinks]
        assert received[5] == max(received)
        assert received[5] > 3 * (sum(received) - received[5]) / 15

    def test_sources_stall_under_tree_saturation(self):
        config = NetworkConfig(
            num_ports=16,
            buffer_kind="DAMQ",
            traffic_kind="hotspot",
            hot_fraction=0.25,
            offered_load=0.9,
            seed=4,
        )
        simulator = OmegaNetworkSimulator(config)
        for _ in range(500):
            simulator.step()
        stalls = sum(source.stalled_cycles for source in simulator.sources)
        assert stalls > 0  # backpressure reached the generators
