"""Kill/resume integration: interrupted runs finish bit-identically.

The simulator exposes a test-only kill switch: when the environment
variable ``REPRO_TEST_EXIT_AT_CHECKPOINT`` names a cycle, ``run`` calls
``os._exit`` immediately after writing the checkpoint at that cycle —
the hardest kind of death (no cleanup, no atexit, mid-experiment).
These tests kill real processes with it and assert the resumed runs
reproduce the uninterrupted results bit for bit.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cache.runtime import CacheContext, activate
from repro.cache.store import ResultCache
from repro.network.simulator import (
    CHECKPOINT_EXIT_CODE,
    CHECKPOINT_EXIT_ENV,
    NetworkConfig,
    load_checkpoint,
    resume_run,
    simulate,
)
from repro.perf.parallel import (
    parallel_simulate,
    reset_simulated_cycles,
    simulated_cycles,
)

WARMUP, MEASURE, EVERY, KILL_AT = 100, 300, 50, 200

#: The config the killed child process simulates (kept in lockstep with
#: _CHILD_SCRIPT below).
CHILD_CONFIG = dict(
    num_ports=16,
    radix=4,
    buffer_kind="DAMQ",
    offered_load=0.6,
    seed=42,
)

_CHILD_SCRIPT = """\
import sys
from repro.network.simulator import NetworkConfig, simulate

config = NetworkConfig(
    num_ports=16, radix=4, buffer_kind="DAMQ", offered_load=0.6, seed=42
)
simulate(
    config,
    warmup_cycles=100,
    measure_cycles=300,
    checkpoint_every=50,
    checkpoint_path=sys.argv[1],
)
"""


def run_child(checkpoint: Path, *, sanitize: bool = False) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    env[CHECKPOINT_EXIT_ENV] = str(KILL_AT)
    env["REPRO_SANITIZE"] = "1" if sanitize else "0"
    process = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(checkpoint)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    return process.returncode


def meters_of(result) -> dict:
    return result.meters.snapshot_state()


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted run every kill/resume variant must reproduce."""
    return simulate(NetworkConfig(**CHILD_CONFIG), WARMUP, MEASURE)


def test_killed_process_resumes_bit_identically(tmp_path, reference):
    checkpoint = tmp_path / "killed.ckpt"
    assert run_child(checkpoint) == CHECKPOINT_EXIT_CODE
    assert load_checkpoint(checkpoint)["state"]["cycle"] == KILL_AT

    resumed = resume_run(checkpoint)
    assert meters_of(resumed) == meters_of(reference)


def test_killed_sanitized_process_resumes_bit_identically(tmp_path, reference):
    checkpoint = tmp_path / "killed-sanitized.ckpt"
    assert run_child(checkpoint, sanitize=True) == CHECKPOINT_EXIT_CODE

    resumed = resume_run(checkpoint, sanitize=True)
    assert meters_of(resumed) == meters_of(reference)


def test_plain_checkpoint_resumes_under_sanitizer(tmp_path, reference):
    """Snapshots are sanitizer-agnostic in both directions."""
    checkpoint = tmp_path / "killed-plain.ckpt"
    assert run_child(checkpoint) == CHECKPOINT_EXIT_CODE

    resumed = resume_run(checkpoint, sanitize=True)
    assert meters_of(resumed) == meters_of(reference)


GRID = [
    NetworkConfig(num_ports=16, radix=4, offered_load=load, seed=seed)
    for load, seed in [(0.4, 1), (0.7, 2)]
]


def test_checkpointed_parallel_run_matches_plain(tmp_path):
    reference = [simulate(config, WARMUP, MEASURE) for config in GRID]
    context = CacheContext(
        None, "ckpt-test", checkpoint_every=EVERY, checkpoint_dir=tmp_path
    )
    with activate(context):
        results = parallel_simulate(GRID, WARMUP, MEASURE, jobs=2)
    for got, want in zip(results, reference):
        assert meters_of(got) == meters_of(want)
    # Checkpoints are scratch state; completed tasks remove theirs.
    assert list(tmp_path.glob("*.ckpt")) == []


def test_dead_workers_auto_resume_from_checkpoints(tmp_path, monkeypatch):
    reference = [simulate(config, WARMUP, MEASURE) for config in GRID]
    cache = ResultCache(tmp_path / "cache")
    context = CacheContext(
        cache,
        "kill-test",
        checkpoint_every=EVERY,
        checkpoint_dir=tmp_path / "checkpoints",
    )
    # Every worker kills itself at its first KILL_AT checkpoint; the
    # replacement pool resumes each task from the dead worker's file
    # (which is past KILL_AT, so the resumed run survives the env).
    monkeypatch.setenv(CHECKPOINT_EXIT_ENV, str(KILL_AT))
    reset_simulated_cycles()
    with activate(context):
        results = parallel_simulate(GRID, WARMUP, MEASURE, jobs=2)
    for got, want in zip(results, reference):
        assert meters_of(got) == meters_of(want)

    # The recovered results were cached; a warm pass runs no simulation.
    monkeypatch.delenv(CHECKPOINT_EXIT_ENV)
    reset_simulated_cycles()
    with activate(context):
        warm = parallel_simulate(GRID, WARMUP, MEASURE, jobs=2)
    assert simulated_cycles() == 0
    for got, want in zip(warm, reference):
        assert meters_of(got) == meters_of(want)
