"""Integration stress tests for the chip model: flow control, contention,
many-node topologies."""

import pytest

from repro.chip import ChipNetwork, TraceRecorder
from repro.chip.comcobb import PROCESSOR_PORT


def build_ring(size: int, num_slots: int = 12) -> tuple[ChipNetwork, list[str]]:
    network = ChipNetwork(num_slots=num_slots)
    names = [f"n{i}" for i in range(size)]
    for name in names:
        network.add_node(name)
    for index in range(size):
        network.connect(names[index], 0, names[(index + 1) % size], 1)
    return network, names


class TestFlowControlUnderPressure:
    def test_small_buffers_with_converging_traffic(self):
        """Three senders into one destination, minimum-size buffers: flow
        control must prevent any allocation failure (which would raise)."""
        network = ChipNetwork(num_slots=8)
        for name in ("s1", "s2", "s3", "hub", "sink"):
            network.add_node(name)
        network.connect("s1", 0, "hub", 0)
        network.connect("s2", 0, "hub", 1)
        network.connect("s3", 0, "hub", 2)
        network.connect("hub", 3, "sink", 0)
        circuits = [
            network.open_circuit([sender, "hub", "sink"])
            for sender in ("s1", "s2", "s3")
        ]
        expected_bytes = 0
        for index, circuit in enumerate(circuits):
            for message in range(4):
                payload = bytes([index * 40 + message]) * (50 + 30 * index)
                network.send(circuit, payload)
                expected_bytes += len(payload)
        network.run_until_idle(max_cycles=50_000)
        received = network.nodes["sink"].host.received_messages
        assert len(received) == 12
        assert sum(len(m.payload) for m in received) == expected_bytes
        network.check_invariants()

    def test_stop_line_actually_asserts(self):
        """With tiny buffers and a blocked downstream, stop must assert."""
        network = ChipNetwork(num_slots=8)
        network.add_node("a")
        network.add_node("b")
        network.connect("a", 0, "b", 0)
        circuit = network.open_circuit(["a", "b"])
        # Enough traffic to fill b's input buffer faster than its
        # processor interface drains it... PI drains at wire speed, so
        # instead fill using a long burst and check stop was seen at least
        # once at the source adapter OR traffic simply flowed.  We assert
        # the invariant that no allocation ever failed (no exception) and
        # delivery is complete.
        for _ in range(10):
            network.send(circuit, b"\xaa" * 500)
        network.run_until_idle(max_cycles=100_000)
        received = network.nodes["b"].host.received_messages
        assert len(received) == 10
        assert all(m.payload == b"\xaa" * 500 for m in received)


class TestRingAllToAll:
    @staticmethod
    def shortest_path(names: list[str], source: int, destination: int) -> list[str]:
        size = len(names)
        forward = (destination - source) % size
        step = 1 if forward <= size - forward else -1
        path = [names[source]]
        position = source
        while position != destination:
            position = (position + step) % size
            path.append(names[position])
        return path

    @pytest.mark.parametrize("size", [3, 5])
    def test_every_pair_communicates(self, size):
        """All ordered pairs over shortest ring paths (both directions are
        used, so no cyclic channel dependency arises — see the deadlock
        test below for what happens otherwise)."""
        network, names = build_ring(size)
        circuits = {}
        for source in range(size):
            for destination in range(size):
                if source != destination:
                    circuits[(source, destination)] = network.open_circuit(
                        self.shortest_path(names, source, destination)
                    )
        for (source, destination), circuit in circuits.items():
            network.send(circuit, bytes([source * 16 + destination]) * 64)
        network.run_until_idle(max_cycles=100_000)
        for (source, destination), circuit in circuits.items():
            received = [
                message.payload
                for message in network.nodes[names[destination]].host.received_messages
                if message.delivery_tag == circuit.delivery_tag
            ]
            assert received == [bytes([source * 16 + destination]) * 64]

    def test_unidirectional_full_ring_traffic_can_deadlock(self):
        """Documented property: circuits that all traverse the full ring in
        one direction form a cyclic buffer dependency, and packet-level
        blocking flow control then deadlocks once every buffer on the
        cycle fills.  (The paper's flow control does not address network-
        level deadlock; real systems avoid the cyclic dependency through
        routing restrictions, as the shortest-path test above does.)"""
        from repro.errors import SimulationError

        network, names = build_ring(3)
        circuits = [
            network.open_circuit([names[(s + k) % 3] for k in range(3)])
            for s in range(3)
        ]
        for source, circuit in enumerate(circuits):
            network.send(circuit, bytes([source]) * 64)
        with pytest.raises(SimulationError):
            network.run_until_idle(max_cycles=3000)
        # Deadlocked, not corrupted: every structural invariant still holds.
        network.check_invariants()

    def test_long_relay_chain_preserves_order_and_data(self):
        network, names = build_ring(6)
        circuit = network.open_circuit(names)  # five hops around
        payloads = [bytes([i]) * (20 + i * 17) for i in range(8)]
        for payload in payloads:
            network.send(circuit, payload)
        network.run_until_idle(max_cycles=100_000)
        received = [
            message.payload
            for message in network.nodes[names[-1]].host.received_messages
        ]
        assert received == payloads


class TestConcurrentPortActivity:
    def test_all_four_ports_active_simultaneously(self):
        """One hub exchanging traffic with four neighbours at once —
        'all nine ports can be active at the same time'."""
        network = ChipNetwork()
        network.add_node("hub")
        spokes = [f"spoke{i}" for i in range(4)]
        for index, spoke in enumerate(spokes):
            network.add_node(spoke)
            network.connect("hub", index, spoke, 0)
        outbound = {
            spoke: network.open_circuit(["hub", spoke]) for spoke in spokes
        }
        inbound = {
            spoke: network.open_circuit([spoke, "hub"]) for spoke in spokes
        }
        for index, spoke in enumerate(spokes):
            network.send(outbound[spoke], bytes([index]) * 100)
            network.send(inbound[spoke], bytes([index + 100]) * 100)
        network.run_until_idle(max_cycles=50_000)
        for index, spoke in enumerate(spokes):
            assert (
                network.nodes[spoke].host.received_messages[0].payload
                == bytes([index]) * 100
            )
        hub_received = {
            message.payload[0]
            for message in network.nodes["hub"].host.received_messages
        }
        assert hub_received == {100, 101, 102, 103}
        network.check_invariants()


class TestTraceCompleteness:
    def test_trace_records_every_pipeline_stage(self):
        trace = TraceRecorder()
        network = ChipNetwork(trace=trace)
        network.add_node("x")
        network.add_node("y")
        network.connect("x", 0, "y", 0)
        circuit = network.open_circuit(["x", "y"])
        network.send(circuit, b"abc")
        network.run_until_idle()
        actions = " | ".join(event.action for event in trace.events)
        for expected in (
            "start bit detected",
            "routed to output",
            "latched into write counter",
            "granted buffer",
            "start bit driven",
            "loaded into read counter",
            "EOP",
            "turnaround 4 cycles",
            "message of 3 bytes delivered",
        ):
            assert expected in actions, f"missing trace stage: {expected}"
