"""Integration tests asserting the paper's qualitative claims.

These run the real 64-port Omega network (shortened measurement windows)
and the exact Markov analysis, and check the *shape* results of the
evaluation section: orderings, ratios and saturation behaviour.  Absolute
numbers are asserted only loosely, since the windows are short.
"""

import pytest

from repro.markov import discard_probability
from repro.network import NetworkConfig, measure_saturation, simulate
from repro.switch.flow_control import Protocol

WARMUP = 300
MEASURE = 1200

BASE = NetworkConfig(
    slots_per_buffer=4,
    protocol=Protocol.BLOCKING,
    arbiter_kind="smart",
    traffic_kind="uniform",
    seed=2024,
)


@pytest.fixture(scope="module")
def saturation():
    """Saturation points of all four architectures (computed once)."""
    return {
        kind: measure_saturation(
            BASE.with_overrides(buffer_kind=kind), WARMUP, MEASURE
        )
        for kind in ("FIFO", "SAMQ", "SAFC", "DAMQ")
    }


class TestTable4Claims:
    def test_damq_saturation_at_least_30_percent_above_fifo(self, saturation):
        """Paper: 40% higher maximum throughput for DAMQ over FIFO."""
        ratio = (
            saturation["DAMQ"].saturation_throughput
            / saturation["FIFO"].saturation_throughput
        )
        assert ratio > 1.30

    def test_saturation_ordering_matches_paper(self, saturation):
        """FIFO < SAMQ, SAFC < DAMQ (Table 4's ordering)."""
        fifo = saturation["FIFO"].saturation_throughput
        samq = saturation["SAMQ"].saturation_throughput
        safc = saturation["SAFC"].saturation_throughput
        damq = saturation["DAMQ"].saturation_throughput
        assert fifo < samq + 0.02  # FIFO lowest (small tolerance)
        assert samq <= safc + 0.02  # full connection helps a little
        assert damq == max(fifo, samq, safc, damq)

    def test_fifo_saturates_near_half_capacity(self, saturation):
        """Paper: FIFO with 4 slots saturates at ~0.51."""
        assert 0.42 < saturation["FIFO"].saturation_throughput < 0.60

    def test_below_saturation_latencies_nearly_equal(self):
        """Paper: at <=0.40 the buffer type is not a significant factor."""
        latencies = {
            kind: simulate(
                BASE.with_overrides(buffer_kind=kind, offered_load=0.25),
                WARMUP,
                MEASURE,
            ).average_latency
            for kind in ("FIFO", "DAMQ", "SAMQ", "SAFC")
        }
        spread = max(latencies.values()) - min(latencies.values())
        assert spread < 8.0, latencies  # within a few cycles of each other

    def test_unloaded_latency_close_to_paper_baseline(self):
        """~41.5 cycles at 0.25 load (3 hops x 12 + frame alignment)."""
        latency = simulate(
            BASE.with_overrides(buffer_kind="DAMQ", offered_load=0.25),
            WARMUP,
            MEASURE,
        ).average_latency
        # Our frame-alignment accounting sits a few cycles above the
        # paper's 41.5 (see DESIGN.md section 5); the claim here is that
        # unloaded latency is ~3 hops x 12 cycles plus small queueing.
        assert 38.0 < latency < 54.0

    def test_fifo_latency_blows_up_at_half_load(self):
        """At 0.50, FIFO is saturated while DAMQ is comfortable."""
        fifo = simulate(
            BASE.with_overrides(buffer_kind="FIFO", offered_load=0.50),
            WARMUP,
            MEASURE,
        ).average_latency
        damq = simulate(
            BASE.with_overrides(buffer_kind="DAMQ", offered_load=0.50),
            WARMUP,
            MEASURE,
        ).average_latency
        assert fifo > damq * 1.25


class TestTable5Claims:
    def test_damq_3_slots_beats_fifo_8_slots(self):
        """Paper: control beats capacity — DAMQ-3 saturates above FIFO-8."""
        damq3 = measure_saturation(
            BASE.with_overrides(buffer_kind="DAMQ", slots_per_buffer=3),
            WARMUP,
            MEASURE,
        ).saturation_throughput
        fifo8 = measure_saturation(
            BASE.with_overrides(buffer_kind="FIFO", slots_per_buffer=8),
            WARMUP,
            MEASURE,
        ).saturation_throughput
        assert damq3 > fifo8

    def test_extra_damq_slots_move_saturation_little(self):
        """Paper: DAMQ's saturation barely moves from 3 to 8 slots."""
        damq3 = measure_saturation(
            BASE.with_overrides(buffer_kind="DAMQ", slots_per_buffer=3),
            WARMUP,
            MEASURE,
        ).saturation_throughput
        damq8 = measure_saturation(
            BASE.with_overrides(buffer_kind="DAMQ", slots_per_buffer=8),
            WARMUP,
            MEASURE,
        ).saturation_throughput
        # The paper reports 0.63 -> 0.74 for 3 -> 8 slots; our model's gap
        # is slightly larger but the claim (diminishing returns vs the
        # FIFO->DAMQ architectural jump) holds.
        assert damq8 - damq3 < 0.20
        assert damq8 >= damq3 - 0.03


class TestTable6Claims:
    @pytest.fixture(scope="class")
    def hot_saturation(self):
        hot = BASE.with_overrides(traffic_kind="hotspot", hot_fraction=0.05)
        return {
            kind: measure_saturation(
                hot.with_overrides(buffer_kind=kind), WARMUP, MEASURE
            )
            for kind in ("FIFO", "SAMQ", "SAFC", "DAMQ")
        }

    def test_all_architectures_tree_saturate_together(self, hot_saturation):
        """Paper: every buffer type saturates just under 0.25."""
        throughputs = [
            result.saturation_throughput for result in hot_saturation.values()
        ]
        assert max(throughputs) - min(throughputs) < 0.04
        for value in throughputs:
            assert 0.15 < value < 0.30

    def test_hotspot_saturation_far_below_uniform(self, hot_saturation, saturation):
        for kind in ("FIFO", "DAMQ"):
            assert (
                hot_saturation[kind].saturation_throughput
                < saturation[kind].saturation_throughput - 0.15
            )


class TestTable3Claims:
    def test_damq_discards_least(self):
        discard = {}
        for kind in ("FIFO", "SAMQ", "SAFC", "DAMQ"):
            discard[kind] = simulate(
                BASE.with_overrides(
                    buffer_kind=kind,
                    protocol=Protocol.DISCARDING,
                    offered_load=0.5,
                ),
                WARMUP,
                MEASURE,
            ).discard_percent
        assert discard["DAMQ"] == min(discard.values())
        assert discard["DAMQ"] < discard["FIFO"] / 3

    def test_dumb_and_smart_discard_similarly(self):
        results = {}
        for arbiter in ("smart", "dumb"):
            results[arbiter] = simulate(
                BASE.with_overrides(
                    buffer_kind="FIFO",
                    protocol=Protocol.DISCARDING,
                    offered_load=0.5,
                    arbiter_kind=arbiter,
                ),
                WARMUP,
                MEASURE,
            ).discard_percent
        assert abs(results["smart"] - results["dumb"]) < 2.0


class TestTable2Claims:
    """Quantitative checks against published Table 2 cells."""

    def test_fifo_converges_to_hol_limit_at_99(self):
        """Paper: 0.242 for every FIFO size at 99% traffic."""
        for slots in (3, 4):
            assert discard_probability("FIFO", slots, 0.99) == pytest.approx(
                0.242, abs=0.01
            )

    def test_damq_matches_published_row(self):
        """DAMQ with 2 slots: 0.022 / 0.070 / 0.119 at 75/90/99%."""
        assert discard_probability("DAMQ", 2, 0.75) == pytest.approx(0.022, abs=0.004)
        assert discard_probability("DAMQ", 2, 0.90) == pytest.approx(0.070, abs=0.006)
        assert discard_probability("DAMQ", 2, 0.99) == pytest.approx(0.119, abs=0.008)

    def test_damq_3_slots_no_worse_than_fifo_6(self):
        """Paper's headline for Table 2."""
        for rate in (0.75, 0.85, 0.95, 0.99):
            assert discard_probability("DAMQ", 3, rate) <= discard_probability(
                "FIFO", 6, rate
            ) + 1e-9

    def test_fifo_beats_static_buffers_at_low_load_two_slots(self):
        """Paper: at light traffic FIFO-2 discards less than SAMQ/SAFC-2."""
        fifo = discard_probability("FIFO", 2, 0.25)
        assert fifo < discard_probability("SAMQ", 2, 0.25)
        assert fifo < discard_probability("SAFC", 2, 0.25)

    def test_high_load_ordering_damq_best(self):
        """At 95%, 4 slots: DAMQ < SAFC <= SAMQ < FIFO."""
        damq = discard_probability("DAMQ", 4, 0.95)
        safc = discard_probability("SAFC", 4, 0.95)
        samq = discard_probability("SAMQ", 4, 0.95)
        fifo = discard_probability("FIFO", 4, 0.95)
        assert damq < safc <= samq < fifo

    def test_samq_and_safc_close_below_80(self):
        """Paper: full connection adds little until traffic is heavy."""
        for rate in (0.5, 0.75, 0.8):
            samq = discard_probability("SAMQ", 4, rate)
            safc = discard_probability("SAFC", 4, rate)
            assert abs(samq - safc) < 0.01
