"""Bit-level determinism pins for the simulator's hot path.

These two checksums were recorded from the reference implementation (seed
1988, the paper's publication year) and must never drift: every metric —
including the *float accumulation state* of the latency statistics, which
is sensitive to switch iteration order and RNG draw order — is pinned
exactly.  Any hot-path "optimization" that reorders arbitration, buffer
operations, or random draws will trip this test even when the aggregate
curves still look plausible.

If this test fails, the change is NOT a safe refactor.  Do not update the
pinned values unless the simulation semantics were changed on purpose (and
EXPERIMENTS.md regenerated to match).
"""

import json

import pytest

from repro.network.simulator import (
    NetworkConfig,
    OmegaNetworkSimulator,
    make_simulator,
    restore_simulator,
)
from repro.switch.flow_control import Protocol

#: Simulation window shared by both pins (cycles).
WARMUP, MEASURE = 200, 800

PINNED = {
    "blocking_damq": {
        "config": dict(
            num_ports=16,
            radix=4,
            buffer_kind="DAMQ",
            slots_per_buffer=4,
            protocol=Protocol.BLOCKING,
            offered_load=0.6,
            seed=1988,
        ),
        "expected": {
            "generated": 7761,
            "injected": 7761,
            "delivered": 7725,
            "discarded": 0,
            "latency_count": 7725,
            "latency_mean": 56.314951456310666,
            "latency_m2": 6149042.723106821,
            "latency_min": 25,
            "latency_max": 286,
            "net_latency_mean": 49.68388349514563,
            "occupancy_mean": 40.21124999999998,
            "occupancy_max": 59,
        },
    },
    "discarding_fifo": {
        "config": dict(
            num_ports=16,
            radix=4,
            buffer_kind="FIFO",
            slots_per_buffer=4,
            protocol=Protocol.DISCARDING,
            offered_load=0.6,
            seed=1988,
        ),
        "expected": {
            "generated": 7668,
            "injected": 7664,
            "delivered": 7228,
            "discarded": 369,
            "latency_count": 7228,
            "latency_mean": 89.73049252905406,
            "latency_m2": 15290220.99944661,
            "latency_min": 25,
            "latency_max": 291,
            "net_latency_mean": 76.5390149418926,
            "occupancy_mean": 60.254999999999995,
            "occupancy_max": 83,
        },
    },
}


def checksum(meters) -> dict:
    """Every counter plus the raw Welford state of the latency stats."""
    return {
        "generated": meters.generated,
        "injected": meters.injected,
        "delivered": meters.delivered,
        "discarded": meters.discarded,
        "latency_count": meters.latency.count,
        "latency_mean": meters.latency.mean,
        "latency_m2": meters.latency._m2,
        "latency_min": meters.latency.minimum,
        "latency_max": meters.latency.maximum,
        "net_latency_mean": meters.network_latency.mean,
        "occupancy_mean": meters.occupancy.mean,
        "occupancy_max": meters.occupancy.maximum,
    }


@pytest.mark.parametrize("name", sorted(PINNED))
def test_seed_1988_checksums_unchanged(name):
    pin = PINNED[name]
    simulator = OmegaNetworkSimulator(NetworkConfig(**pin["config"]))
    simulator.run(warmup_cycles=WARMUP, measure_cycles=MEASURE)
    actual = checksum(simulator.meters)
    # Exact comparison on purpose — floats included (see module docstring).
    assert actual == pin["expected"]


@pytest.mark.parametrize("name", sorted(PINNED))
def test_pins_survive_architecture_zoo_registration(name):
    """Importing ``repro.arch`` must not perturb the paper datapath.

    The zoo registers extra buffer and scheduler kinds as an import side
    effect; nothing about that registration may touch the paper
    configurations' RNG draw order, switch iteration order, or buffer
    semantics.  Re-running a pinned config with the zoo loaded proves
    the extension is purely additive, bit for bit.
    """
    import repro.arch  # noqa: F401  (the import side effect is the test)

    pin = PINNED[name]
    simulator = OmegaNetworkSimulator(NetworkConfig(**pin["config"]))
    simulator.run(warmup_cycles=WARMUP, measure_cycles=MEASURE)
    assert checksum(simulator.meters) == pin["expected"]


@pytest.mark.parametrize("name", sorted(PINNED))
def test_sanitized_run_matches_pins_exactly(name, monkeypatch):
    """REPRO_SANITIZE=1 must not perturb a single bit of the results.

    The sanitizer instruments the buffers via ``__class__`` adoption —
    bookkeeping only, no change to the datapath — so the exact Welford
    state of every meter must match the plain-run pins, and a healthy
    model must produce zero violations.
    """
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    pin = PINNED[name]
    simulator = make_simulator(NetworkConfig(**pin["config"]))
    assert simulator.sanitizer is not None
    simulator.run(warmup_cycles=WARMUP, measure_cycles=MEASURE)
    assert checksum(simulator.meters) == pin["expected"]
    assert simulator.sanitizer.clean, simulator.sanitizer.render()


@pytest.mark.parametrize("name", sorted(PINNED))
def test_snapshot_restore_round_trip_matches_pins_exactly(name):
    """A mid-run snapshot → JSON → restore → continue must hit the pins.

    The snapshot is taken at an arbitrary cycle inside warm-up, pushed
    through an actual JSON round trip (what a checkpoint file does), and
    restored into a freshly built simulator.  The finished run must
    reproduce every pinned value bit for bit — including the int-typed
    latency minimum, which a careless float coercion in restore would
    silently widen.
    """
    pin = PINNED[name]
    simulator = OmegaNetworkSimulator(NetworkConfig(**pin["config"]))
    for _ in range(137):
        simulator.step()
    state = json.loads(json.dumps(simulator.snapshot()))
    resumed = restore_simulator(state)
    resumed.run(warmup_cycles=WARMUP, measure_cycles=MEASURE)
    assert checksum(resumed.meters) == pin["expected"]


@pytest.mark.parametrize("name", sorted(PINNED))
def test_trace_off_by_default_builds_the_plain_class(name, monkeypatch):
    """With no telemetry env set, make_simulator must stay zero-overhead.

    Not ``isinstance`` — the *exact* plain class, proving no adopted
    subclass and no instrumentation object sits anywhere near the hot
    path when tracing is off (the disabled default that keeps the seed
    1988 pins byte-identical by construction).
    """
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_METRICS", raising=False)
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    pin = PINNED[name]
    simulator = make_simulator(NetworkConfig(**pin["config"]))
    assert type(simulator) is OmegaNetworkSimulator


@pytest.mark.parametrize("name", sorted(PINNED))
def test_traced_run_matches_pins_exactly(name, monkeypatch):
    """REPRO_TRACE=1 must not perturb a single bit of the results.

    Tracing observes the datapath's own side effects (it draws nothing
    from any RNG), so the exact Welford state of every meter must match
    the plain-run pins — and the per-buffer enqueue/dequeue counters
    must reconcile with what the network actually moved.
    """
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.delenv("REPRO_METRICS", raising=False)
    pin = PINNED[name]
    simulator = make_simulator(NetworkConfig(**pin["config"]))
    simulator.run(warmup_cycles=WARMUP, measure_cycles=MEASURE)
    assert checksum(simulator.meters) == pin["expected"]
    metrics = simulator.session.metrics
    assert metrics.value("packets_delivered_measured") == simulator.meters.delivered
    assert metrics.value("packets_delivered_total") == sum(
        sink.received for row in simulator._exit_sinks for sink in row
    )
    assert metrics.value("packets_discarded_measured") == simulator.meters.discarded
    assert metrics.value("packets_discarded_total") >= simulator.meters.discarded
    enqueued = metrics.value("buffer_enqueues_total")
    dequeued = metrics.value("buffer_dequeues_total")
    assert enqueued - dequeued == simulator.total_buffered_packets
    assert metrics.value("arbiter_grants_total") == dequeued


@pytest.mark.parametrize("name", sorted(PINNED))
def test_metrics_only_run_matches_pins_exactly(name, monkeypatch):
    """REPRO_METRICS=1 (counters, no event ring) must also hit the pins."""
    monkeypatch.setenv("REPRO_METRICS", "1")
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    pin = PINNED[name]
    simulator = make_simulator(NetworkConfig(**pin["config"]))
    assert simulator.session.ring.capacity == 0
    simulator.run(warmup_cycles=WARMUP, measure_cycles=MEASURE)
    assert checksum(simulator.meters) == pin["expected"]
    assert len(simulator.session.ring) == 0  # nothing retained...
    assert simulator.session.metrics.value("buffer_enqueues_total") > 0


@pytest.mark.parametrize("name", sorted(PINNED))
def test_traced_snapshot_restore_matches_pins_exactly(name, monkeypatch):
    """Snapshot under tracing, restore traced, hit the pins.

    The traced snapshot carries an extra "telemetry" key with the exact
    metrics state; restoring it must leave the continued run — and the
    restored counters themselves — bit-identical to an uninterrupted
    traced run.
    """
    monkeypatch.setenv("REPRO_TRACE", "1")
    pin = PINNED[name]
    simulator = make_simulator(NetworkConfig(**pin["config"]))
    for _ in range(137):
        simulator.step()
    state = json.loads(json.dumps(simulator.snapshot()))
    resumed = make_simulator(NetworkConfig(**pin["config"]))
    resumed.restore(state)
    resumed.run(warmup_cycles=WARMUP, measure_cycles=MEASURE)
    assert checksum(resumed.meters) == pin["expected"]
    uninterrupted = make_simulator(NetworkConfig(**pin["config"]))
    uninterrupted.run(warmup_cycles=WARMUP, measure_cycles=MEASURE)
    assert (
        resumed.session.metrics.snapshot_state()
        == uninterrupted.session.metrics.snapshot_state()
    )


@pytest.mark.parametrize("name", sorted(PINNED))
def test_traced_snapshot_restores_into_plain_simulator(name, monkeypatch):
    """A traced checkpoint must remain readable by a plain simulator."""
    monkeypatch.setenv("REPRO_TRACE", "1")
    pin = PINNED[name]
    simulator = make_simulator(NetworkConfig(**pin["config"]))
    for _ in range(137):
        simulator.step()
    state = json.loads(json.dumps(simulator.snapshot()))
    monkeypatch.delenv("REPRO_TRACE")
    resumed = make_simulator(NetworkConfig(**pin["config"]))
    assert type(resumed) is OmegaNetworkSimulator
    resumed.restore(state)
    resumed.run(warmup_cycles=WARMUP, measure_cycles=MEASURE)
    assert checksum(resumed.meters) == pin["expected"]


@pytest.mark.parametrize("name", sorted(PINNED))
def test_sanitized_snapshot_restore_matches_pins_exactly(name, monkeypatch):
    """Snapshot under REPRO_SANITIZE=1, restore sanitized, hit the pins.

    Snapshots are sanitizer-agnostic: one taken by an instrumented
    simulator restores into another instrumented simulator (whose slot
    lifecycle state is re-derived from the restored register files) and
    the continued run must match the plain-run pins exactly, with zero
    violations reported.
    """
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    pin = PINNED[name]
    simulator = make_simulator(NetworkConfig(**pin["config"]))
    for _ in range(137):
        simulator.step()
    state = json.loads(json.dumps(simulator.snapshot()))
    resumed = make_simulator(NetworkConfig(**pin["config"]))
    assert resumed.sanitizer is not None
    resumed.restore(state)
    resumed.run(warmup_cycles=WARMUP, measure_cycles=MEASURE)
    assert checksum(resumed.meters) == pin["expected"]
    assert resumed.sanitizer.clean, resumed.sanitizer.render()
