"""Failure-injection tests: corrupt internal state and verify detection.

The library carries structural self-checks (`check_invariants`) and
runtime guards (crossbar legality, read-after-write protection, routing
validation).  These tests deliberately break things and assert the
defences actually fire — guarding against silently-passing checks.
"""

import pytest

from repro.chip import ChipNetwork, ComCoBBChip
from repro.core import DamqBuffer, FifoBuffer, SafcBuffer, SlotListManager
from repro.core.linkedlist import NO_SLOT
from repro.core.packet import Packet, PacketFactory
from repro.errors import (
    InvariantError,
    ProtocolError,
    RoutingError,
    SimulationError,
)


class TestLinkedListCorruptionDetected:
    def test_pointer_register_corruption(self):
        manager = SlotListManager(num_slots=4, num_lists=2)
        manager.allocate(0)
        manager.allocate(0)
        # Sever the chain: the first slot no longer points at the second.
        manager._next[manager._head[0]] = NO_SLOT
        with pytest.raises(InvariantError):
            manager.check_invariants()

    def test_length_register_corruption(self):
        manager = SlotListManager(num_slots=4, num_lists=2)
        manager.allocate(1)
        manager._length[1] = 2  # claims two slots, chain has one
        with pytest.raises(InvariantError):
            manager.check_invariants()

    def test_slot_on_two_lists(self):
        manager = SlotListManager(num_slots=4, num_lists=2)
        manager.allocate(0)
        # Alias the same slot onto the second list.
        manager._head[1] = manager._head[0]
        manager._tail[1] = manager._head[0]
        manager._length[1] = 1
        with pytest.raises(InvariantError):
            manager.check_invariants()

    def test_retired_slot_resurrected_on_a_list(self):
        manager = SlotListManager(num_slots=4, num_lists=2)
        retired = manager.retire_slot()
        # Corruption: the dead slot reappears as a one-slot queue.
        manager._head[0] = retired
        manager._tail[0] = retired
        manager._length[0] = 1
        manager._next[retired] = NO_SLOT
        with pytest.raises(InvariantError):
            manager.check_invariants()

    def test_invariant_error_is_a_simulation_error(self):
        """The new exception slots into the existing hierarchy."""
        assert issubclass(InvariantError, SimulationError)


class TestDamqBufferCorruptionDetected:
    def test_count_cache_drift(self):
        buffer = DamqBuffer(capacity=4, num_outputs=2)
        buffer.push(Packet(packet_id=1, source=0, destination=0), 0)
        buffer._packet_counts[0] = 2  # cache no longer matches the list
        with pytest.raises(InvariantError):
            buffer.check_invariants()

    def test_phantom_packet_slot(self):
        buffer = DamqBuffer(capacity=4, num_outputs=2)
        buffer.push(Packet(packet_id=1, source=0, destination=0), 0)
        slot = buffer._lists.head(0)
        buffer._slot_packet[slot] = None  # data RAM lost the packet
        with pytest.raises(InvariantError):
            buffer.check_invariants()


class TestFifoBufferCorruptionDetected:
    def test_used_counter_drift(self):
        buffer = FifoBuffer(capacity=4, num_outputs=2)
        buffer.push(Packet(packet_id=1, source=0, destination=0), 0)
        buffer._used = 3  # counter no longer matches the queue contents
        with pytest.raises(InvariantError):
            buffer.check_invariants()

    def test_occupancy_beyond_effective_capacity(self):
        buffer = FifoBuffer(capacity=2, num_outputs=2)
        buffer.push(Packet(packet_id=1, source=0, destination=0), 0)
        buffer.push(Packet(packet_id=2, source=0, destination=1), 1)
        # A hard fault retires a slot out from under a full queue.
        buffer._retired_slots = 1
        with pytest.raises(InvariantError):
            buffer.check_invariants()


class TestSafcBufferCorruptionDetected:
    def test_partition_occupancy_drift(self):
        buffer = SafcBuffer(capacity=4, num_outputs=2)
        buffer.push(Packet(packet_id=1, source=0, destination=0), 0)
        buffer._used[0] = 2  # occupancy register disagrees with the queue
        with pytest.raises(InvariantError):
            buffer.check_invariants()

    def test_partition_overflow(self):
        buffer = SafcBuffer(capacity=4, num_outputs=2)
        buffer.push(Packet(packet_id=1, source=0, destination=0), 0)
        buffer.push(Packet(packet_id=2, source=0, destination=0), 0)
        # Corruption: retirement bookkeeping claims a slot this full
        # partition never had.
        buffer._partition_retired[0] = 1
        buffer._retired_slots = 1
        with pytest.raises(InvariantError):
            buffer.check_invariants()


class TestChipGuards:
    def test_unprogrammed_circuit_raises_at_reception(self):
        """A header with no routing entry must fail loudly, not drop."""
        network = ChipNetwork()
        network.add_node("a")
        network.add_node("b")
        network.connect("a", 0, "b", 0)
        # Bypass open_circuit: inject a packet with an unknown header.
        network.nodes["a"].host.send_message(77, b"x")
        with pytest.raises(RoutingError):
            network.run_until_idle(max_cycles=100)

    def test_chip_invariant_check_detects_tampering(self):
        chip = ComCoBBChip("t")
        packet = chip.buffers[0].begin_packet(2, new_header=1)
        chip.buffers[0].set_length(packet, 4)
        packet.slots.append(99)  # record claims a slot it never got
        with pytest.raises(Exception):
            chip.check_invariants()

    def test_double_drive_is_a_short_circuit(self):
        from repro.chip.wires import Wire

        wire = Wire("bus")
        wire.drive(1)
        with pytest.raises(ProtocolError):
            wire.drive(2)


class TestSimulatorGuards:
    def test_blocking_overflow_is_fatal_not_silent(self):
        """If flow control were broken, the simulator must raise rather
        than quietly drop packets under the blocking protocol."""
        from repro.network import NetworkConfig
        from repro.network.simulator import OmegaNetworkSimulator

        simulator = OmegaNetworkSimulator(
            NetworkConfig(num_ports=16, offered_load=1.0, seed=3)
        )
        for _ in range(50):
            simulator.step()
        # Sabotage: fill a stage-1 buffer behind the arbiter's back.
        factory = PacketFactory()
        victim = simulator.switches[1][0].buffers[0]
        while victim.can_accept(1):
            victim.push(factory.create(0, 0, route=(0, 1)), 1)
        # The stage-0 arbiter's flow-control view is now stale; if it ever
        # forwards into the full buffer the simulator must raise.
        try:
            for _ in range(30):
                simulator.step()
        except SimulationError:
            pass  # the guard fired - acceptable
        else:
            # Or flow control genuinely prevented any forward: the buffer
            # must still never exceed its capacity.
            assert victim.occupancy <= victim.capacity

    def test_packet_without_route_entry_fails(self):
        packet = Packet(packet_id=1, source=0, destination=0, route=())
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            packet.output_port_at_current_hop()
