"""End-to-end service tests: HTTP, dedup, backpressure, degradation, chaos.

The heavyweight acceptance test of the PR: an experiment submitted to a
chaos-ridden service — workers killed mid-simulation, resumed from
checkpoints — must produce a report byte-identical to the plain serial
``run_experiment`` call, with and without the hardware sanitizer.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_experiment
from repro.service import (
    ChaosPolicy,
    ServiceClient,
    ServiceConfig,
    SimulationService,
    serve_in_thread,
)
from repro.service.jobs import JobSpec

#: Cheap grid experiment (runs parallel_simulate, ~0.1 s quick).
FAST_GRID = "ext-slotsize"


@pytest.fixture(scope="module")
def handle():
    with serve_in_thread(
        ServiceConfig(port=0, workers=2, queue_limit=4)
    ) as live:
        yield live


@pytest.fixture(scope="module")
def client(handle):
    return ServiceClient(handle.url)


class TestHttpSurface:
    def test_health(self, client):
        document = client.health()
        assert document["status"] in ("ok", "degraded")
        assert document["workers"] == 2

    def test_submit_wait_then_cache_hit(self, client):
        status, first = client.submit(FAST_GRID, wait=True)
        assert status == 200
        assert first["status"] == "done"
        assert first["source"] == "fresh"
        assert first["tasks_executed"] > 0
        assert "report" in first["result"]

        status, second = client.submit(FAST_GRID, wait=True)
        assert status == 200
        assert second["cache_hit"] is True
        assert second["tasks_executed"] == 0
        assert second["result"]["report"] == first["result"]["report"]

    def test_get_job_by_id(self, client):
        _, submitted = client.submit("table1", wait=True)
        status, fetched = client.job(submitted["id"])
        assert status == 200
        assert fetched["id"] == submitted["id"]
        assert fetched["status"] == "done"

    def test_unknown_job_404(self, client):
        status, document = client.job("job-999999")
        assert status == 404
        assert "error" in document

    def test_bad_experiment_400(self, client):
        status, document, _ = client.request(
            "POST", "/v1/jobs", {"experiment": "not-an-experiment"}
        )
        assert status == 400
        assert "unknown experiment" in document["error"]

    def test_non_json_body_400(self, client):
        import http.client as hc

        connection = hc.HTTPConnection(client.host, client.port, timeout=30)
        try:
            connection.request("POST", "/v1/jobs", body=b"{not json")
            response = connection.getresponse()
            assert response.status == 400
        finally:
            connection.close()

    def test_unknown_route_404_and_bad_method_405(self, client):
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("DELETE", "/v1/jobs")[0] == 405

    def test_stats_and_metrics_documents(self, client):
        stats = client.stats()
        assert stats["queue_limit"] == 4
        assert "pool" in stats and "breaker" in stats
        document = client.metrics()
        # The document must be loadable by repro.telemetry's report path.
        from repro.telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.merge_state(document["metrics"])
        assert registry.value("service_jobs_total") > 0


class TestAdmissionControl:
    def test_queue_overflow_rejected_with_retry_after(self):
        # Service constructed but *not started*: the runner never drains,
        # so admission fills deterministically.
        service = SimulationService(
            ServiceConfig(port=0, workers=1, queue_limit=2)
        )
        try:
            specs = [{"experiment": "table2", "seed": seed} for seed in (1, 2, 3)]
            first = service.submit(specs[0])
            second = service.submit(specs[1])
            assert first.status == 202 and second.status == 202
            third = service.submit(specs[2])
            assert third.status == 429
            assert float(third.headers["Retry-After"]) > 0.0
            assert third.body["retry_after"] > 0.0
        finally:
            service.close()

    def test_coalescing_same_spec_shares_one_job(self):
        service = SimulationService(
            ServiceConfig(port=0, workers=1, queue_limit=2)
        )
        try:
            admitted = service.submit({"experiment": "table3"})
            coalesced = service.submit({"experiment": "table3"})
            assert admitted.status == 202
            assert coalesced.record is admitted.record
            assert admitted.record.requests == 2
            # Coalescing does not consume queue slots: a *different* spec
            # still fits in the second slot.
            other = service.submit({"experiment": "table4"})
            assert other.status == 202
        finally:
            service.close()


class TestDegradationLadder:
    def test_breaker_open_serves_analytic_prediction(self, handle, client):
        breaker = handle.service.breaker
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        try:
            status, document = client.submit("figure3", seed=424242, wait=True)
            assert status == 200
            assert document["source"] == "analytic"
            result = document["result"]
            assert result["degraded"] is True
            assert result["mode"] == "analytic"
            assert result["prediction"]["model"] == "markov"
        finally:
            breaker.record_success()

    def test_breaker_open_prefers_stale_over_analytic(self, handle, client):
        service = handle.service
        spec = JobSpec.from_payload({"experiment": "figure1", "seed": 777})
        # A result computed under some older source tree: present in the
        # stale map, absent from the exact-key cache.
        service._stale[spec.stale_key()] = {
            "experiment": "figure1",
            "report": "old but honest",
        }
        breaker = service.breaker
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        try:
            status, document = client.submit("figure1", seed=777, wait=True)
            assert status == 200
            assert document["source"] == "stale"
            assert document["result"]["degraded"] is True
            assert document["result"]["report"] == "old but honest"
        finally:
            breaker.record_success()

    def test_exact_cache_hit_wins_even_when_breaker_open(self, handle, client):
        status, fresh = client.submit(FAST_GRID, wait=True)
        assert status == 200
        breaker = handle.service.breaker
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        try:
            status, document = client.submit(FAST_GRID, wait=True)
            assert status == 200
            assert document.get("cache_hit") is True
            assert not document["result"].get("degraded")
        finally:
            breaker.record_success()


class TestChaosByteIdentity:
    """The PR's acceptance property, as a test."""

    def test_chaos_run_matches_serial_with_and_without_sanitizer(
        self, monkeypatch, tmp_path
    ):
        serial = run_experiment(FAST_GRID, quick=True).render()
        chaos = ChaosPolicy(
            kill_probability=0.6,
            kill_after_s=(0.0, 0.05),
            max_injections_per_task=2,
        )
        for sanitize in (False, True):
            if sanitize:
                monkeypatch.setenv("REPRO_SANITIZE", "1")
            else:
                monkeypatch.delenv("REPRO_SANITIZE", raising=False)
            with serve_in_thread(
                ServiceConfig(
                    port=0,
                    workers=2,
                    chaos=chaos,
                    checkpoint_every=100,
                    data_dir=tmp_path / f"sanitize-{sanitize}",
                )
            ) as live:
                status, document = ServiceClient(live.url).submit(
                    FAST_GRID, wait=True
                )
                assert status == 200, document
                assert document["status"] == "done"
                assert document["result"]["report"] == serial

    def test_killed_simulation_recovers_byte_identically(self, tmp_path):
        """Explicit mid-run worker kills: resume, not recompute, and the
        recovery is visible in the supervisor's counters."""
        serial = run_experiment("table6", quick=True).render()
        chaos = ChaosPolicy(
            kill_probability=0.5,
            kill_after_s=(0.05, 0.3),
            max_injections_per_task=2,
        )
        with serve_in_thread(
            ServiceConfig(
                port=0,
                workers=2,
                chaos=chaos,
                checkpoint_every=200,
                data_dir=tmp_path / "chaos",
            )
        ) as live:
            client = ServiceClient(live.url)
            status, document = client.submit("table6", wait=True)
            assert status == 200, document
            assert document["result"]["report"] == serial
            pool_stats = client.stats()["pool"]
            assert pool_stats["worker_restarts"] >= 1
            assert pool_stats["tasks_retried"] >= 1
