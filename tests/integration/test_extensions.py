"""Integration tests for the extension modules at reduced scale."""

import pytest

from repro.chip import build_mesh, open_shortest_circuit
from repro.experiments.ext_slotsize import measured_fragmentation
from repro.network import NetworkConfig, measure_saturation
from repro.utils.rng import RandomStream


class TestSlotSizeMeasurement:
    def test_measured_fragmentation_in_unit_range(self):
        fraction = measured_fragmentation(slot_bytes=8, messages=8)
        assert 0.0 <= fraction < 1.0

    def test_one_byte_slots_never_fragment(self):
        fraction = measured_fragmentation(slot_bytes=1, messages=4)
        assert fraction == 0.0  # repro: noqa=REP004 integer byte counts make the ratio exactly zero


class TestSerializedSaturationOrdering:
    def test_damq_leads_under_serialization(self):
        base = NetworkConfig(
            num_ports=16,
            slots_per_buffer=8,
            packet_size_max=2,
            serialize_links=True,
            seed=77,
        )
        results = {
            kind: measure_saturation(
                base.with_overrides(buffer_kind=kind), 100, 500
            ).saturation_throughput
            for kind in ("FIFO", "DAMQ")
        }
        assert results["DAMQ"] > results["FIFO"]


class TestMeshBurst:
    def test_mesh_all_pairs_burst_byte_exact(self):
        """Nine nodes, all 72 ordered pairs, random payloads — everything
        arrives intact through shared relays and flow control."""
        network, names = build_mesh(3, 3)
        rng = RandomStream(31, "mesh")
        circuits = {}
        expected = {}
        for source in names:
            for destination in names:
                if source == destination:
                    continue
                circuit = open_shortest_circuit(network, source, destination)
                payload = bytes(
                    rng.randint(0, 256) for _ in range(rng.randint(1, 80))
                )
                network.send(circuit, payload)
                circuits[(source, destination)] = circuit
                expected[(source, destination)] = payload
        network.run_until_idle(max_cycles=300_000)
        for (source, destination), circuit in circuits.items():
            received = [
                message.payload
                for message in network.nodes[destination].host.received_messages
                if message.delivery_tag == circuit.delivery_tag
            ]
            assert received == [expected[(source, destination)]], (
                source,
                destination,
            )
        network.check_invariants()


class TestPacketizeExtremes:
    def test_maximum_message_size(self):
        from repro.chip import packetize

        chunks = packetize(b"m" * 65535)
        assert sum(len(chunk) for chunk in chunks) == 65535 + 2
        assert all(len(chunk) <= 32 for chunk in chunks)
        assert len(chunks) == -(-65537 // 32)


class TestCounterResets:
    def test_source_and_sink_reset(self):
        from repro.core.packet import PacketFactory
        from repro.network.sources import Sink, Source
        from repro.network.topology import OmegaTopology
        from repro.network.traffic import UniformTraffic

        source = Source(
            port=0,
            offered_load=1.0,
            topology=OmegaTopology(16, 4),
            pattern=UniformTraffic(16),
            factory=PacketFactory(),
            rng=RandomStream(1, "reset"),
            queue_capacity=1,
        )
        source.maybe_generate(0)
        source.maybe_generate(1)  # stalls
        assert source.generated == 1 and source.stalled_cycles == 1
        source.reset_counters()
        assert source.generated == 0 and source.stalled_cycles == 0

        sink = Sink(3)
        sink.deliver(PacketFactory().create(0, 3), 0)
        sink.reset_counters()
        assert sink.received == 0 and sink.misrouted == 0
