"""Integration tests for the per-cycle kernel differential harness.

Three claims are exercised end to end:

* the seed-1988 quick-grid configurations (the paper's figure 3 and
  table 3 operating points) are byte-identical between the reference
  and numpy backends at every compared cycle;
* a planted divergence is caught at the exact cycle it occurs, with a
  counterexample that replays through the model checker's standard
  machinery (``build_system`` / ``Counterexample.replay``) and
  round-trips through JSON serialization;
* the CLI smoke grid (``python -m repro.kernel diff --ci``) passes.

Shortened windows keep the suite fast; the CI ``kernel-equivalence``
job runs the same grid at full quick fidelity.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.counterexample import Counterexample
from repro.kernel.differential import (
    DIVERGENCE_PROP,
    DiffReport,
    diff_kernels,
    first_difference,
)
from repro.network.simulator import NetworkConfig
from repro.switch.flow_control import Protocol

WARMUP, MEASURE = 100, 200


def quick_config(kind, protocol, arbiter, load, seed=1988):
    """A paper-grid operating point (64 ports, radix 4, 4 slots)."""
    return NetworkConfig(
        buffer_kind=kind,
        slots_per_buffer=4,
        protocol=protocol,
        arbiter_kind=arbiter,
        traffic_kind="uniform",
        offered_load=load,
        seed=seed,
    )


class TestSeed1988Pins:
    @pytest.mark.parametrize(
        "kind, protocol, arbiter, load",
        [
            # Figure 3 operating points (blocking, smart arbitration).
            ("FIFO", Protocol.BLOCKING, "smart", 0.5),
            ("DAMQ", Protocol.BLOCKING, "smart", 0.7),
            # Table 3 operating points (discarding protocol).
            ("SAMQ", Protocol.DISCARDING, "smart", 0.5),
            ("SAFC", Protocol.DISCARDING, "dumb", 0.5),
        ],
    )
    def test_quick_grid_configs_are_equivalent(
        self, kind, protocol, arbiter, load
    ):
        report = diff_kernels(
            quick_config(kind, protocol, arbiter, load),
            warmup_cycles=WARMUP,
            measure_cycles=MEASURE,
        )
        assert report.ok, report.describe()
        assert report.cycles_compared == WARMUP + MEASURE
        # The end-of-run results must agree too, and be pinned.
        assert (
            report.result_digests["reference"]
            == report.result_digests["numpy"]
        )

    def test_compare_every_still_checks_final_cycle(self):
        report = diff_kernels(
            quick_config("DAMQ", Protocol.BLOCKING, "smart", 0.5),
            warmup_cycles=50,
            measure_cycles=73,
            compare_every=32,
        )
        assert report.ok
        # ceil(123/32) boundary comparisons plus the forced final one.
        assert report.cycles_compared == 4


class PlantedBug:
    """Context manager corrupting the numpy kernel at one cycle."""

    def __init__(self, at_cycle: int):
        self.at_cycle = at_cycle

    def __enter__(self):
        from repro.kernel.numpy_kernel import NumpyKernel

        bug_cycle = self.at_cycle
        self._original = NumpyKernel.step

        def corrupted(kernel):
            self._original(kernel)
            if kernel.cycle == bug_cycle:
                kernel.sink_recv[0] += 1  # phantom delivery

        NumpyKernel.step = corrupted
        return self

    def __exit__(self, *exc):
        from repro.kernel.numpy_kernel import NumpyKernel

        NumpyKernel.step = self._original
        return False


class TestPlantedDivergence:
    CONFIG_ARGS = ("DAMQ", Protocol.BLOCKING, "smart", 0.7)
    BUG_CYCLE = 60

    def diverged_report(self) -> DiffReport:
        with PlantedBug(self.BUG_CYCLE):
            return diff_kernels(
                quick_config(*self.CONFIG_ARGS),
                warmup_cycles=50,
                measure_cycles=100,
            )

    def test_divergence_detected_at_exact_cycle(self):
        report = self.diverged_report()
        assert not report.ok
        assert report.divergence_cycle == self.BUG_CYCLE
        assert report.divergence_path is not None
        assert "received" in report.divergence_path
        assert report.reference_digest != report.numpy_digest
        assert "DIVERGED" in report.describe()

    def test_counterexample_replays_and_roundtrips(self):
        report = self.diverged_report()
        counterexample = report.counterexample
        assert counterexample is not None
        assert counterexample.violation.prop == DIVERGENCE_PROP
        assert len(counterexample.actions) == self.BUG_CYCLE

        # JSON round trip through the standard serializer.
        restored = Counterexample.from_dict(counterexample.to_dict())
        assert restored.actions == counterexample.actions
        assert restored.violation.prop == DIVERGENCE_PROP

        # With the bug still planted the trace reproduces the violation
        # through build_system's "kernel-diff" registration ...
        with PlantedBug(self.BUG_CYCLE):
            violation = restored.replay()
        assert violation is not None and violation.prop == DIVERGENCE_PROP

        # ... and with the bug removed the same trace runs clean.
        assert restored.replay() is None

    def test_render_script_mentions_kernel_diff(self):
        report = self.diverged_report()
        script = report.counterexample.render_script()
        assert "kernel-diff" in script


class TestFirstDifference:
    def test_identical_structures(self):
        assert first_difference({"a": [1, 2]}, {"a": [1, 2]}) is None

    def test_nested_path(self):
        left = {"switches": {"s0": {"queue": [1, 2, 3]}}}
        right = {"switches": {"s0": {"queue": [1, 9, 3]}}}
        assert first_difference(left, right) == "/switches/s0/queue[1]"

    def test_missing_key_and_length_mismatch(self):
        assert first_difference({"a": 1}, {}) == "/a"
        assert first_difference([1, 2], [1]) == "/len(2!=1)"


class TestCliSmoke:
    def test_diff_ci_grid_passes(self, capsys):
        from repro.kernel.__main__ import main

        code = main(
            [
                "diff",
                "--ci",
                "--warmup",
                "40",
                "--measure",
                "80",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("equivalent over 120 cycles") == 4
