"""Integration tests for fault campaigns: the acceptance criteria.

The headline requirement: on a 16-node chip network with a 1e-3 per-bit
flip rate on every link and one hard-failed (retired) slot in every
buffer, end-to-end retransmission must still deliver at least 99% of
messages.  The zero-fault campaign must be perfectly clean — proof that
the fault machinery draws nothing and corrupts nothing when disabled.
"""

import dataclasses

import pytest

from repro.chip import ChipFaultPolicy, ComCoBBChip
from repro.errors import FaultError
from repro.faults import (
    BUFFER_KINDS,
    StuckAtFault,
    run_buffer_sweep,
    run_chip_campaign,
)


class TestChipCampaignAcceptance:
    @pytest.fixture(scope="class")
    def faulty_run(self):
        """The acceptance configuration: 16 nodes, 1e-3 flips, 1 retired
        slot per buffer (shared across assertions — it is expensive)."""
        return run_chip_campaign(
            nodes=16,
            bit_flip_rate=1e-3,
            retired_slots_per_buffer=1,
            messages_per_flow=2,
        )

    def test_delivery_rate_meets_availability_target(self, faulty_run):
        assert faulty_run.messages_sent > 0
        assert faulty_run.delivery_rate >= 0.99

    def test_faults_were_actually_injected(self, faulty_run):
        """Guard against a vacuous pass with the injector disconnected."""
        assert faulty_run.flips_injected > 0
        assert faulty_run.bytes_seen > 0

    def test_detection_and_recovery_did_real_work(self, faulty_run):
        # Corruption was detected somewhere in the containment chain...
        counters = faulty_run.fault_counters
        assert sum(counters.values()) > 0
        # ...and recovery required retransmissions.
        assert faulty_run.retransmissions > 0

    def test_every_failure_is_accounted_for(self, faulty_run):
        lost = faulty_run.messages_sent - faulty_run.messages_delivered
        # "Deliver or say so": anything undelivered shows up in failed.
        assert faulty_run.failed_messages >= lost


class TestZeroFaultCampaign:
    def test_no_faults_means_perfect_and_silent(self):
        result = run_chip_campaign(
            nodes=4,
            bit_flip_rate=0.0,
            retired_slots_per_buffer=0,
            messages_per_flow=2,
            peer_offsets=(1,),
        )
        assert result.delivery_rate == 1.0  # repro: noqa=REP004 delivered/sent is an exact integer ratio
        assert result.failed_messages == 0
        assert result.flips_injected == 0
        assert result.retransmissions == 0
        assert result.undecodable_frames == 0
        assert result.duplicates_dropped == 0
        # No detection machinery fired: nothing was ever corrupted.
        assert sum(result.fault_counters.values()) == 0

    def test_degraded_but_clean_links_still_deliver_everything(self):
        """Retired slots alone (no bit flips) must not lose messages."""
        result = run_chip_campaign(
            nodes=4,
            bit_flip_rate=0.0,
            retired_slots_per_buffer=2,
            messages_per_flow=2,
            peer_offsets=(1,),
        )
        assert result.delivery_rate == 1.0  # repro: noqa=REP004 delivered/sent is an exact integer ratio
        assert result.failed_messages == 0


class TestCampaignDeterminism:
    def test_same_seed_same_campaign(self):
        kwargs = dict(
            nodes=4,
            bit_flip_rate=2e-3,
            retired_slots_per_buffer=1,
            messages_per_flow=1,
            peer_offsets=(1,),
            seed=7,
        )
        first = run_chip_campaign(**kwargs)
        second = run_chip_campaign(**kwargs)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_stuck_at_fault_is_detected_and_survived(self):
        result = run_chip_campaign(
            nodes=4,
            bit_flip_rate=0.0,
            retired_slots_per_buffer=0,
            messages_per_flow=2,
            peer_offsets=(1,),
            stuck_faults=(StuckAtFault("node_0_0.out", bit=2, value=1),),
        )
        # A stuck wire is deterministic: retransmission cannot beat it, so
        # flows crossing the dead node fail — but they fail *loudly* after
        # exhausting their budget, and every flow avoiding the node still
        # delivers.  That containment is the graceful-degradation contract.
        assert result.delivery_rate >= 0.5
        # Every lost message is reported failed; a *delivered* message can
        # also be reported failed when its ACKs die on the stuck node.
        assert result.failed_messages >= (
            result.messages_sent - result.messages_delivered
        )
        assert sum(result.fault_counters.values()) > 0


class TestChipSlotRetirementGuard:
    def test_retirement_stops_before_flow_control_deadlock(self):
        """Retiring below the stop threshold would assert the stop line
        forever; the chip must refuse instead."""
        chip = ComCoBBChip("chip", faults=ChipFaultPolicy())
        # DEFAULT_SLOTS=12, stop_threshold=7: five retirements keep the
        # usable count at or above the threshold, the sixth would leave
        # the free list unable to ever deassert the stop line.
        for _ in range(5):
            chip.retire_slot(0)
        with pytest.raises(FaultError):
            chip.retire_slot(0)


class TestBufferSweep:
    @pytest.fixture(scope="class")
    def cells(self):
        return run_buffer_sweep(
            loss_rates=(0.0, 1e-2),
            warmup_cycles=100,
            measure_cycles=400,
        )

    def test_covers_all_architectures_and_rates(self, cells):
        pairs = {(c.buffer_kind, c.packet_loss_rate) for c in cells}
        assert pairs == {
            (kind, rate) for kind in BUFFER_KINDS for rate in (0.0, 1e-2)
        }

    def test_degraded_buffers_still_move_traffic(self, cells):
        for cell in cells:
            assert cell.delivered_throughput > 0.0
            assert cell.retired_slots_per_buffer == 1

    def test_loss_meter_tracks_injected_rate(self, cells):
        for cell in cells:
            if cell.packet_loss_rate == 0.0:  # repro: noqa=REP004 exact sentinel: the sweep passes literal 0.0
                assert cell.loss_fraction == 0.0  # repro: noqa=REP004 zero injected flips yield an exactly zero ratio
            else:
                assert cell.loss_fraction > 0.0
