"""The simulation service: asyncio HTTP front end over a supervised farm.

``python -m repro.service serve`` exposes the experiment suite as a
long-running job service.  The moving parts, and where the robustness
lives:

* **Admission** is a bounded queue.  A full queue answers ``429`` with a
  pressure-scaled ``Retry-After`` (:func:`repro.service.backoff
  .retry_after`) instead of queueing unboundedly — latency stays bounded
  because the backlog is.
* **Deduplication** happens at admission: specs are content-addressed
  (:meth:`~repro.service.jobs.JobSpec.key`), so a request for a result
  the store already holds is answered without simulating, and concurrent
  requests for the same spec *coalesce* onto one in-flight job.
* **Execution** runs on a :class:`~repro.service.supervisor
  .SupervisedPool`: each experiment's grid points shard across worker
  processes under heartbeat monitoring, per-attempt deadlines, and
  bounded, backed-off retries that resume from checkpoints.
* **Degradation** is governed by a :class:`~repro.service.breaker
  .CircuitBreaker` over job outcomes.  While it is open the service
  never refuses: it walks the ladder of :mod:`repro.service.jobs` —
  exact cache hit, stale-but-marked result, millisecond analytic
  Markov prediction — and tags every rung below ``cached`` with
  ``degraded: true``.

The HTTP layer is deliberately small (stdlib asyncio, HTTP/1.1,
``Connection: close``): the service's value is the supervision and the
content addressing, not the web framework.

Endpoints::

    POST /v1/jobs               {"experiment": "figure3", "quick": true,
                                 "seed": 1988, "wait": false}
    GET  /v1/jobs/<id>          job status / result document
    GET  /v1/health             liveness + breaker state
    GET  /v1/stats              queue, pool, breaker, cache counters
    GET  /v1/metrics            repro.telemetry metrics document
    POST /v1/admin/kill-worker  hard-kill one worker (chaos/admin)
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from queue import Empty, Full, Queue
from typing import Any

from repro.cache.store import ResultCache
from repro.errors import ConfigurationError
from repro.service.backoff import retry_after
from repro.service.breaker import CircuitBreaker
from repro.service.chaos import ChaosPolicy
from repro.service.jobs import (
    JOB_CODEC,
    JobRecord,
    JobSpec,
    analytic_prediction,
)
from repro.service.supervisor import SupervisedPool, SupervisorConfig
from repro.telemetry.metrics import METRICS_VERSION, MetricsRegistry

__all__ = [
    "ServiceConfig",
    "ServiceHandle",
    "SimulationService",
    "serve",
    "serve_in_thread",
]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Upper bound on request body size (64 KiB is generous for job specs).
_MAX_BODY = 64 * 1024


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the service needs to run (all knobs have sane defaults)."""

    host: str = "127.0.0.1"
    #: TCP port; 0 asks the OS for a free one (see ``ServiceHandle.port``).
    port: int = 0
    #: Worker processes in the supervised pool.
    workers: int = 2
    #: Bounded admission queue: jobs accepted but not yet running.
    queue_limit: int = 8
    #: Data directory (caches + checkpoints); ``None`` = private tempdir.
    data_dir: str | Path | None = None
    #: Cycles between simulation checkpoints (resume granularity).
    checkpoint_every: int = 500
    #: Per-attempt wall-clock deadline for one grid point, seconds.
    task_deadline: float = 120.0
    #: Consecutive job failures that trip the breaker, and its cooldown.
    breaker_threshold: int = 3
    breaker_cooldown: float = 10.0
    #: Optional seeded fault injection for the worker pool.
    chaos: ChaosPolicy | None = None

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        if self.checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")


@dataclass
class Response:
    """What the service core hands the HTTP layer for one request."""

    status: int
    body: dict[str, Any] | None = None
    record: JobRecord | None = None
    headers: dict[str, str] = field(default_factory=dict)
    #: Whether this answer cost zero simulations (memory or store hit).
    cache_hit: bool = False


class SimulationService:
    """Protocol-agnostic core: admission, dedup, execution, degradation.

    Thread-safety model: HTTP handlers call :meth:`submit` and the read
    endpoints from executor threads; one dedicated runner thread executes
    jobs serially (each job's grid points parallelize across the
    supervised pool, so job-level concurrency is the pool's, not the
    runner's).  ``self._lock`` guards all shared job state; each
    :class:`ResultCache` is touched by exactly one side (jobs: under the
    lock; simulations: runner thread only).
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.metrics = MetricsRegistry()
        self._tempdir: tempfile.TemporaryDirectory[str] | None = None
        if self.config.data_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-service-")
            data_dir = Path(self._tempdir.name)
        else:
            data_dir = Path(self.config.data_dir)
        self._checkpoint_dir = data_dir / "checkpoints"
        self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._job_cache = ResultCache(data_dir / "jobs")
        self._sim_cache = ResultCache(data_dir / "simulations")
        self.pool = SupervisedPool(
            SupervisorConfig(
                workers=self.config.workers,
                task_deadline=self.config.task_deadline,
            ),
            chaos=self.config.chaos,
            metrics=self.metrics,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        self._lock = threading.RLock()
        self._by_id: dict[str, JobRecord] = {}
        self._by_key: dict[str, JobRecord] = {}
        self._stale: dict[str, dict[str, Any]] = {}
        self._queue: Queue[JobRecord | None] = Queue(
            maxsize=self.config.queue_limit
        )
        self._closing = threading.Event()
        self._runner = threading.Thread(
            target=self._run_jobs, name="repro-job-runner", daemon=True
        )
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "SimulationService":
        if not self._started:
            self._started = True
            self.pool.start()
            self._runner.start()
        return self

    def close(self) -> None:
        if not self._started:
            return
        self._closing.set()
        self._runner.join(timeout=30.0)
        self.pool.stop()
        with self._lock:
            self._job_cache.flush()
        self._sim_cache.flush()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    # ------------------------------------------------------------------
    # Request paths (called from HTTP handler threads)
    # ------------------------------------------------------------------

    def submit(self, payload: Any) -> Response:
        """Admit, dedup, degrade or reject one job request."""
        try:
            spec = JobSpec.from_payload(payload)
        except ConfigurationError as exc:
            self._count_job("invalid")
            return Response(400, body={"error": str(exc)})
        key = spec.key()
        with self._lock:
            record = self._by_key.get(key)
            if record is not None:
                record.requests += 1
                if record.status == "done" and record.result is not None:
                    # Answered from memory: a zero-simulation cache hit
                    # (the response record shares the stored payload but
                    # reports this request's cost, which is nothing).
                    clone = self._adopt(
                        spec,
                        key,
                        record.result,
                        status="done",
                        source="cached",
                        index=False,
                    )
                    self._count_job("memory")
                    return Response(200, record=clone, cache_hit=True)
                # In flight: this request rides the existing job.
                self._count_job("coalesced")
                return Response(200, record=record)
            stored = self._job_cache.get(key)
            if stored is not None:
                record = self._adopt(
                    spec, key, stored, status="done", source="cached"
                )
                self._count_job("cached")
                return Response(200, record=record, cache_hit=True)
            if not self.breaker.allow():
                return self._degraded(spec)
            record = JobRecord(spec=spec, key=key)
            try:
                self._queue.put_nowait(record)
            except Full:
                self._count_job("rejected")
                delay = retry_after(
                    self._queue.qsize(), self.config.queue_limit
                )
                return Response(
                    429,
                    body={
                        "error": "admission queue full",
                        "retry_after": delay,
                    },
                    headers={"Retry-After": f"{delay}"},
                )
            self._by_key[key] = record
            self._by_id[record.id] = record
            self._count_job("admitted")
            return Response(202, record=record)

    def _degraded(self, spec: JobSpec) -> Response:
        """Breaker open: answer from the ladder, never refuse."""
        headers = {"Retry-After": f"{round(self.breaker.retry_after, 3)}"}
        stale = self._stale.get(spec.stale_key())
        if stale is not None:
            result = dict(stale)
            result["degraded"] = True
            result["mode"] = "stale"
            source = "stale"
        else:
            result = {
                "experiment": spec.experiment,
                "prediction": analytic_prediction(spec),
                "degraded": True,
                "mode": "analytic",
            }
            source = "analytic"
        record = self._adopt(
            spec, spec.key(), result, status="done", source=source, index=False
        )
        self._count_job(source)
        return Response(200, record=record, headers=headers, cache_hit=True)

    def _adopt(
        self,
        spec: JobSpec,
        key: str,
        result: dict[str, Any],
        status: str,
        source: str,
        index: bool = True,
    ) -> JobRecord:
        """Register a record that is born terminal (hit or degraded).

        Degraded records are *not* indexed by key (``index=False``): they
        must never satisfy a later request that fresh capacity could.
        """
        record = JobRecord(
            spec=spec, key=key, status=status, source=source, result=result
        )
        record.finished.set()
        self._by_id[record.id] = record
        if index:
            self._by_key[key] = record
        return record

    def get_job(self, job_id: str) -> Response:
        with self._lock:
            record = self._by_id.get(job_id)
        if record is None:
            return Response(404, body={"error": f"no such job {job_id!r}"})
        return Response(200, record=record)

    def health(self) -> Response:
        breaker = self.breaker.snapshot()
        status = "ok" if breaker["state"] == CircuitBreaker.CLOSED else "degraded"
        return Response(
            200,
            body={
                "status": status,
                "breaker": breaker["state"],
                "workers": self.config.workers,
            },
        )

    def stats(self) -> Response:
        with self._lock:
            jobs = {
                counter.labels.get("outcome", "?"): counter.value
                for counter in self.metrics.counters("service_jobs_total")
            }
            job_cache = self._job_cache.stats()
        return Response(
            200,
            body={
                "jobs": jobs,
                "queue_depth": self._queue.qsize(),
                "queue_limit": self.config.queue_limit,
                "breaker": self.breaker.snapshot(),
                "pool": self.pool.stats(),
                "job_cache": {
                    "entries": job_cache.entries,
                    "hits": job_cache.hits,
                    "misses": job_cache.misses,
                },
                "chaos_enabled": (
                    self.config.chaos is not None and self.config.chaos.enabled
                ),
            },
        )

    def metrics_document(self) -> Response:
        """A ``repro.telemetry``-compatible metrics document."""
        with self._lock:
            snapshot = self.metrics.snapshot_state()
        return Response(
            200,
            body={
                "format": METRICS_VERSION,
                "tag": "service",
                "cycles": 0,
                "events_emitted": 0,
                "events_dropped": 0,
                "metrics": snapshot,
            },
        )

    def kill_worker(self) -> Response:
        slot = self.pool.kill_worker()
        if slot is None:
            return Response(200, body={"killed_slot": None})
        return Response(200, body={"killed_slot": slot})

    def _count_job(self, outcome: str) -> None:
        self.metrics.counter("service_jobs_total", outcome=outcome).inc()

    # ------------------------------------------------------------------
    # Job runner (dedicated thread)
    # ------------------------------------------------------------------

    def _run_jobs(self) -> None:
        while not self._closing.is_set():
            try:
                record = self._queue.get(timeout=0.1)
            except Empty:
                continue
            if record is None:
                return
            self._execute(record)

    def _execute(self, record: JobRecord) -> None:
        from repro.experiments.runner import run_experiment

        with self._lock:
            record.status = "running"
        started = time.monotonic()
        executed = 0

        def dispatcher(fn: Any, items: list[Any]) -> list[Any]:
            nonlocal executed
            executed += len(items)
            return self.pool.map(fn, items)

        spec = record.spec
        try:
            result = run_experiment(
                spec.experiment,
                quick=spec.quick,
                seed=spec.seed,
                jobs=1,
                cache=self._sim_cache,
                checkpoint_every=self.config.checkpoint_every,
                checkpoint_dir=self._checkpoint_dir,
                dispatcher=dispatcher,
                backend=spec.backend,
            )
        except Exception as exc:
            self.breaker.record_failure()
            with self._lock:
                record.status = "failed"
                record.tasks_executed = executed
                record.job_seconds = time.monotonic() - started
                record.error = {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "attempts": getattr(exc, "attempts", None),
                    "checkpoint": getattr(exc, "checkpoint", None),
                }
                # Unindex so a later submission may retry the experiment.
                self._by_key.pop(record.key, None)
                self._count_job("failed")
            record.finished.set()
            return
        # The stored payload carries only deterministic fields: the
        # report must be byte-identical across fresh, cached and
        # post-chaos-recovery answers (timing lives on the record).
        payload = {
            "experiment": spec.experiment,
            "quick": spec.quick,
            "seed": spec.seed,
            "report": result.render(),
        }
        self.breaker.record_success()
        with self._lock:
            self._job_cache.put(record.key, "service", JOB_CODEC, payload)
            self._job_cache.flush()
            self._sim_cache.flush()
            self._stale[spec.stale_key()] = dict(payload)
            record.result = payload
            record.status = "done"
            record.source = "fresh"
            record.tasks_executed = executed
            record.job_seconds = time.monotonic() - started
            self._count_job("fresh")
        self.metrics.histogram("service_job_seconds").record(
            record.job_seconds
        )
        record.finished.set()


class HttpServer:
    """Minimal stdlib HTTP/1.1 front end for a :class:`SimulationService`."""

    def __init__(self, service: SimulationService, host: str, port: int):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await asyncio.wait_for(
                self._read_request(reader), timeout=30.0
            )
            if request is None:
                return
            method, target, body = request
            response, wait = await self._route(method, target, body)
            if response.record is not None:
                if wait and not response.record.finished.is_set():
                    await asyncio.get_running_loop().run_in_executor(
                        None, response.record.finished.wait
                    )
                document = response.record.describe()
                if response.cache_hit:
                    document["cache_hit"] = True
                status = (
                    200 if response.record.finished.is_set() else response.status
                )
                self._write(writer, status, document, response.headers)
            else:
                self._write(
                    writer, response.status, response.body or {}, response.headers
                )
            await writer.drain()
        except (asyncio.TimeoutError, asyncio.IncompleteReadError):
            pass
        except ValueError as exc:
            self._write(writer, 400, {"error": str(exc)}, {})
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._write(writer, 500, {"error": f"{type(exc).__name__}: {exc}"}, {})
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[Response, bool]:
        service = self.service
        loop = asyncio.get_running_loop()
        if method == "POST" and target == "/v1/jobs":
            try:
                payload = json.loads(body.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError):
                return Response(400, body={"error": "body is not JSON"}), False
            wait = isinstance(payload, dict) and bool(payload.get("wait"))
            response = await loop.run_in_executor(None, service.submit, payload)
            return response, wait
        if method == "GET" and target.startswith("/v1/jobs/"):
            job_id = target.removeprefix("/v1/jobs/")
            return await loop.run_in_executor(None, service.get_job, job_id), False
        if method == "GET" and target == "/v1/health":
            return service.health(), False
        if method == "GET" and target == "/v1/stats":
            return await loop.run_in_executor(None, service.stats), False
        if method == "GET" and target == "/v1/metrics":
            return (
                await loop.run_in_executor(None, service.metrics_document),
                False,
            )
        if method == "POST" and target == "/v1/admin/kill-worker":
            return await loop.run_in_executor(None, service.kill_worker), False
        if target.startswith("/v1/"):
            return Response(405, body={"error": f"{method} {target}"}), False
        return Response(404, body={"error": f"no route {target}"}), False

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, bytes] | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise ValueError("malformed request line")
        method, target, _version = parts
        length = 0
        for _ in range(100):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        else:
            raise ValueError("too many headers")
        if length > _MAX_BODY:
            raise ValueError("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, body

    @staticmethod
    def _write(
        writer: asyncio.StreamWriter,
        status: int,
        body: dict[str, Any],
        headers: dict[str, str],
    ) -> None:
        payload = json.dumps(body).encode()
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)


class ServiceHandle:
    """A service + HTTP server running on a background event loop."""

    def __init__(
        self,
        service: SimulationService,
        http: HttpServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.service = service
        self.http = http
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.http.port

    @property
    def url(self) -> str:
        return f"http://{self.http.host}:{self.http.port}"

    def close(self) -> None:
        future = asyncio.run_coroutine_threadsafe(self.http.stop(), self._loop)
        future.result(timeout=10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self.service.close()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve_in_thread(config: ServiceConfig | None = None) -> ServiceHandle:
    """Start a full service on a daemon thread; returns a live handle.

    The bench client and the integration tests use this to run client
    and server in one process without blocking the caller.
    """
    config = config or ServiceConfig()
    service = SimulationService(config).start()
    http = HttpServer(service, config.host, config.port)
    loop = asyncio.new_event_loop()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_forever()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    future = asyncio.run_coroutine_threadsafe(http.start(), loop)
    future.result(timeout=10.0)
    return ServiceHandle(service, http, loop, thread)


def serve(config: ServiceConfig | None = None, port_file: str | None = None) -> None:
    """Run the service in the foreground until interrupted.

    ``port_file`` (when given) receives the bound port as text — how a
    parent process discovers a ``port=0`` server, e.g. the CI smoke job.
    """
    handle = serve_in_thread(config)
    if port_file:
        Path(port_file).write_text(f"{handle.port}\n")
    print(f"repro.service listening on {handle.url}")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        handle.close()
