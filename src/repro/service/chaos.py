"""Seeded chaos injection for the supervised worker pool.

The fault-injection philosophy of :mod:`repro.faults` — every fault is a
*seeded draw*, so a chaotic run is exactly reproducible — applied at the
process level.  A :class:`ChaosPolicy` decides, per (task, attempt),
whether the executing worker is killed mid-task, stalled past its
deadline, or slowed on result I/O.  Decisions derive from a
:class:`~repro.utils.rng.RandomStream` substream named by the task key
and the attempt number, so they do not depend on scheduling, worker
identity, or wall-clock time — two runs of the same workload under the
same chaos seed inject the same faults into the same tasks.

Injections stop after ``max_injections_per_task`` attempts of a task
have been hit, guaranteeing that a retry budget larger than that bound
always completes the work — chaos proves recovery, it never proves
starvation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError
from repro.utils.rng import RandomStream

__all__ = ["ChaosPolicy"]


@dataclass(frozen=True)
class ChaosPolicy:
    """Per-attempt fault draws for supervised tasks.

    Parameters
    ----------
    seed:
        Root seed of every draw.
    kill_probability:
        Chance an attempt's worker hard-exits (``os._exit``) mid-task —
        the process-level analogue of a crashed chip.
    stall_probability:
        Chance an attempt stalls (sleeps) for ``stall_s`` before doing
        any work, tripping the supervisor's deadline.
    slow_io_probability:
        Chance an attempt's result write is delayed by ``slow_io_s`` —
        slow enough to notice in latency percentiles, not enough to
        trip a deadline.
    kill_after_s:
        Delay from task start to the injected kill, uniform in this
        ``(low, high)`` window, so kills land mid-simulation (after a
        checkpoint exists) rather than before any work happened.
    max_injections_per_task:
        Attempts of one task beyond which no further faults are drawn.
    """

    seed: int = 1988
    kill_probability: float = 0.0
    stall_probability: float = 0.0
    slow_io_probability: float = 0.0
    kill_after_s: tuple[float, float] = (0.05, 0.4)
    stall_s: float = 1.0
    slow_io_s: float = 0.05
    max_injections_per_task: int = 2

    def __post_init__(self) -> None:
        for name in (
            "kill_probability",
            "stall_probability",
            "slow_io_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} out of [0, 1]: {value}")
        low, high = self.kill_after_s
        if low < 0 or high < low:
            raise ConfigurationError(
                f"kill_after_s must be an ordered non-negative window, "
                f"got {self.kill_after_s}"
            )
        if self.max_injections_per_task < 0:
            raise ConfigurationError("max_injections_per_task must be >= 0")

    @property
    def enabled(self) -> bool:
        """Whether any fault has a non-zero probability."""
        return (
            self.kill_probability > 0.0
            or self.stall_probability > 0.0
            or self.slow_io_probability > 0.0
        )

    def draw(self, task_key: str, attempt: int) -> dict[str, Any]:
        """The injection envelope for one attempt of one task.

        Returns a dict the worker loop interprets: ``kill_after_s`` (the
        worker hard-exits that long into the task), ``stall_s`` (sleep
        before work), ``slow_io_s`` (sleep before posting the result).
        Empty dict = attempt runs clean.  At most one fault kind fires
        per attempt (kill shadows stall shadows slow-io), which keeps
        the injected behaviours easy to attribute.
        """
        if not self.enabled or attempt > self.max_injections_per_task:
            return {}
        stream = RandomStream(self.seed, f"chaos/{task_key}/{attempt}")
        if stream.bernoulli(self.kill_probability):
            low, high = self.kill_after_s
            return {"kill_after_s": low + (high - low) * stream.random()}
        if stream.bernoulli(self.stall_probability):
            return {"stall_s": self.stall_s}
        if stream.bernoulli(self.slow_io_probability):
            return {"slow_io_s": self.slow_io_s}
        return {}
