"""Circuit breaker guarding the simulation path of the service.

A classic three-state breaker (CLOSED → OPEN → HALF_OPEN) over the job
runner.  While jobs complete, the breaker stays CLOSED and every request
may simulate.  After ``failure_threshold`` *consecutive* job failures it
OPENs: the service stops admitting fresh simulations and answers from
the degradation ladder instead (see :mod:`repro.service.jobs`).  After
``cooldown`` seconds one probe job is allowed through (HALF_OPEN); its
success closes the breaker, its failure re-opens it for another
cooldown.

The clock is injectable so tests (and the deterministic replay of an
incident) never sleep through a cooldown.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.errors import ConfigurationError

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Thread-safe consecutive-failure breaker with a half-open probe."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if cooldown <= 0:
            raise ConfigurationError("cooldown must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        """Current state, cooldown expiry accounted for."""
        with self._lock:
            return self._observe()

    def _observe(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = self.HALF_OPEN
            self._probe_in_flight = False
        return self._state

    def allow(self) -> bool:
        """Whether one more simulation may start right now.

        In HALF_OPEN exactly one caller gets ``True`` (the probe); the
        rest are refused until the probe reports back.
        """
        with self._lock:
            state = self._observe()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        """A job completed: close the breaker and reset the streak."""
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """A job failed: extend the streak, trip OPEN past the threshold."""
        with self._lock:
            self._consecutive_failures += 1
            tripped = self._consecutive_failures >= self.failure_threshold
            if self._state == self.HALF_OPEN or tripped:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probe_in_flight = False

    @property
    def retry_after(self) -> float:
        """Seconds until the next probe is allowed (0 when not OPEN)."""
        with self._lock:
            if self._observe() != self.OPEN:
                return 0.0
            remaining = self.cooldown - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def snapshot(self) -> dict[str, Any]:
        """State document for ``/v1/stats``."""
        with self._lock:
            return {
                "state": self._observe(),
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": self.cooldown,
            }
