"""Fault-tolerant simulation job service.

An asyncio HTTP/JSON front end (:mod:`repro.service.server`) over a
supervised farm of simulation worker processes
(:mod:`repro.service.supervisor`).  Experiment requests are
content-addressed and deduplicated against :mod:`repro.cache`; worker
deaths are detected by heartbeat and resumed from checkpoints under a
bounded, backed-off retry budget (:mod:`repro.service.backoff`); a
circuit breaker (:mod:`repro.service.breaker`) degrades answers down a
marked ladder (:mod:`repro.service.jobs`) instead of refusing; and a
seeded chaos mode (:mod:`repro.service.chaos`) makes all of that
testable deterministically.  ``python -m repro.service --help``.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.chaos import ChaosPolicy
from repro.service.client import ServiceClient, run_bench
from repro.service.jobs import DEGRADATION_LADDER, JobRecord, JobSpec
from repro.service.server import (
    ServiceConfig,
    ServiceHandle,
    SimulationService,
    serve,
    serve_in_thread,
)
from repro.service.supervisor import SupervisedPool, SupervisorConfig

__all__ = [
    "ChaosPolicy",
    "CircuitBreaker",
    "DEGRADATION_LADDER",
    "JobRecord",
    "JobSpec",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHandle",
    "SimulationService",
    "SupervisedPool",
    "SupervisorConfig",
    "run_bench",
    "serve",
    "serve_in_thread",
]
