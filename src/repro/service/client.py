"""HTTP client and Zipf load generator for the simulation service.

:class:`ServiceClient` is a tiny stdlib (:mod:`http.client`) wrapper —
one connection per request, matching the server's ``Connection: close``
discipline — that honest clients and the tests share.  On a 429 it backs
off per :data:`repro.service.backoff.CLIENT_RETRY` (deterministic jitter
from the caller's RNG stream key) before retrying.

:func:`run_bench` is the load generator behind ``python -m repro.service
bench``: it drives the service with a **Zipf-distributed** request mix —
a few popular experiment specs dominating a long tail, the canonical
shape of a result-serving workload and the one content addressing is
designed for.  It reports requests/s, cache hit-rate, latency
percentiles, degraded/rejected counts, and (when chaos or kills are
involved) the supervisor's measured recovery times.
"""

from __future__ import annotations

import http.client
import json
import math
import threading
import time
from typing import Any
from urllib.parse import urlsplit

from repro.errors import ConfigurationError
from repro.service.backoff import CLIENT_RETRY
from repro.utils.rng import RandomStream

__all__ = ["ServiceClient", "percentile", "run_bench"]


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by nearest-rank.

    Returns 0.0 for an empty sample list (a bench that sent nothing).
    """
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile out of [0, 1]: {q}")
    ordered = sorted(samples)
    rank = math.ceil(q * len(ordered))
    return ordered[min(len(ordered), max(1, rank)) - 1]


class ServiceClient:
    """Minimal JSON-over-HTTP client for one service base URL."""

    def __init__(self, base_url: str, timeout: float = 300.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ConfigurationError(
                f"service URL must be http://host:port, got {base_url!r}"
            )
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout

    def request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """One request; returns (status, JSON body, lowercased headers)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            document = json.loads(raw.decode()) if raw else {}
            header_map = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, document, header_map
        finally:
            connection.close()

    # -- convenience endpoints ------------------------------------------

    def submit(
        self,
        experiment: str,
        quick: bool = True,
        seed: int = 1988,
        wait: bool = True,
        retry_key: str | None = None,
        backend: str | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """Submit a job; on 429, back off per ``CLIENT_RETRY`` and retry.

        ``retry_key`` seeds the deterministic retry jitter (defaults to
        the spec itself).  ``backend`` forces the job's simulation
        backend (results are byte-identical either way, so jobs
        differing only in backend still coalesce server-side).
        """
        payload: dict[str, Any] = {
            "experiment": experiment,
            "quick": quick,
            "seed": seed,
            "wait": wait,
        }
        if backend is not None:
            payload["backend"] = backend
        key = retry_key or f"{experiment}/{seed}"
        attempt = 0
        while True:
            attempt += 1
            status, document, headers = self.request(
                "POST", "/v1/jobs", payload
            )
            if status != 429 or CLIENT_RETRY.exhausted(attempt):
                return status, document
            hinted = float(headers.get("retry-after", 0.0) or 0.0)
            time.sleep(max(hinted, CLIENT_RETRY.delay(attempt, key=key)))

    def job(self, job_id: str) -> tuple[int, dict[str, Any]]:
        status, document, _ = self.request("GET", f"/v1/jobs/{job_id}")
        return status, document

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/v1/health")[1]

    def stats(self) -> dict[str, Any]:
        return self.request("GET", "/v1/stats")[1]

    def metrics(self) -> dict[str, Any]:
        return self.request("GET", "/v1/metrics")[1]

    def kill_worker(self) -> dict[str, Any]:
        return self.request("POST", "/v1/admin/kill-worker", {})[1]


def _zipf_catalog(
    experiments: list[str], seeds: list[int], exponent: float
) -> tuple[list[tuple[str, int]], list[float]]:
    """The spec catalog and its cumulative Zipf weights, rank order."""
    catalog = [(e, s) for e in experiments for s in seeds]
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(catalog))]
    total = sum(weights)
    cumulative: list[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    return catalog, cumulative


def _draw(cumulative: list[float], u: float) -> int:
    for index, edge in enumerate(cumulative):
        if u <= edge:
            return index
    return len(cumulative) - 1


def run_bench(
    url: str,
    requests: int = 60,
    clients: int = 4,
    experiments: list[str] | None = None,
    seeds: list[int] | None = None,
    zipf_exponent: float = 1.1,
    seed: int = 1988,
    kill_workers: int = 0,
) -> dict[str, Any]:
    """Drive ``requests`` Zipf-distributed jobs at the service.

    ``kill_workers`` > 0 hard-kills that many busy workers (via the admin
    endpoint) spread across the run, so the report's recovery numbers
    reflect actual mid-simulation deaths.  The request *sequence* is
    deterministic in ``seed``; timing numbers are honest wall clock.
    """
    experiments = experiments or ["table1", "figure1"]
    seeds = seeds or [1988, 7, 42]
    catalog, cumulative = _zipf_catalog(experiments, seeds, zipf_exponent)
    stream = RandomStream(seed, "service/bench")
    plan = [_draw(cumulative, stream.random()) for _ in range(requests)]

    client = ServiceClient(url)
    lock = threading.Lock()
    latencies: list[float] = []
    outcomes = {"fresh": 0, "hit": 0, "degraded": 0, "rejected": 0, "failed": 0}
    cursor = {"next": 0}

    def _worker(worker_id: int) -> None:
        while True:
            with lock:
                position = cursor["next"]
                if position >= len(plan):
                    return
                cursor["next"] = position + 1
            experiment, spec_seed = catalog[plan[position]]
            begin = time.monotonic()
            status, document = client.submit(
                experiment,
                seed=spec_seed,
                wait=True,
                retry_key=f"bench/{worker_id}/{position}",
            )
            elapsed = time.monotonic() - begin
            with lock:
                if status == 429:
                    outcomes["rejected"] += 1
                    continue
                latencies.append(elapsed)
                result = document.get("result") or {}
                if result.get("degraded"):
                    outcomes["degraded"] += 1
                elif document.get("status") == "failed":
                    outcomes["failed"] += 1
                elif document.get("cache_hit") or document.get("source") in (
                    "cached",
                    "stale",
                    "analytic",
                ):
                    outcomes["hit"] += 1
                else:
                    outcomes["fresh"] += 1

    killer_stop = threading.Event()

    def _killer() -> None:
        for _ in range(kill_workers):
            if killer_stop.wait(0.4):
                return
            client.kill_worker()

    begin = time.monotonic()
    threads = [
        threading.Thread(target=_worker, args=(n,), daemon=True)
        for n in range(clients)
    ]
    killer = threading.Thread(target=_killer, daemon=True)
    for thread in threads:
        thread.start()
    killer.start()
    for thread in threads:
        thread.join()
    killer_stop.set()
    killer.join(timeout=5.0)
    wall = time.monotonic() - begin

    answered = len(latencies)
    stats = client.stats()
    return {
        "requests": requests,
        "clients": clients,
        "catalog_size": len(catalog),
        "zipf_exponent": zipf_exponent,
        "wall_seconds": round(wall, 3),
        "requests_per_second": round(answered / wall, 2) if wall else 0.0,
        "answered": answered,
        "outcomes": outcomes,
        "cache_hit_rate": (
            round((outcomes["hit"] + outcomes["degraded"]) / answered, 4)
            if answered
            else 0.0
        ),
        "latency_seconds": {
            "p50": round(percentile(latencies, 0.50), 4),
            "p99": round(percentile(latencies, 0.99), 4),
            "max": round(max(latencies), 4) if latencies else 0.0,
        },
        "workers_killed": kill_workers,
        "recovery": {
            "worker_restarts": stats["pool"]["worker_restarts"],
            "tasks_retried": stats["pool"]["tasks_retried"],
            "recoveries": stats["pool"]["recoveries"],
            "mean_recovery_seconds": round(
                stats["pool"]["mean_recovery_seconds"], 4
            ),
        },
        "server_jobs": stats["jobs"],
    }
