"""Command-line interface: ``python -m repro.service`` / ``repro-service``.

Subcommands::

    serve    run the job service in the foreground
    submit   submit one job to a running service and print the answer
    bench    drive a Zipf workload (against a URL, or a self-hosted
             server) and print/write the load report
    predict  print the analytic degraded-mode prediction for a spec
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.errors import ReproError
from repro.service.chaos import ChaosPolicy
from repro.service.client import ServiceClient, run_bench
from repro.service.jobs import JobSpec, analytic_prediction
from repro.service.server import ServiceConfig, serve, serve_in_thread

__all__ = ["main"]


def _chaos_from_args(args: argparse.Namespace) -> ChaosPolicy | None:
    if not (args.chaos_kill or args.chaos_stall or args.chaos_slow_io):
        return None
    return ChaosPolicy(
        seed=args.chaos_seed,
        kill_probability=args.chaos_kill,
        stall_probability=args.chaos_stall,
        slow_io_probability=args.chaos_slow_io,
    )


def _add_chaos_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--chaos-kill",
        type=float,
        default=0.0,
        metavar="P",
        help="probability a task attempt's worker is killed mid-run",
    )
    parser.add_argument(
        "--chaos-stall",
        type=float,
        default=0.0,
        metavar="P",
        help="probability a task attempt stalls before working",
    )
    parser.add_argument(
        "--chaos-slow-io",
        type=float,
        default=0.0,
        metavar="P",
        help="probability a task attempt's result write is delayed",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=1988,
        help="seed of the chaos draws (default: 1988)",
    )


def _service_config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        data_dir=args.data_dir,
        checkpoint_every=args.checkpoint_every,
        task_deadline=args.task_deadline,
        chaos=_chaos_from_args(args),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="fault-tolerant simulation job service",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve_cmd = commands.add_parser("serve", help="run the job service")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=8023, help="0 = pick a free port"
    )
    serve_cmd.add_argument("--workers", type=int, default=2)
    serve_cmd.add_argument("--queue-limit", type=int, default=8)
    serve_cmd.add_argument(
        "--data-dir", default=None, help="caches + checkpoints (default: temp)"
    )
    serve_cmd.add_argument("--checkpoint-every", type=int, default=500)
    serve_cmd.add_argument("--task-deadline", type=float, default=120.0)
    serve_cmd.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here (for --port 0 discovery)",
    )
    _add_chaos_arguments(serve_cmd)

    submit_cmd = commands.add_parser(
        "submit", help="submit one job and print the response"
    )
    submit_cmd.add_argument("experiment")
    submit_cmd.add_argument("--url", default="http://127.0.0.1:8023")
    submit_cmd.add_argument("--seed", type=int, default=1988)
    submit_cmd.add_argument(
        "--full", action="store_true", help="full fidelity (default: quick)"
    )
    submit_cmd.add_argument(
        "--backend",
        choices=["reference", "numpy"],
        default=None,
        help="force the job's simulation backend (results are "
        "byte-identical; numpy vectorizes the simulation grids)",
    )
    submit_cmd.add_argument(
        "--no-wait",
        action="store_true",
        help="return the job id immediately instead of the result",
    )

    bench_cmd = commands.add_parser(
        "bench", help="drive a Zipf workload and report service behaviour"
    )
    bench_cmd.add_argument(
        "--url",
        default=None,
        help="target service (default: self-host a fresh one)",
    )
    bench_cmd.add_argument("--requests", type=int, default=60)
    bench_cmd.add_argument("--clients", type=int, default=4)
    bench_cmd.add_argument(
        "--experiments",
        default="table1,figure1",
        help="comma-separated experiment catalog",
    )
    bench_cmd.add_argument(
        "--seeds", default="1988,7,42", help="comma-separated seed catalog"
    )
    bench_cmd.add_argument("--zipf", type=float, default=1.1)
    bench_cmd.add_argument("--seed", type=int, default=1988)
    bench_cmd.add_argument("--workers", type=int, default=2)
    bench_cmd.add_argument("--queue-limit", type=int, default=8)
    bench_cmd.add_argument(
        "--kill-workers",
        type=int,
        default=0,
        metavar="N",
        help="hard-kill N busy workers during the run (recovery measure)",
    )
    bench_cmd.add_argument(
        "--output", default=None, help="also write the report JSON here"
    )
    _add_chaos_arguments(bench_cmd)

    predict_cmd = commands.add_parser(
        "predict", help="print the analytic degraded-mode prediction"
    )
    predict_cmd.add_argument("experiment")
    predict_cmd.add_argument("--seed", type=int, default=1988)
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    serve(_service_config(args), port_file=args.port_file)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    try:
        status, document = client.submit(
            args.experiment,
            quick=not args.full,
            seed=args.seed,
            wait=not args.no_wait,
            backend=args.backend,
        )
    except OSError as error:
        print(
            f"error: no service reachable at {args.url} ({error}); "
            "start one with `python -m repro.service serve`",
            file=sys.stderr,
        )
        return 2
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0 if status in (200, 202) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    experiments = [e for e in args.experiments.split(",") if e]
    seeds = [int(s) for s in args.seeds.split(",") if s]
    handle = None
    url = args.url
    chaos = _chaos_from_args(args)
    if url is None:
        handle = serve_in_thread(
            ServiceConfig(
                port=0,
                workers=args.workers,
                queue_limit=args.queue_limit,
                chaos=chaos,
            )
        )
        url = handle.url
    try:
        report: dict[str, Any] = run_bench(
            url,
            requests=args.requests,
            clients=args.clients,
            experiments=experiments,
            seeds=seeds,
            zipf_exponent=args.zipf,
            seed=args.seed,
            kill_workers=args.kill_workers,
        )
    finally:
        if handle is not None:
            handle.close()
    report["chaos"] = {
        "enabled": chaos is not None and chaos.enabled,
        "kill_probability": chaos.kill_probability if chaos else 0.0,
        "stall_probability": chaos.stall_probability if chaos else 0.0,
        "slow_io_probability": chaos.slow_io_probability if chaos else 0.0,
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.output:
        with open(args.output, "w") as sink:
            sink.write(text + "\n")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    spec = JobSpec.from_payload({"experiment": args.experiment, "seed": args.seed})
    print(json.dumps(analytic_prediction(spec), indent=2, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "bench": _cmd_bench,
        "predict": _cmd_predict,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
