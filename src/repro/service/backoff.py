"""Service-tuned retry and backpressure schedules.

One place for every delay the service hands out, all derived from the
shared :class:`repro.utils.backoff.BackoffPolicy` (the same machinery
:mod:`repro.faults.transport` uses for link-level retransmits and
:mod:`repro.perf.parallel` for pool restarts — one backoff idiom across
the repo, tuned per layer):

* :data:`TASK_RETRY` — per-task retry schedule of the supervised worker
  pool: how long a task killed with its worker waits before its next
  attempt, and how many attempts it gets before the pool gives up with a
  structured :class:`~repro.errors.WorkerFailedError`.
* :data:`CLIENT_RETRY` — what a well-behaved client should do between
  attempts after a 429/503; the bench client follows it.
* :func:`retry_after` — the ``Retry-After`` value the server attaches to
  a rejection, scaled by how deep the admission queue already is.
"""

from __future__ import annotations

from repro.utils.backoff import BackoffPolicy

__all__ = ["CLIENT_RETRY", "TASK_RETRY", "retry_after"]

#: Supervised-pool task retries: 4 attempts, 0.1 s base, ×2 growth,
#: capped at 1.6 s, with deterministic ±50 % jitter so several tasks
#: re-queued by one worker death do not thunder back in lockstep.
TASK_RETRY = BackoffPolicy(
    base=0.1, factor=2.0, cap_multiple=16.0, max_attempts=4, jitter=0.5
)

#: Client-side schedule after a 429/503: 0.2 s base, ×2, capped at 3.2 s,
#: up to 6 attempts.  Jitter here desynchronizes *clients*, the one place
#: where everyone backing off identically would defeat the purpose.
CLIENT_RETRY = BackoffPolicy(
    base=0.2, factor=2.0, cap_multiple=16.0, max_attempts=6, jitter=0.5
)

#: Base Retry-After of an admission rejection, seconds.
_ADMISSION_BASE = 0.5


def retry_after(queue_depth: int, queue_limit: int) -> float:
    """Retry-After (seconds) for a 429, scaled by queue pressure.

    An empty-ish queue suggests a transient spike (come back soon); a
    queue at its limit means sustained overload (back off harder).  The
    value is deterministic — per-client jitter is the client's job
    (:data:`CLIENT_RETRY`), not the server's.
    """
    if queue_limit <= 0:
        return _ADMISSION_BASE
    pressure = min(1.0, max(0.0, queue_depth / queue_limit))
    return round(_ADMISSION_BASE * (1.0 + 3.0 * pressure), 3)
