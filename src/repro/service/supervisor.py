"""Supervised worker-process pool: heartbeats, deadlines, bounded retries.

This is the robustness core of :mod:`repro.service`.  Where
:func:`repro.perf.parallel.parallel_simulate` restarts an anonymous
``ProcessPoolExecutor`` when it breaks, the :class:`SupervisedPool` keeps
*named* worker processes under continuous supervision:

* each worker carries a **heartbeat thread** writing into shared memory;
  a stale heartbeat (wedged process) or a dead PID is detected within a
  supervision tick, not at the end of the batch;
* each task attempt carries a **deadline**; an attempt that overruns it
  has its worker killed and the task retried;
* retries follow the shared :class:`~repro.utils.backoff.BackoffPolicy`
  (deterministic jitter, bounded budget).  A task that exhausts the
  budget fails with a structured
  :class:`~repro.errors.WorkerFailedError` — the contract is *deliver or
  say so*, never hang;
* a replacement attempt of a checkpointed simulation task resumes from
  the dead worker's last on-disk checkpoint (the task functions of
  :mod:`repro.perf.parallel` already resume when their checkpoint file
  exists), so a kill costs the cycles since the last checkpoint, not the
  whole run;
* a seeded :class:`~repro.service.chaos.ChaosPolicy` can inject kills,
  stalls and slow result I/O per attempt — reproducibly.

The pool is thread-safe: multiple threads may :meth:`map` concurrently
(the simulation service shards several jobs' grid points over one pool).
Every queue is per-worker and recreated on respawn, so a worker killed
mid-write can corrupt at most its own channel, never the pool.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
import time
import traceback
import multiprocessing as mp
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError, WorkerFailedError
from repro.service.backoff import TASK_RETRY
from repro.service.chaos import ChaosPolicy
from repro.telemetry.metrics import MetricsRegistry
from repro.utils.backoff import BackoffPolicy

__all__ = ["SupervisedPool", "SupervisorConfig"]

#: Exit code of a chaos-injected worker kill (mirrors SIGKILL's 128+9).
CHAOS_EXIT_CODE = 137


def _default_retry() -> BackoffPolicy:
    """Retry budget of the service pool (see :mod:`repro.service.backoff`)."""
    return TASK_RETRY


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning of the supervision loop (all times in seconds)."""

    workers: int = 2
    #: Cadence of each worker's heartbeat writes.
    heartbeat_interval: float = 0.1
    #: Heartbeat age beyond which a live-looking process counts as wedged.
    heartbeat_timeout: float = 3.0
    #: Per-attempt wall-clock budget (``None`` disables deadlines).
    task_deadline: float | None = 120.0
    #: Retry schedule and budget shared with the rest of the repo.
    retry: BackoffPolicy = field(default_factory=_default_retry)
    #: ``multiprocessing`` start method (``None``: fork where available).
    start_method: str | None = None
    #: Supervision loop cadence.
    tick: float = 0.02

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("pool needs at least one worker")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ConfigurationError("heartbeat times must be positive")
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ConfigurationError("task_deadline must be positive")
        if self.tick <= 0:
            raise ConfigurationError("tick must be positive")


def _encode_error(exc: BaseException) -> tuple[str, bytes | str, str]:
    """Make an exception transportable: pickled when possible, else text."""
    text = traceback.format_exc()
    try:
        return ("pickle", pickle.dumps(exc), text)
    except Exception:
        return ("text", f"{type(exc).__name__}: {exc}", text)


def _decode_error(payload: tuple[str, bytes | str, str]) -> BaseException:
    kind, data, text = payload
    if kind == "pickle":
        try:
            exc = pickle.loads(data)  # type: ignore[arg-type]
            if isinstance(exc, BaseException):
                return exc
        except Exception:
            pass
        data = "worker exception (unpicklable)"
    return WorkerFailedError(f"{data}\n--- worker traceback ---\n{text}")


def _worker_main(
    slot: int,
    inbox: Any,
    results: Any,
    heartbeats: Any,
    interval: float,
) -> None:
    """Worker process body: beat, take a task, run it, post the outcome."""
    stop_beating = threading.Event()

    def _beat() -> None:
        while not stop_beating.is_set():
            heartbeats[slot] = time.monotonic()
            stop_beating.wait(interval)

    threading.Thread(target=_beat, daemon=True).start()
    while True:
        envelope = inbox.get()
        if envelope is None:
            return
        task_uid, fn, item, inject = envelope
        kill_timer: threading.Timer | None = None
        kill_after = inject.get("kill_after_s")
        if kill_after is not None:
            # A chaos kill is a hard process death — os._exit skips all
            # cleanup, exactly like SIGKILL or an OOM kill would.
            kill_timer = threading.Timer(
                kill_after, os._exit, args=(CHAOS_EXIT_CODE,)
            )
            kill_timer.daemon = True
            kill_timer.start()
        stall = inject.get("stall_s")
        if stall:
            time.sleep(stall)
        try:
            value = fn(item)
        except BaseException as exc:
            if kill_timer is not None:
                kill_timer.cancel()
            results.put(("error", task_uid, _encode_error(exc)))
        else:
            if kill_timer is not None:
                kill_timer.cancel()
            slow = inject.get("slow_io_s")
            if slow:
                time.sleep(slow)
            results.put(("ok", task_uid, value))


class _Task:
    """Parent-side state of one unit of work."""

    __slots__ = (
        "uid",
        "key",
        "fn",
        "item",
        "state",
        "attempts",
        "ready_at",
        "assigned_slot",
        "assigned_at",
        "result",
        "error",
        "first_death",
        "finished",
    )

    def __init__(self, uid: int, key: str, fn: Callable[[Any], Any], item: Any):
        self.uid = uid
        self.key = key
        self.fn = fn
        self.item = item
        self.state = "ready"  # ready | waiting | running | done | failed
        self.attempts = 0
        self.ready_at = 0.0
        self.assigned_slot: int | None = None
        self.assigned_at = 0.0
        self.result: Any = None
        self.error: BaseException | None = None
        self.first_death: float | None = None
        self.finished = threading.Event()


class _Worker:
    """Parent-side handle of one worker slot."""

    __slots__ = ("slot", "process", "inbox", "results", "busy_uid")

    def __init__(self) -> None:
        self.slot = 0
        self.process: Any = None
        self.inbox: Any = None
        self.results: Any = None
        self.busy_uid: int | None = None


class SupervisedPool:
    """A supervised, chaos-injectable pool of worker processes.

    Use as a context manager, or call :meth:`start`/:meth:`stop`
    explicitly.  :meth:`map` is the work interface and is safe to call
    from several threads at once; its signature matches the
    ``dispatcher`` hook of :class:`repro.cache.runtime.CacheContext`, so
    ``pool.map`` can be installed directly as an experiment dispatcher.
    """

    def __init__(
        self,
        config: SupervisorConfig | None = None,
        chaos: ChaosPolicy | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or SupervisorConfig()
        self.chaos = chaos
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        method = self.config.start_method
        if method is None:
            method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(method)
        self._heartbeats = self._ctx.Array("d", self.config.workers, lock=False)
        self._lock = threading.RLock()
        self._tasks: dict[int, _Task] = {}
        self._ready: deque[int] = deque()
        self._waiting: list[int] = []
        self._workers: list[_Worker] = []
        self._uids = itertools.count(1)
        self._running = False
        self._thread: threading.Thread | None = None
        # Metric handles cached once (hot path: one tick every ~20 ms).
        self._m_completed = self.metrics.counter(
            "service_tasks_total", outcome="completed"
        )
        self._m_retried = self.metrics.counter(
            "service_tasks_total", outcome="retried"
        )
        self._m_failed = self.metrics.counter(
            "service_tasks_total", outcome="failed"
        )
        self._m_task_seconds = self.metrics.histogram("service_task_seconds")
        self._m_recovery = self.metrics.histogram("service_recovery_seconds")
        self._m_busy = self.metrics.gauge("service_workers_busy")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "SupervisedPool":
        """Spawn every worker and the supervision thread."""
        with self._lock:
            if self._running:
                return self
            self._running = True
            self._workers = []
            for slot in range(self.config.workers):
                worker = _Worker()
                worker.slot = slot
                self._workers.append(worker)
                self._spawn(worker)
        self._thread = threading.Thread(
            target=self._supervise, name="repro-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop supervision and terminate every worker."""
        with self._lock:
            if not self._running:
                return
            self._running = False
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for worker in self._workers:
            process = worker.process
            if process is None:
                continue
            try:
                worker.inbox.put(None)
            except Exception:
                pass
            process.join(timeout=0.5)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)

    def __enter__(self) -> "SupervisedPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Work interface
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: list[Any]) -> list[Any]:
        """Run ``fn`` over ``items`` on the pool; results in input order.

        Blocks until every item completed or permanently failed.  An
        exception raised *inside* ``fn`` is deterministic and propagates
        unchanged without retry; worker deaths, stalls and deadline
        overruns are retried per the configured
        :class:`~repro.utils.backoff.BackoffPolicy` and surface as
        :class:`WorkerFailedError` only once the budget is exhausted.
        """
        if not self._running:
            raise ConfigurationError("SupervisedPool.map before start()")
        items = list(items)
        tasks: list[_Task] = []
        with self._lock:
            for item in items:
                uid = next(self._uids)
                key = f"task-{uid}"
                task = _Task(uid, key, fn, item)
                self._tasks[uid] = task
                self._ready.append(uid)
                tasks.append(task)
        for task in tasks:
            task.finished.wait()
        results = []
        first_error: BaseException | None = None
        with self._lock:
            for task in tasks:
                if task.error is not None and first_error is None:
                    first_error = task.error
                results.append(task.result)
                del self._tasks[task.uid]
        if first_error is not None:
            raise first_error
        return results

    def kill_worker(self, slot: int | None = None) -> int | None:
        """Hard-kill one worker (prefer a busy one); returns its slot.

        The admin/chaos entry point: the supervision loop detects the
        death, retries the victim's task from its checkpoint, and
        respawns the slot — exactly as for any other crash.
        """
        with self._lock:
            candidates = [w for w in self._workers if w.busy_uid is not None]
            pool = candidates or self._workers
            if slot is not None:
                pool = [w for w in self._workers if w.slot == slot]
            if not pool:
                return None
            victim = pool[0]
            if victim.process is None or not victim.process.is_alive():
                return None
            victim.process.kill()
            return victim.slot

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Counters and queue depths for the service's ``/v1/stats``."""
        with self._lock:
            busy = sum(1 for w in self._workers if w.busy_uid is not None)
            restarts = sum(
                c.value
                for c in self.metrics.counters("service_worker_restarts_total")
            )
            recovery = self._m_recovery.stats
            return {
                "workers": self.config.workers,
                "busy_workers": busy,
                "tasks_ready": len(self._ready),
                "tasks_waiting": len(self._waiting),
                "tasks_completed": self._m_completed.value,
                "tasks_retried": self._m_retried.value,
                "tasks_failed": self._m_failed.value,
                "worker_restarts": restarts,
                "recoveries": recovery.count,
                "mean_recovery_seconds": (
                    recovery.mean if recovery.count else 0.0
                ),
            }

    @property
    def saturated(self) -> bool:
        """Whether every worker is busy and work is queued behind them."""
        with self._lock:
            busy = all(w.busy_uid is not None for w in self._workers)
            return busy and bool(self._ready or self._waiting)

    # ------------------------------------------------------------------
    # Supervision internals (all called with the lock held unless noted)
    # ------------------------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        """(Re)create one worker slot with fresh, private queues."""
        worker.inbox = self._ctx.Queue()
        worker.results = self._ctx.Queue()
        self._heartbeats[worker.slot] = time.monotonic()
        worker.busy_uid = None
        worker.process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker.slot,
                worker.inbox,
                worker.results,
                self._heartbeats,
                self.config.heartbeat_interval,
            ),
            daemon=True,
        )
        worker.process.start()

    def _supervise(self) -> None:
        """Supervision loop: drain results, detect deaths, assign work."""
        while True:
            with self._lock:
                if not self._running:
                    return
                self._drain_results()
                self._check_workers()
                self._check_deadlines()
                self._promote_waiting()
                self._assign_ready()
                self._m_busy.set(
                    sum(1 for w in self._workers if w.busy_uid is not None)
                )
            time.sleep(self.config.tick)

    def _drain_results(self) -> None:
        for worker in self._workers:
            while True:
                try:
                    message = worker.results.get_nowait()
                except Exception:
                    # Empty queue — or a channel corrupted by a worker
                    # killed mid-write; the liveness check that follows
                    # will catch the latter via the dead PID.
                    break
                kind, uid, payload = message
                task = self._tasks.get(uid)
                if task is None or task.state != "running":
                    continue  # stale duplicate from a superseded attempt
                if task.assigned_slot != worker.slot:
                    continue
                worker.busy_uid = None
                if kind == "ok":
                    self._complete(task, payload)
                else:
                    # A deterministic in-task exception: no retry.
                    task.state = "failed"
                    task.error = _decode_error(payload)
                    self._m_failed.inc()
                    task.finished.set()

    def _complete(self, task: _Task, value: Any) -> None:
        task.state = "done"
        task.result = value
        self._m_completed.inc()
        now = time.monotonic()
        self._m_task_seconds.record(now - task.assigned_at)
        if task.first_death is not None:
            self._m_recovery.record(now - task.first_death)
        task.finished.set()

    def _check_workers(self) -> None:
        now = time.monotonic()
        for worker in self._workers:
            process = worker.process
            if process is None:
                continue
            if not process.is_alive():
                self._worker_died(worker, reason="died")
                continue
            stale = now - self._heartbeats[worker.slot]
            if stale > self.config.heartbeat_timeout:
                process.kill()
                self._worker_died(worker, reason="heartbeat")

    def _check_deadlines(self) -> None:
        deadline = self.config.task_deadline
        if deadline is None:
            return
        now = time.monotonic()
        for worker in self._workers:
            uid = worker.busy_uid
            if uid is None:
                continue
            task = self._tasks.get(uid)
            if task is None or task.state != "running":
                continue
            if now - task.assigned_at > deadline:
                self.metrics.counter(
                    "service_deadline_expirations_total"
                ).inc()
                worker.process.kill()
                self._worker_died(worker, reason="deadline")

    def _worker_died(self, worker: _Worker, reason: str) -> None:
        """Requeue (or fail) the victim's task; respawn the slot."""
        self.metrics.counter(
            "service_worker_restarts_total", reason=reason
        ).inc()
        uid = worker.busy_uid
        if uid is not None:
            task = self._tasks.get(uid)
            if task is not None and task.state == "running":
                self._attempt_failed(task)
        self._spawn(worker)

    def _attempt_failed(self, task: _Task) -> None:
        now = time.monotonic()
        if task.first_death is None:
            task.first_death = now
        policy = self.config.retry
        if policy.exhausted(task.attempts):
            task.state = "failed"
            task.error = WorkerFailedError(
                f"task {task.key} lost its worker {task.attempts} time(s) "
                f"and exhausted the retry budget of {policy.max_attempts}",
                task_id=task.key,
                attempts=task.attempts,
                checkpoint=self._checkpoint_of(task),
            )
            self._m_failed.inc()
            task.finished.set()
            return
        task.state = "waiting"
        task.assigned_slot = None
        task.ready_at = now + policy.delay(task.attempts, key=task.key)
        self._waiting.append(task.uid)
        self._m_retried.inc()

    @staticmethod
    def _checkpoint_of(task: _Task) -> str | None:
        item = task.item
        if (
            isinstance(item, tuple)
            and len(item) == 5
            and isinstance(item[4], str)
        ):
            return item[4]
        return None

    def _promote_waiting(self) -> None:
        if not self._waiting:
            return
        now = time.monotonic()
        still_waiting: list[int] = []
        for uid in self._waiting:
            task = self._tasks.get(uid)
            if task is None:
                continue
            if task.ready_at <= now:
                task.state = "ready"
                self._ready.append(uid)
            else:
                still_waiting.append(uid)
        self._waiting = still_waiting

    def _assign_ready(self) -> None:
        for worker in self._workers:
            if not self._ready:
                return
            if worker.busy_uid is not None:
                continue
            if worker.process is None or not worker.process.is_alive():
                continue
            uid = self._ready.popleft()
            task = self._tasks.get(uid)
            if task is None:
                continue
            task.attempts += 1
            task.state = "running"
            task.assigned_slot = worker.slot
            task.assigned_at = time.monotonic()
            inject: dict[str, Any] = {}
            if self.chaos is not None:
                inject = self.chaos.draw(task.key, task.attempts)
                if inject:
                    self.metrics.counter(
                        "service_chaos_injections_total",
                        kind=next(iter(inject)).removesuffix("_s"),
                    ).inc()
            worker.busy_uid = uid
            worker.inbox.put((uid, task.fn, task.item, inject))
