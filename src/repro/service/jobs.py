"""Job specs, job records and the graceful-degradation ladder.

A *job* is one experiment request — the unit a client submits, the
service deduplicates, and a worker pool executes.  The spec is
content-addressed with the same :func:`repro.cache.keys.cache_key`
machinery the simulation cache uses, which buys the service its core
scaling property for free: a million users asking for ``figure3`` hash
to one key, so they cost one simulation (and the key folds in the source
fingerprint, so a code change can never serve stale results as fresh).

When the service cannot simulate — workers saturated or crashing, the
circuit breaker open — it walks the **degradation ladder** instead of
failing or hanging:

``fresh``
    A simulation actually ran for this request.
``cached``
    An exact-key hit: bit-identical to what a fresh run would produce
    under the current source tree.
``stale``
    A previously computed result for the same *spec* whose key no longer
    matches (typically: produced by an older source tree).  Clearly
    better than nothing, clearly marked.
``analytic``
    A milliseconds-fast :mod:`repro.markov` prediction — exact
    steady-state analysis of the 2×2 discarding switch plus the
    head-of-line saturation law — when no simulated result exists at
    all.

Every non-``fresh``/-``cached`` payload carries ``degraded: true`` so a
client can always tell what it got.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.cache.keys import cache_key
from repro.utils.digest import digest_json
from repro.errors import ConfigurationError

__all__ = [
    "DEGRADATION_LADDER",
    "JOB_CODEC",
    "JobRecord",
    "JobSpec",
    "analytic_prediction",
]

#: Cache codec under which completed job payloads are stored (plain JSON).
JOB_CODEC = "json"

#: The service's answer-quality ladder, best first.
DEGRADATION_LADDER = ("fresh", "cached", "stale", "analytic")


@dataclass(frozen=True)
class JobSpec:
    """One experiment request: which experiment, at what fidelity, what seed.

    ``backend`` optionally forces a simulation backend for the job
    (``"reference"``/``"numpy"``); ``None`` lets the worker's ambient
    ``REPRO_BACKEND`` preference apply.  Because both backends produce
    byte-identical results, the backend is deliberately **excluded**
    from the spec's canonical payload — a numpy job and a reference job
    for the same experiment coalesce to one cache entry.
    """

    experiment: str
    quick: bool = True
    seed: int = 1988
    backend: str | None = None

    @classmethod
    def from_payload(cls, payload: Any) -> "JobSpec":
        """Validate a client JSON payload into a spec.

        Raises :class:`ConfigurationError` on anything malformed — the
        server maps that to a 400, never a 500.
        """
        from repro.experiments.runner import EXPERIMENTS
        from repro.kernel.base import normalize_backend

        if not isinstance(payload, dict):
            raise ConfigurationError("job payload must be a JSON object")
        experiment = payload.get("experiment")
        if not isinstance(experiment, str):
            raise ConfigurationError("job payload needs an 'experiment' name")
        experiment = experiment.lower()
        if experiment not in EXPERIMENTS:
            raise ConfigurationError(
                f"unknown experiment {experiment!r}; "
                f"choose from {sorted(EXPERIMENTS)}"
            )
        quick = payload.get("quick", True)
        if not isinstance(quick, bool):
            raise ConfigurationError("'quick' must be a boolean")
        seed = payload.get("seed", 1988)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ConfigurationError("'seed' must be an integer")
        backend = payload.get("backend")
        if backend is not None:
            if not isinstance(backend, str):
                raise ConfigurationError("'backend' must be a string")
            backend = normalize_backend(backend)
        unknown = set(payload) - {
            "experiment",
            "quick",
            "seed",
            "backend",
            "wait",
        }
        if unknown:
            raise ConfigurationError(
                f"unknown job fields: {sorted(unknown)}"
            )
        return cls(
            experiment=experiment, quick=quick, seed=seed, backend=backend
        )

    def payload(self) -> dict[str, Any]:
        """The canonical JSON-able description of this spec.

        The backend is not part of the canonical payload: results are
        byte-identical across backends, so requests differing only in
        backend deduplicate to one job and one cache entry.
        """
        return {
            "experiment": self.experiment,
            "quick": self.quick,
            "seed": self.seed,
        }

    def key(self) -> str:
        """Content address of the *result* this spec denotes.

        Folds in the source fingerprint (via :func:`cache_key`), so the
        key changes whenever the simulator changes — an exact-key hit is
        always bit-identical to a fresh run.
        """
        return cache_key("service", JOB_CODEC, self.payload())

    def stale_key(self) -> str:
        """Spec identity *without* the source fingerprint.

        Used by the stale rung of the degradation ladder: "the last
        result anyone computed for this request, under any source tree".
        """
        return digest_json(self.payload())


_JOB_IDS = itertools.count(1)


@dataclass
class JobRecord:
    """Server-side state of one admitted job (shared by coalesced clients)."""

    spec: JobSpec
    key: str
    id: str = field(default_factory=lambda: f"job-{next(_JOB_IDS)}")
    status: str = "queued"  # queued | running | done | failed
    #: How the result was produced: fresh | cached | stale | analytic.
    source: str = "fresh"
    #: Number of requests answered by this record (1 + coalesced ones).
    requests: int = 1
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    #: Simulation tasks actually dispatched to the pool (0 on cache hits).
    tasks_executed: int = 0
    job_seconds: float = 0.0
    #: Set once the job reaches a terminal state (done/failed).
    finished: threading.Event = field(default_factory=threading.Event)

    def describe(self) -> dict[str, Any]:
        """The JSON document clients see for this job."""
        document: dict[str, Any] = {
            "id": self.id,
            "spec": self.spec.payload(),
            "status": self.status,
            "requests": self.requests,
        }
        if self.status in ("done", "failed"):
            document["source"] = self.source
            document["tasks_executed"] = self.tasks_executed
            document["job_seconds"] = self.job_seconds
        if self.result is not None:
            document["result"] = self.result
        if self.error is not None:
            document["error"] = self.error
        return document


def analytic_prediction(spec: JobSpec) -> dict[str, Any]:
    """Millisecond-fast :mod:`repro.markov` stand-in for a simulated result.

    The bottom rung of the degradation ladder: exact 2×2 discarding-
    switch steady states for the paper's four buffer architectures at a
    representative operating point, plus the head-of-line saturation
    law for the radices the experiments sweep.  Not a substitute for the
    requested experiment — a principled estimate served in place of a
    refusal, and tagged as such.
    """
    from repro.markov.analysis import analyze_switch
    from repro.markov.theory import HOL_ASYMPTOTE, hol_saturation_throughput

    kinds = ("FIFO", "DAMQ", "SAMQ", "SAFC")
    point = {"slots": 4, "traffic_rate": 0.5, "num_ports": 2}
    steady = {}
    for kind in kinds:
        state = analyze_switch(kind, 4, 0.5, 2)
        steady[kind] = {
            "discard_probability": state.discard_probability,
            "throughput": state.throughput,
        }
    return {
        "model": "markov",
        "experiment": spec.experiment,
        "operating_point": point,
        "steady_state_2x2": steady,
        "hol_saturation_throughput": {
            str(n): hol_saturation_throughput(n) for n in (2, 4, 8)
        },
        "hol_asymptote": HOL_ASYMPTOTE,
        "note": (
            "analytic Markov-model prediction served because simulation "
            "capacity was unavailable; not the requested experiment's "
            "simulated tables"
        ),
    }
