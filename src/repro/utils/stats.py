"""Streaming statistics helpers used by the simulators and experiments."""

from __future__ import annotations

import math
from typing import Any

__all__ = ["OnlineStats", "RateMeter"]


class OnlineStats:
    """Single-pass mean/variance/min/max accumulator (Welford's algorithm).

    Used for packet-latency statistics where storing every sample of a
    multi-million-cycle run would be wasteful.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "OnlineStats") -> None:
        """Fold another accumulator into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        """Sample mean, or ``nan`` when no sample has been added."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance, or ``nan`` with fewer than two samples."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Unbiased sample standard deviation."""
        variance = self.variance
        return math.sqrt(variance) if not math.isnan(variance) else math.nan

    def mean_half_width(self, z: float = 1.96) -> float:
        """Half-width of the normal-approximation CI on the mean.

        With the simulators' large sample counts the normal approximation
        is adequate; callers report ``mean ± mean_half_width()``.  Returns
        ``nan`` with fewer than two samples.
        """
        stddev = self.stddev
        if math.isnan(stddev):
            return math.nan
        return z * stddev / math.sqrt(self.count)

    def get_state(self) -> dict[str, Any]:
        """The exact accumulator state, as a JSON-able dict.

        Floats survive a JSON round-trip bit-exactly (``repr``-based
        encoding), including the ``inf``/``-inf`` sentinels of an empty
        accumulator, so a restored accumulator continues producing the
        same Welford trajectory as the original.
        """
        return {
            "count": self.count,
            "mean": self._mean,
            "m2": self._m2,
            "minimum": self.minimum,
            "maximum": self.maximum,
        }

    def set_state(self, state: dict[str, Any]) -> None:
        """Overwrite this accumulator with a :meth:`get_state` snapshot.

        Values are adopted without coercion: ``minimum``/``maximum`` keep
        whatever numeric type the samples had (an all-int stream leaves
        int extrema), which JSON preserves exactly.
        """
        self.count = state["count"]
        self._mean = state["mean"]
        self._m2 = state["m2"]
        self.minimum = state["minimum"]
        self.maximum = state["maximum"]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OnlineStats(count={self.count}, mean={self.mean:.4g})"


class RateMeter:
    """Counts events over a window of cycles and reports them as a rate.

    The simulators use one meter per quantity of interest (packets offered,
    injected, delivered, discarded).  ``rate`` normalises by the window
    length and a caller-supplied width (e.g. number of network ports) so
    that the result is directly comparable to the paper's "fraction of link
    capacity" axis.
    """

    def __init__(self, width: int = 1) -> None:
        if width < 1:
            raise ValueError("width must be positive")
        self.width = width
        self.events = 0
        self.cycles = 0

    def count(self, n: int = 1) -> None:
        """Record ``n`` events."""
        self.events += n

    def advance(self, cycles: int = 1) -> None:
        """Advance the observation window by ``cycles``."""
        self.cycles += cycles

    @property
    def rate(self) -> float:
        """Events per cycle per unit of width; ``nan`` before any cycle."""
        if self.cycles == 0:
            return math.nan
        return self.events / (self.cycles * self.width)

    def reset(self) -> None:
        """Zero the meter (used when a warm-up window ends)."""
        self.events = 0
        self.cycles = 0
