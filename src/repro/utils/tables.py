"""Plain-text table rendering for the experiment harness.

The paper reports everything as tables; the experiment modules build their
results as :class:`TextTable` instances so the benchmark harness can print
rows that line up with the paper's.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["TextTable", "format_value"]


def format_value(
    value: object, decimals: int = 3, zero_plus: bool = False
) -> str:
    """Format a cell the way the paper does.

    Floats are fixed-point with ``decimals`` digits; when ``zero_plus`` is
    set, positive values that round to zero are rendered ``0+`` exactly as
    in Table 2 of the paper, and exact zeros render ``0``.
    """
    if value is None:
        return ""
    if isinstance(value, float):
        if zero_plus:
            if value == 0.0:  # repro: noqa=REP004 Table 2 distinguishes exact zero from rounds-to-zero
                return "0"
            if round(value, decimals) == 0.0:  # repro: noqa=REP004 rounded value is exactly representable
                return "0+"
        return f"{value:.{decimals}f}"
    return str(value)


class TextTable:
    """A titled table of rows rendered with aligned ASCII columns."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, cells: Iterable) -> None:
        """Append a row; cells are stringified with :func:`str`."""
        row = [cell if isinstance(cell, str) else str(cell) for cell in cells]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Return the table as a string with a title line and rule lines."""
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        rule = "-+-".join("-" * width for width in widths)
        lines = [self.title, "=" * len(self.title), header, rule]
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
