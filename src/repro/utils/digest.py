"""Canonical content digests shared across the repo.

Several subsystems need a stable content address for a JSON-able
document: the result cache keys its blobs, the service deduplicates job
specs, checkpoint files stamp the payload they belong to, and the
kernel differential harness compares packed simulator states between
backends.  Before this module each site hand-rolled the same
``sha256(canonical_json(...))`` pattern; now they share one helper so
the encoding (sorted keys, fixed separators, UTF-8) can never drift
between them.

``canonical_json`` lives here — the bottom of the dependency stack —
and is re-exported by :mod:`repro.cache.keys` for its historical
import site.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "digest_json", "digest_text"]


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to a canonical JSON string.

    Sorted keys and fixed separators make the encoding independent of
    dict insertion order; Python's ``repr``-based float formatting makes
    it exact (two floats encode identically iff they are the same
    value).
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def digest_text(text: str) -> str:
    """SHA-256 hex digest of ``text`` encoded as UTF-8."""
    return hashlib.sha256(text.encode()).hexdigest()


def digest_json(document: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``document``.

    The content address used for cache blobs, service job dedup,
    checkpoint stamps and kernel state digests: two documents share a
    digest iff their canonical JSON encodings are byte-identical.
    """
    return digest_text(canonical_json(document))
