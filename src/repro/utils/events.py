"""A minimal discrete-event queue.

The Omega-network experiments use a synchronous cycle loop (the paper's own
simplification), but the chip-level multicomputer examples schedule
asynchronous activity — message injection at arbitrary clock offsets,
delayed host reads — through this queue.  Events at the same timestamp fire
in insertion order, which keeps traces deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, sequence)`` so that simultaneous events preserve
    their scheduling order.  The callback and label do not participate in
    ordering.
    """

    time: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """Time-ordered queue of :class:`Event` callbacks."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.now = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: int, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        event = Event(self.now + delay, next(self._counter), action, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: int, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at an absolute timestamp."""
        return self.schedule(time - self.now, action, label)

    def step(self) -> Event | None:
        """Run the earliest event, advancing ``now`` to its timestamp."""
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self.now = event.time
        event.action()
        return event

    def run_until(self, time: int) -> int:
        """Run every event with timestamp ``<= time``; return events fired."""
        fired = 0
        while self._heap and self._heap[0].time <= time:
            self.step()
            fired += 1
        self.now = max(self.now, time)
        return fired

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue (optionally capped); return events fired."""
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        return fired
