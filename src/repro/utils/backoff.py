"""Reusable exponential-backoff policy with deterministic jitter.

Retry schedules appear in three places in this codebase — the reliable
transport of :mod:`repro.faults.transport` (retransmission timers counted
in network cycles), the process-pool restart path of
:mod:`repro.perf.parallel`, and the supervised experiment farm of
:mod:`repro.service` (both counted in seconds).  All three share the same
shape: a base delay that doubles per attempt up to a cap, a bounded
attempt budget, and — for the wall-clock consumers — jitter that spreads
synchronized retries apart.

The policy is *unit-agnostic* (a delay is just a number; the caller
decides whether it means cycles or seconds) and, crucially for this
repository, *deterministic*: jitter is not drawn from global RNG state
but derived from a :class:`~repro.utils.rng.RandomStream` seeded by the
policy seed, the caller-supplied key and the attempt number.  Two
processes computing the delay for the same (seed, key, attempt) agree
exactly; two different tasks (different keys) de-synchronize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import RandomStream

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff: ``base * min(factor**(attempt-1), cap_multiple)``.

    Parameters
    ----------
    base:
        Delay before the first retry (cycles, seconds — caller's unit).
    factor:
        Multiplier applied per additional attempt.
    cap_multiple:
        Ceiling on the exponential term: the delay never exceeds
        ``base * cap_multiple``.
    max_attempts:
        Total attempt budget (the first try counts as attempt 1).
        :meth:`exhausted` reports when a caller should stop retrying.
    jitter:
        Fraction of the computed delay added as deterministic jitter:
        the final delay is uniform on ``[d, d * (1 + jitter)]``.  Zero
        (the default) reproduces the bare exponential exactly — the
        transport layer relies on this for byte-identical simulations.
    seed:
        Root seed of the jitter stream (ignored when ``jitter`` is 0).
    """

    base: float
    factor: float = 2.0
    cap_multiple: float = 8.0
    max_attempts: int = 12
    jitter: float = 0.0
    seed: int = 1988

    def __post_init__(self) -> None:
        if self.base <= 0 or self.factor < 1 or self.cap_multiple < 1:
            raise ValueError(
                "backoff base must be positive and factor/cap_multiple >= 1"
            )
        if self.max_attempts < 1:
            raise ValueError("backoff max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"backoff jitter out of [0, 1]: {self.jitter}")

    def delay(self, attempt: int, key: str = "") -> float:
        """Delay before retrying after ``attempt`` failed tries (>= 1).

        ``key`` names the retrying entity (a task id, a flow) so that
        distinct entities jitter independently while the same entity
        recomputes the same delay anywhere, any time.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = self.base * min(self.factor ** (attempt - 1), self.cap_multiple)
        if self.jitter > 0.0:
            stream = RandomStream(self.seed, f"backoff/{key}/{attempt}")
            raw *= 1.0 + self.jitter * stream.random()
        return raw

    def exhausted(self, attempts: int) -> bool:
        """Whether ``attempts`` tries have consumed the whole budget."""
        return attempts >= self.max_attempts

    def schedule(self, key: str = "") -> list[float]:
        """Every retry delay the budget allows, in order (length
        ``max_attempts - 1``: the first attempt needs no delay)."""
        return [
            self.delay(attempt, key)
            for attempt in range(1, self.max_attempts)
        ]
