"""Deterministic random-number streams for reproducible simulations.

Every stochastic component of the simulator (traffic generators, arbitration
tie-breakers, hot-spot selection) draws from its own :class:`RandomStream`.
Streams are spawned from a single root seed with named, order-independent
substreams, so adding a new consumer never perturbs the draws seen by the
existing ones — a property the regression tests rely on.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

import numpy as np

__all__ = ["RandomStream", "spawn_streams"]


def _seed_for(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``root_seed``.

    The derivation hashes the pair so that substream seeds do not collide
    for related names ("port1" vs "port11") and do not depend on the order
    in which substreams are created.
    """
    digest = hashlib.sha256(f"{root_seed}/{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStream:
    """A named, seeded source of random draws.

    Thin wrapper over :class:`numpy.random.Generator` exposing only the
    operations the simulators need.  Keeping the surface small makes the
    stochastic behaviour of the models easy to audit.

    Parameters
    ----------
    seed:
        Root seed shared by a family of streams.
    name:
        Substream identifier; two streams with the same ``(seed, name)``
        produce identical draws.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._gen = np.random.default_rng(_seed_for(seed, name))

    def spawn(self, name: str) -> "RandomStream":
        """Create an independent child stream named relative to this one."""
        return RandomStream(self.seed, f"{self.name}/{name}")

    def bernoulli(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        if probability == 0.0:
            return False
        if probability == 1.0:
            return True
        return bool(self._gen.random() < probability)

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, items: Sequence):
        """Return a uniformly random element of ``items``."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items))]

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._gen.shuffle(items)

    def random(self) -> float:
        """Return a uniform float in ``[0, 1)``."""
        return float(self._gen.random())

    def geometric(self, probability: float) -> int:
        """Return a geometric draw (number of trials until first success)."""
        return int(self._gen.geometric(probability))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStream(seed={self.seed}, name={self.name!r})"


def spawn_streams(seed: int, names: Sequence[str]) -> dict[str, RandomStream]:
    """Create one independent :class:`RandomStream` per name in ``names``."""
    return {name: RandomStream(seed, name) for name in names}
