"""Deterministic random-number streams for reproducible simulations.

Every stochastic component of the simulator (traffic generators, arbitration
tie-breakers, hot-spot selection) draws from its own :class:`RandomStream`.
Streams are spawned from a single root seed with named, order-independent
substreams, so adding a new consumer never perturbs the draws seen by the
existing ones — a property the regression tests rely on.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from typing import Any, TypeVar

import numpy as np

_T = TypeVar("_T")

__all__ = ["RandomStream", "BatchedBernoulli", "spawn_streams"]


def _seed_for(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``root_seed``.

    The derivation hashes the pair so that substream seeds do not collide
    for related names ("port1" vs "port11") and do not depend on the order
    in which substreams are created.
    """
    digest = hashlib.sha256(f"{root_seed}/{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStream:
    """A named, seeded source of random draws.

    Thin wrapper over :class:`numpy.random.Generator` exposing only the
    operations the simulators need.  Keeping the surface small makes the
    stochastic behaviour of the models easy to audit.

    Parameters
    ----------
    seed:
        Root seed shared by a family of streams.
    name:
        Substream identifier; two streams with the same ``(seed, name)``
        produce identical draws.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._gen = np.random.default_rng(_seed_for(seed, name))

    def spawn(self, name: str) -> "RandomStream":
        """Create an independent child stream named relative to this one."""
        return RandomStream(self.seed, f"{self.name}/{name}")

    def bernoulli(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        if probability == 0.0:  # repro: noqa=REP004 exact sentinel: skip the RNG draw, keeping the stream bit-identical
            return False
        if probability == 1.0:  # repro: noqa=REP004 exact sentinel: skip the RNG draw, keeping the stream bit-identical
            return True
        return bool(self._gen.random() < probability)

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, items: Sequence[_T]) -> _T:
        """Return a uniformly random element of ``items``."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items))]

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._gen.shuffle(items)

    def random(self) -> float:
        """Return a uniform float in ``[0, 1)``."""
        return float(self._gen.random())

    def geometric(self, probability: float) -> int:
        """Return a geometric draw (number of trials until first success)."""
        return int(self._gen.geometric(probability))

    def get_state(self) -> dict[str, Any]:
        """The underlying bit generator's exact state (JSON-able).

        PCG64's state dict holds only strings and plain Python ints
        (arbitrary precision survives JSON), so a
        :meth:`set_state` round-trip reproduces the draw sequence
        bit-for-bit.
        """
        state: dict[str, Any] = self._gen.bit_generator.state
        return state

    def set_state(self, state: dict[str, Any]) -> None:
        """Restore a :meth:`get_state` snapshot.

        Mutates the stream's existing generator object in place, so every
        consumer holding a reference to it (e.g. a
        :class:`BatchedBernoulli` coin built on this stream) sees the
        restored state too.
        """
        self._gen.bit_generator.state = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStream(seed={self.seed}, name={self.name!r})"


class BatchedBernoulli:
    """Repeated Bernoulli draws from one stream, amortized over blocks.

    Vectorized generation is much cheaper per draw than scalar calls, but
    a consumer that interleaves other draws (packet destinations, offsets)
    on the same stream needs the *scalar* sequence preserved exactly.
    This coin pre-draws a block of uniforms and, whenever a draw comes up
    ``True``, rewinds the generator past the unused tail of the block —
    every draw on the stream after that point is identical to calling
    :meth:`RandomStream.bernoulli` once per draw.

    Two bit-generator details make the rewind exact (PCG64):

    * ``advance`` moves the raw state by one step per generated double,
      with period ``2**128`` — so ``advance(-unused)`` lands precisely
      after the consumed draw;
    * bounded ``integers`` draws consume *half* a 64-bit word and cache
      the other half inside the bit generator.  ``advance`` clears that
      cache while the scalar path would have kept it, so the cache is
      snapshotted at refill time (uniform doubles never touch it) and
      patched back after a rewind.

    Batching only pays when misses dominate; above ``_SCALAR_THRESHOLD``
    the coin simply draws scalars, which is trivially stream-exact.
    """

    #: State-transition period of numpy's default PCG64 bit generator.
    _PERIOD = 1 << 128

    #: Probabilities above this use plain scalar draws: with frequent hits
    #: the rewind bookkeeping outweighs the vectorization win.
    _SCALAR_THRESHOLD = 0.25

    __slots__ = (
        "probability",
        "_gen",
        "_bit",
        "_block",
        "_buffer",
        "_pos",
        "_cache_has",
        "_cache_val",
    )

    def __init__(
        self,
        stream: RandomStream,
        probability: float,
        block: int | None = None,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        self.probability = probability
        self._gen = stream._gen
        self._bit = self._gen.bit_generator
        if block is None:
            # A few expected inter-arrival gaps per refill; only relevant
            # below the scalar threshold, where this is at least 16.
            block = (
                16
                if probability <= 0.0
                else max(16, min(1024, int(4.0 / probability)))
            )
        if block < 1:
            raise ValueError(f"block size must be >= 1, got {block}")
        self._block = block
        self._buffer = None
        self._pos = 0
        self._cache_has = 0
        self._cache_val = 0

    def draw(self) -> bool:
        """One Bernoulli draw, bit-identical to ``stream.bernoulli(p)``."""
        probability = self.probability
        if probability == 0.0:  # repro: noqa=REP004 exact sentinel: must match RandomStream.bernoulli's short-circuit
            return False
        if probability == 1.0:  # repro: noqa=REP004 exact sentinel: must match RandomStream.bernoulli's short-circuit
            return True
        if probability > self._SCALAR_THRESHOLD:
            return bool(self._gen.random() < probability)
        buffer = self._buffer
        if buffer is None:
            # Snapshot the half-word cache left behind by bounded-integer
            # draws; the uniform doubles below leave it untouched.
            state = self._bit.state
            self._cache_has = state["has_uint32"]
            self._cache_val = state["uinteger"]
            buffer = self._buffer = self._gen.random(self._block)
            self._pos = 0
        hit = bool(buffer[self._pos] < probability)
        self._pos += 1
        if hit:
            self._rewind_unused()
        elif self._pos == self._block:
            self._buffer = None
        return hit

    def flush(self) -> None:
        """Discard the pre-drawn block, leaving the scalar-equivalent state.

        After a flush the stream's generator holds exactly the state a
        scalar draw-per-call sequence would have left, so its raw state
        can be snapshotted and later restored into a *fresh* coin (whose
        buffer starts empty) without perturbing a single subsequent draw.
        This is the same rewind the hit path performs, so flushing
        mid-run is itself draw-for-draw invisible.
        """
        if self._buffer is not None:
            self._rewind_unused()

    def _rewind_unused(self) -> None:
        """Step the generator back over the block's unconsumed draws."""
        unused = self._block - self._pos
        if unused:
            # Step the generator state *back* over the unused draws so
            # the next draw on the stream (from anyone) sees exactly
            # the state a scalar sequence would have left.
            self._bit.advance(self._PERIOD - unused)
            if self._cache_has:
                state = self._bit.state
                state["has_uint32"] = self._cache_has
                state["uinteger"] = self._cache_val
                self._bit.state = state
        self._buffer = None


def spawn_streams(seed: int, names: Sequence[str]) -> dict[str, RandomStream]:
    """Create one independent :class:`RandomStream` per name in ``names``."""
    return {name: RandomStream(seed, name) for name in names}
