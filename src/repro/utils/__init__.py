"""Shared utilities: seeded RNG streams, backoff, tables, events, stats."""

from repro.utils.backoff import BackoffPolicy
from repro.utils.events import Event, EventQueue
from repro.utils.rng import RandomStream, spawn_streams
from repro.utils.stats import OnlineStats, RateMeter
from repro.utils.tables import TextTable

__all__ = [
    "BackoffPolicy",
    "Event",
    "EventQueue",
    "OnlineStats",
    "RandomStream",
    "RateMeter",
    "TextTable",
    "spawn_streams",
]
