"""The paper's primary contribution and its baselines.

This package holds the four input-buffer architectures of Tamir & Frazier
(ISCA 1988) behind a single :class:`~repro.core.buffer.SwitchBuffer`
interface, plus the packet model and the hardware-faithful linked-list slot
manager that powers the DAMQ design.
"""

from repro.core.buffer import SwitchBuffer
from repro.core.damq import DamqBuffer
from repro.core.fifo import FifoBuffer
from repro.core.linkedlist import NO_SLOT, SlotListManager
from repro.core.packet import Message, Packet, PacketFactory
from repro.core.registry import (
    BUFFER_TYPES,
    PAPER_ORDER,
    buffer_class,
    make_buffer,
    make_buffer_factory,
)
from repro.core.safc import SafcBuffer
from repro.core.samq import SamqBuffer

__all__ = [
    "BUFFER_TYPES",
    "DamqBuffer",
    "FifoBuffer",
    "Message",
    "NO_SLOT",
    "PAPER_ORDER",
    "Packet",
    "PacketFactory",
    "SafcBuffer",
    "SamqBuffer",
    "SlotListManager",
    "SwitchBuffer",
    "buffer_class",
    "make_buffer",
    "make_buffer_factory",
]
