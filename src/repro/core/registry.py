"""Name-based construction of buffer architectures.

The experiment harness sweeps over buffer types by name ("FIFO", "SAMQ",
"SAFC", "DAMQ"); this registry maps those names to classes and builds
instances, validating the capacity constraints each type imposes.

The four paper architectures are registered eagerly.  Extension
architectures (the zoo in :mod:`repro.arch`: "DAMQ-RSV", "CQ") register
themselves when their package is imported; lookups of a name that is not
yet registered import the package lazily before failing, so
``make_buffer("CQ", ...)`` works without any explicit import while the
paper-exact modules never depend on the extensions.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.buffer import SwitchBuffer
from repro.core.damq import DamqBuffer
from repro.core.fifo import FifoBuffer
from repro.core.safc import SafcBuffer
from repro.core.samq import SamqBuffer
from repro.errors import ConfigurationError

__all__ = [
    "BUFFER_TYPES",
    "PAPER_ORDER",
    "buffer_class",
    "buffer_kinds",
    "make_buffer",
    "make_buffer_factory",
    "register_buffer_type",
]

#: All buffer architectures evaluated in the paper, by table name.
BUFFER_TYPES: dict[str, type[SwitchBuffer]] = {
    "FIFO": FifoBuffer,
    "SAMQ": SamqBuffer,
    "SAFC": SafcBuffer,
    "DAMQ": DamqBuffer,
}

#: Row order used by the paper's evaluation tables.
PAPER_ORDER = ("FIFO", "SAMQ", "SAFC", "DAMQ")


def register_buffer_type(kind: str, cls: type[SwitchBuffer]) -> None:
    """Register an extension architecture under its (uppercase) name.

    Re-registering the same class under the same name is a no-op, so
    module re-imports stay idempotent; rebinding a name to a different
    class is refused.
    """
    name = kind.upper()
    existing = BUFFER_TYPES.get(name)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"buffer type {name!r} is already registered to "
            f"{existing.__name__}"
        )
    BUFFER_TYPES[name] = cls


def _load_extensions() -> None:
    """Import the architecture zoo for its registry side effects."""
    import repro.arch  # noqa: F401  (imported for its registrations)


def buffer_kinds() -> tuple[str, ...]:
    """All registered architecture names, paper buffers first."""
    _load_extensions()
    extensions = sorted(set(BUFFER_TYPES) - set(PAPER_ORDER))
    return (*PAPER_ORDER, *extensions)


def buffer_class(kind: str) -> type[SwitchBuffer]:
    """Look up a buffer class by its table name (case-insensitive).

    Unknown names trigger a lazy import of :mod:`repro.arch` (whose
    import registers the extension architectures) before failing with a
    message that lists everything available.
    """
    name = kind.upper()
    if name not in BUFFER_TYPES:
        _load_extensions()
    try:
        return BUFFER_TYPES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown buffer type {kind!r}; expected one of "
            f"{list(buffer_kinds())}"
        ) from None


def make_buffer(kind: str, capacity: int, num_outputs: int) -> SwitchBuffer:
    """Instantiate one buffer of the named architecture."""
    return buffer_class(kind)(capacity, num_outputs)


def make_buffer_factory(kind: str, capacity: int) -> Callable[[int], SwitchBuffer]:
    """Return ``factory(num_outputs) -> SwitchBuffer`` for switch builders."""
    cls = buffer_class(kind)

    def factory(num_outputs: int) -> SwitchBuffer:
        return cls(capacity, num_outputs)

    return factory
