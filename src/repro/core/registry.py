"""Name-based construction of buffer architectures.

The experiment harness sweeps over buffer types by name ("FIFO", "SAMQ",
"SAFC", "DAMQ"); this registry maps those names to classes and builds
instances, validating the capacity constraints each type imposes.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.buffer import SwitchBuffer
from repro.core.damq import DamqBuffer
from repro.core.fifo import FifoBuffer
from repro.core.safc import SafcBuffer
from repro.core.samq import SamqBuffer
from repro.errors import ConfigurationError

__all__ = [
    "BUFFER_TYPES",
    "PAPER_ORDER",
    "buffer_class",
    "make_buffer",
    "make_buffer_factory",
]

#: All buffer architectures evaluated in the paper, by table name.
BUFFER_TYPES: dict[str, type[SwitchBuffer]] = {
    "FIFO": FifoBuffer,
    "SAMQ": SamqBuffer,
    "SAFC": SafcBuffer,
    "DAMQ": DamqBuffer,
}

#: Row order used by the paper's evaluation tables.
PAPER_ORDER = ("FIFO", "SAMQ", "SAFC", "DAMQ")


def buffer_class(kind: str) -> type[SwitchBuffer]:
    """Look up a buffer class by its table name (case-insensitive)."""
    try:
        return BUFFER_TYPES[kind.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown buffer type {kind!r}; expected one of {sorted(BUFFER_TYPES)}"
        ) from None


def make_buffer(kind: str, capacity: int, num_outputs: int) -> SwitchBuffer:
    """Instantiate one buffer of the named architecture."""
    return buffer_class(kind)(capacity, num_outputs)


def make_buffer_factory(kind: str, capacity: int) -> Callable[[int], SwitchBuffer]:
    """Return ``factory(num_outputs) -> SwitchBuffer`` for switch builders."""
    cls = buffer_class(kind)

    def factory(num_outputs: int) -> SwitchBuffer:
        return cls(capacity, num_outputs)

    return factory
