"""The statically allocated multi-queue (SAMQ) buffer (Figure 1c).

One FIFO queue per output port inside a single buffer, with the slot pool
*statically* partitioned: each output owns ``capacity / num_outputs`` slots
regardless of demand.  A single read port, so the buffer can feed at most
one output per cycle (unlike SAFC).  Cheaper than SAFC — the switch needs
only a plain crossbar — but packets are rejected whenever their partition
is full, even while other partitions sit empty.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.core.buffer import SwitchBuffer
from repro.core.packet import Packet
from repro.errors import (
    BufferEmptyError,
    BufferFullError,
    ConfigurationError,
    FaultError,
    InvariantError,
)

__all__ = ["SamqBuffer"]


class SamqBuffer(SwitchBuffer):
    """Statically partitioned per-output queues behind one read port."""

    kind = "SAMQ"
    lengths_are_live = True

    def __init__(self, capacity: int, num_outputs: int) -> None:
        super().__init__(capacity, num_outputs)
        if capacity % num_outputs != 0:
            # The paper notes SAMQ/SAFC buffers "can only have an even
            # number of slots" in the 2x2 case: the partition must divide.
            raise ConfigurationError(
                f"SAMQ capacity {capacity} is not divisible by "
                f"{num_outputs} output ports"
            )
        self.partition_capacity = capacity // num_outputs
        self._queues: list[deque[Packet]] = [deque() for _ in range(num_outputs)]
        self._used: list[int] = [0] * num_outputs
        # Packets per queue, kept incrementally: the live register file
        # behind queue_lengths().
        self._counts: list[int] = [0] * num_outputs
        # Slots retired per partition (static partitioning means a failed
        # slot shrinks exactly one output's share).
        self._partition_retired: list[int] = [0] * num_outputs

    # -- write side ------------------------------------------------------

    def effective_partition_capacity(self, destination: int) -> int:
        """Slots of one partition still in service after retirement."""
        self._check_output(destination)
        return self.partition_capacity - self._partition_retired[destination]

    def can_accept(self, destination: int, size: int = 1) -> bool:
        self._check_output(destination)
        return (
            self._used[destination] + size
            <= self.effective_partition_capacity(destination)
        )

    def push(self, packet: Packet, destination: int) -> None:
        self._check_output(destination)
        limit = self.effective_partition_capacity(destination)
        if self._used[destination] + packet.size > limit:
            raise BufferFullError(
                f"{self.kind} partition for output {destination} full "
                f"({self._used[destination]}/{limit})"
            )
        self._queues[destination].append(packet)
        self._used[destination] += packet.size
        self._counts[destination] += 1

    # -- read side -------------------------------------------------------

    def peek(self, destination: int) -> Packet | None:
        self._check_output(destination)
        queue = self._queues[destination]
        return queue[0] if queue else None

    def pop(self, destination: int) -> Packet:
        self._check_output(destination)
        queue = self._queues[destination]
        if not queue:
            raise BufferEmptyError(
                f"{self.kind} queue for output {destination} empty"
            )
        packet = queue.popleft()
        self._used[destination] -= packet.size
        self._counts[destination] -= 1
        return packet

    def queue_length(self, destination: int) -> int:
        self._check_output(destination)
        return len(self._queues[destination])

    def queue_lengths(self) -> list[int]:
        # The live register file; callers treat it as read-only.
        return self._counts

    # -- graceful degradation ----------------------------------------------

    def retire_slot(self, partition: int | None = None) -> int:
        """Retire one free slot; returns the partition it came from.

        With ``partition=None`` the slot is taken from the partition with
        the most slots still in service (ties broken toward the lowest
        index), spreading hard failures evenly — the statically
        partitioned hardware cannot reassign a surviving slot to another
        output, so the failed partition simply shrinks.
        """
        if partition is None:
            partition = max(
                range(self.num_outputs),
                key=lambda out: (
                    self.effective_partition_capacity(out),
                    -out,
                ),
            )
        self._check_output(partition)
        remaining = self.effective_partition_capacity(partition)
        if remaining - self._used[partition] < 1:
            raise FaultError(
                f"partition {partition} has no free slot to retire"
            )
        self._partition_retired[partition] += 1
        self._retired_slots += 1
        return partition

    # -- inspection --------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return sum(self._used)

    def partition_occupancy(self, destination: int) -> int:
        """Slots used inside one static partition."""
        self._check_output(destination)
        return self._used[destination]

    def packets(self) -> list[Packet]:
        return [packet for queue in self._queues for packet in queue]

    # -- checkpoint serialization ------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "queues": [
                [packet.to_state() for packet in queue]
                for queue in self._queues
            ],
            "partition_retired": list(self._partition_retired),
            "retired_slots": self._retired_slots,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        for destination, packet_states in enumerate(state["queues"]):
            queue = self._queues[destination]
            queue.clear()
            used = 0
            for packet_state in packet_states:
                packet = Packet.from_state(packet_state)
                queue.append(packet)
                used += packet.size
            # In-place updates: the switch's live-length view references
            # the _counts list.
            self._used[destination] = used
            self._counts[destination] = len(queue)
        self._partition_retired[:] = state["partition_retired"]
        self._retired_slots = state["retired_slots"]

    def canonical_state(self) -> tuple[Any, ...]:
        # Per-partition queues in order, packets identified by size only
        # (ids are renumbered canonically by the model checker).  ``kind``
        # distinguishes SAMQ from SAFC, whose read-port width differs.
        return (
            self.kind,
            self.capacity,
            self.num_outputs,
            tuple(self._partition_retired),
            tuple(
                tuple(packet.size for packet in queue)
                for queue in self._queues
            ),
        )

    def check_invariants(self) -> None:
        for destination, queue in enumerate(self._queues):
            if len(queue) != self._counts[destination]:
                raise InvariantError(
                    f"{self.kind} queue {destination}: cached count "
                    f"{self._counts[destination]} != actual {len(queue)}"
                )
            total = sum(packet.size for packet in queue)
            if total != self._used[destination]:
                raise InvariantError(
                    f"{self.kind} partition {destination}: occupancy register "
                    f"{self._used[destination]} != queued sizes {total}"
                )
            limit = self.effective_partition_capacity(destination)
            if self._used[destination] > limit:
                raise InvariantError(
                    f"{self.kind} partition {destination} holds "
                    f"{self._used[destination]} slots but only {limit} are "
                    f"in service"
                )

    def _check_output(self, destination: int) -> None:
        if not 0 <= destination < self.num_outputs:
            raise ConfigurationError(
                f"output {destination} out of range [0, {self.num_outputs})"
            )
