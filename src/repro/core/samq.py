"""The statically allocated multi-queue (SAMQ) buffer (Figure 1c).

One FIFO queue per output port inside a single buffer, with the slot pool
*statically* partitioned: each output owns ``capacity / num_outputs`` slots
regardless of demand.  A single read port, so the buffer can feed at most
one output per cycle (unlike SAFC).  Cheaper than SAFC — the switch needs
only a plain crossbar — but packets are rejected whenever their partition
is full, even while other partitions sit empty.
"""

from __future__ import annotations

from collections import deque

from repro.core.buffer import SwitchBuffer
from repro.core.packet import Packet
from repro.errors import BufferEmptyError, BufferFullError, ConfigurationError

__all__ = ["SamqBuffer"]


class SamqBuffer(SwitchBuffer):
    """Statically partitioned per-output queues behind one read port."""

    kind = "SAMQ"

    def __init__(self, capacity: int, num_outputs: int) -> None:
        super().__init__(capacity, num_outputs)
        if capacity % num_outputs != 0:
            # The paper notes SAMQ/SAFC buffers "can only have an even
            # number of slots" in the 2x2 case: the partition must divide.
            raise ConfigurationError(
                f"SAMQ capacity {capacity} is not divisible by "
                f"{num_outputs} output ports"
            )
        self.partition_capacity = capacity // num_outputs
        self._queues: list[deque[Packet]] = [deque() for _ in range(num_outputs)]
        self._used: list[int] = [0] * num_outputs

    # -- write side ------------------------------------------------------

    def can_accept(self, destination: int, size: int = 1) -> bool:
        self._check_output(destination)
        return self._used[destination] + size <= self.partition_capacity

    def push(self, packet: Packet, destination: int) -> None:
        self._check_output(destination)
        if self._used[destination] + packet.size > self.partition_capacity:
            raise BufferFullError(
                f"{self.kind} partition for output {destination} full "
                f"({self._used[destination]}/{self.partition_capacity})"
            )
        self._queues[destination].append(packet)
        self._used[destination] += packet.size

    # -- read side -------------------------------------------------------

    def peek(self, destination: int) -> Packet | None:
        self._check_output(destination)
        queue = self._queues[destination]
        return queue[0] if queue else None

    def pop(self, destination: int) -> Packet:
        self._check_output(destination)
        queue = self._queues[destination]
        if not queue:
            raise BufferEmptyError(
                f"{self.kind} queue for output {destination} empty"
            )
        packet = queue.popleft()
        self._used[destination] -= packet.size
        return packet

    def queue_length(self, destination: int) -> int:
        self._check_output(destination)
        return len(self._queues[destination])

    # -- inspection --------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return sum(self._used)

    def partition_occupancy(self, destination: int) -> int:
        """Slots used inside one static partition."""
        self._check_output(destination)
        return self._used[destination]

    def packets(self) -> list[Packet]:
        return [packet for queue in self._queues for packet in queue]

    def _check_output(self, destination: int) -> None:
        if not 0 <= destination < self.num_outputs:
            raise ConfigurationError(
                f"output {destination} out of range [0, {self.num_outputs})"
            )
