"""Abstract interface shared by the four input-buffer architectures.

The paper compares four ways of organizing the buffer at a switch input
port (Figure 1):

* **FIFO** — one queue; only the head-of-line packet is visible.
* **SAFC** — statically allocated, fully connected: one queue per output
  port, each with ``capacity / n`` dedicated slots, readable in parallel.
* **SAMQ** — statically allocated multi-queue: same static partitioning but
  a single read port.
* **DAMQ** — dynamically allocated multi-queue: per-output queues that
  share the whole slot pool, single read port (the contribution).

All four implement :class:`SwitchBuffer`.  The network simulator and the
crossbar arbiter program against this interface only, so every experiment
is a pure buffer-architecture comparison with everything else held equal —
which is exactly the paper's methodology.

Conventions
-----------
* ``destination`` arguments are *local output-port indices* of the switch
  that owns the buffer (the router has already translated the packet's
  network destination).
* Capacity is counted in packets; the paper's network experiments use
  fixed-length packets occupying one slot each.  ``Packet.size`` larger
  than one (the variable-length extension) consumes several slots.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.core.packet import Packet
from repro.errors import ConfigurationError

__all__ = ["SwitchBuffer"]


class SwitchBuffer(ABC):
    """One input port's packet storage.

    Parameters
    ----------
    capacity:
        Total number of slots (packets of size one) the buffer can hold.
    num_outputs:
        Number of output ports of the owning switch; packets are queued by
        the local output port they have been routed to.
    """

    #: Short name used in experiment tables ("FIFO", "DAMQ", ...).
    kind: str = "abstract"

    #: How many distinct packets the buffer can source in one cycle.  Every
    #: buffer except SAFC has a single read port.
    max_reads_per_cycle: int = 1

    #: True when :meth:`queue_lengths` returns a *live* list — the same
    #: (read-only to callers) object on every call, always current.  Lets
    #: the switch hand the arbiter a permanent view instead of snapshotting
    #: every cycle.  All concrete buffers in this package are live.
    lengths_are_live: bool = False

    def __init__(self, capacity: int, num_outputs: int) -> None:
        if capacity < 1:
            raise ConfigurationError("buffer capacity must be at least 1")
        if num_outputs < 1:
            raise ConfigurationError("switch needs at least one output port")
        self.capacity = capacity
        self.num_outputs = num_outputs
        self._retired_slots = 0

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    @abstractmethod
    def can_accept(self, destination: int, size: int = 1) -> bool:
        """True when a packet routed to ``destination`` would fit now.

        For the statically partitioned buffers this depends on the
        destination (a full partition rejects even when other partitions
        have room); for FIFO and DAMQ only the total free space matters.
        """

    @abstractmethod
    def push(self, packet: Packet, destination: int) -> None:
        """Store ``packet`` on the queue for local output ``destination``.

        Raises :class:`repro.errors.BufferFullError` when it does not fit;
        the caller decides whether that means *discard* or *block*.
        """

    def can_accept_without_prerouting(self, size: int = 1) -> bool:
        """Whether a packet of unknown destination is guaranteed to fit.

        This is the *conservative* flow-control question (Section 2): an
        upstream transmitter that cannot pre-route a packet must assume
        the worst-case destination queue.  For the single-pool buffers
        (FIFO, DAMQ) this equals :meth:`can_accept`; for the statically
        partitioned buffers it requires *every* partition to have room.
        """
        return all(
            self.can_accept(destination, size)
            for destination in range(self.num_outputs)
        )

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @abstractmethod
    def peek(self, destination: int) -> Packet | None:
        """The packet that would be sent to ``destination`` this cycle.

        ``None`` when the buffer cannot currently offer a packet for that
        output (empty queue — or, for FIFO, a head-of-line packet bound
        elsewhere: that is the blocking the paper is about).
        """

    @abstractmethod
    def pop(self, destination: int) -> Packet:
        """Remove and return the packet :meth:`peek` exposes.

        Raises :class:`repro.errors.BufferEmptyError` when no packet is
        available for ``destination``.
        """

    @abstractmethod
    def queue_length(self, destination: int) -> int:
        """Arbitration metric: packets the buffer holds for ``destination``.

        The paper's arbiter transmits "from the longest queue"; for FIFO
        the whole buffer is one queue, attributed to the head packet's
        destination.
        """

    def queue_lengths(self) -> list[int]:
        """All per-output queue lengths in one call.

        Arbitration fast path: the arbiter snapshots every length once per
        cycle (buffer state cannot change during arbitration — pops happen
        at execution).  Subclasses override with cheaper bulk reads.
        """
        return [
            self.queue_length(destination)
            for destination in range(self.num_outputs)
        ]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def occupancy(self) -> int:
        """Total slots currently in use."""

    @property
    def retired_count(self) -> int:
        """Slots permanently taken out of service by the fault model."""
        return self._retired_slots

    @property
    def effective_capacity(self) -> int:
        """Capacity still in service after slot retirement."""
        return self.capacity - self.retired_count

    @property
    def free_slots(self) -> int:
        """Slots still available (whole-pool view, excluding retired)."""
        return self.effective_capacity - self.occupancy

    # ------------------------------------------------------------------
    # Graceful degradation
    # ------------------------------------------------------------------

    @abstractmethod
    def retire_slot(self) -> None:
        """Take one currently free slot out of service permanently.

        Models a hard slot failure: the buffer keeps operating at reduced
        capacity.  Raises :class:`repro.errors.FaultError` when no free
        slot can be spared (every usable slot occupied, or the buffer
        would be left without capacity).
        """

    def retire_slots(self, count: int) -> None:
        """Retire ``count`` slots (convenience for fault campaigns)."""
        if count < 0:
            raise ConfigurationError("cannot retire a negative slot count")
        for _ in range(count):
            self.retire_slot()

    def check_invariants(self) -> None:
        """Structural self-check; raises
        :class:`repro.errors.InvariantError` on corruption.  Subclasses
        override with architecture-specific checks.

        Contract: implementations must be *pure* — no RNG draws, no meter
        or register mutation, no reordering of internal containers.  The
        model checker (:mod:`repro.analysis.model`) calls this once per
        explored state and assumes the snapshot bytes are unchanged
        afterwards; ``tests/unit/test_invariant_purity.py`` enforces it.
        """

    # ------------------------------------------------------------------
    # Model-checking hooks
    # ------------------------------------------------------------------

    def observable_state(self) -> dict[str, Any]:
        """The buffer's externally visible behaviour, as one pure value.

        Everything a switch (or an observational-equivalence check) can
        learn about the buffer through the public interface this cycle:
        acceptance per destination, the head packet offered per
        destination, per-queue lengths and the aggregate counters.  Two
        buffers with equal observable states are indistinguishable to the
        arbiter and the flow-control logic *right now*; the model checker
        uses repeated observations along all interleavings to establish
        observational equivalence (e.g. DAMQ restricted to one queue vs.
        FIFO).  Must not mutate the buffer.
        """
        heads: list[int | None] = []
        for destination in range(self.num_outputs):
            packet = self.peek(destination)
            heads.append(None if packet is None else packet.packet_id)
        return {
            "kind": self.kind,
            "occupancy": self.occupancy,
            "retired": self.retired_count,
            "accepts": [
                self.can_accept(destination)
                for destination in range(self.num_outputs)
            ],
            "heads": heads,
            "lengths": [
                self.queue_length(destination)
                for destination in range(self.num_outputs)
            ],
        }

    def canonical_state(self) -> tuple[Any, ...]:
        """A hashable canonical form of the complete buffer state.

        Used by the model checker to deduplicate explored states: two
        buffers with equal canonical states have isomorphic futures.
        Packet identity is *not* part of the canonical form (slot
        contents are summarized by destination and size) because packet
        ids never influence buffer behaviour — the checker renumbers ids
        canonically per state.  Must not mutate the buffer.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support canonicalization"
        )

    # ------------------------------------------------------------------
    # Checkpoint serialization
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """The buffer's complete state as a JSON-able dict.

        Every concrete buffer implements this (and the matching
        :meth:`restore_state`) so the simulator's checkpoint machinery
        can capture buffers without knowing their architecture.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def restore_state(self, state: dict[str, Any]) -> None:
        """Overwrite the buffer with a :meth:`snapshot_state` dict.

        Implementations mutate internal register lists *in place* (never
        rebind them): the owning switch and the simulator's flow-control
        closures hold live references to those lists.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )

    @property
    def is_empty(self) -> bool:
        """True when the buffer holds no packet at all."""
        return self.occupancy == 0

    def available_outputs(self) -> list[int]:
        """Local outputs for which :meth:`peek` returns a packet now."""
        return [
            output
            for output in range(self.num_outputs)
            if self.peek(output) is not None
        ]

    def packets(self) -> list[Packet]:
        """Every stored packet (order unspecified).  For tests/metrics."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(capacity={self.capacity}, "
            f"occupancy={self.occupancy})"
        )
