"""The FIFO input buffer — the paper's "control" design (Figure 1a).

A single first-in-first-out queue with one write port and one read port.
Simple to build and trivially correct for variable-length packets, but the
head-of-line packet blocks everything behind it whenever its output port is
busy — the deficiency the DAMQ buffer removes.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.core.buffer import SwitchBuffer
from repro.core.packet import Packet
from repro.errors import (
    BufferEmptyError,
    BufferFullError,
    ConfigurationError,
    FaultError,
    InvariantError,
)

__all__ = ["FifoBuffer"]


class FifoBuffer(SwitchBuffer):
    """Single FIFO queue shared by all output ports."""

    kind = "FIFO"
    lengths_are_live = True

    def __init__(self, capacity: int, num_outputs: int) -> None:
        super().__init__(capacity, num_outputs)
        self._queue: deque[tuple[Packet, int]] = deque()
        self._used = 0
        # Live register file behind queue_lengths(): the whole occupancy
        # attributed to the head packet's destination, zero elsewhere.
        self._lengths = [0] * num_outputs

    # -- write side ------------------------------------------------------

    def can_accept(self, destination: int, size: int = 1) -> bool:
        if not 0 <= destination < self.num_outputs:
            self._check_output(destination)
        return self._used + size <= self.effective_capacity

    def push(self, packet: Packet, destination: int) -> None:
        self._check_output(destination)
        if self._used + packet.size > self.effective_capacity:
            raise BufferFullError(
                f"FIFO buffer full ({self._used}/{self.effective_capacity} "
                f"slots)"
            )
        self._queue.append((packet, destination))
        self._used += packet.size
        # The head's destination absorbs the new occupancy (the head only
        # changes on push when the queue was empty).
        self._lengths[self._queue[0][1]] = self._used

    # -- read side -------------------------------------------------------

    def peek(self, destination: int) -> Packet | None:
        if not 0 <= destination < self.num_outputs:
            self._check_output(destination)
        if not self._queue:
            return None
        head, head_destination = self._queue[0]
        return head if head_destination == destination else None

    def pop(self, destination: int) -> Packet:
        packet = self.peek(destination)
        if packet is None:
            raise BufferEmptyError(
                f"no head-of-line packet for output {destination}"
            )
        self._queue.popleft()
        self._used -= packet.size
        # peek() returning a packet means the old head targeted
        # ``destination``; hand the register to the new head (if any).
        self._lengths[destination] = 0
        if self._queue:
            self._lengths[self._queue[0][1]] = self._used
        return packet

    def queue_length(self, destination: int) -> int:
        """Whole occupancy if the head packet targets ``destination``.

        A FIFO buffer is one queue; for the "longest queue" arbitration
        rule its length counts toward whichever output its head packet is
        routed to, since that is the only packet it can offer.
        """
        if self.peek(destination) is None:
            return 0
        return self._used

    def queue_lengths(self) -> list[int]:
        # The live register file; callers treat it as read-only.
        return self._lengths

    def head_destination(self) -> int | None:
        """Local output of the head-of-line packet (``None`` if empty)."""
        if not self._queue:
            return None
        return self._queue[0][1]

    # -- graceful degradation ----------------------------------------------

    def retire_slot(self) -> None:
        if self.effective_capacity <= 1:
            raise FaultError("cannot retire the last usable FIFO slot")
        if self.free_slots < 1:
            raise FaultError("no free FIFO slot available to retire")
        self._retired_slots += 1

    # -- inspection --------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return self._used

    def packets(self) -> list[Packet]:
        return [packet for packet, _ in self._queue]

    # -- checkpoint serialization ------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "queue": [
                [packet.to_state(), destination]
                for packet, destination in self._queue
            ],
            "retired_slots": self._retired_slots,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self._queue.clear()
        self._used = 0
        for packet_state, destination in state["queue"]:
            packet = Packet.from_state(packet_state)
            self._queue.append((packet, destination))
            self._used += packet.size
        # Derived exactly as push/pop maintain it: the whole occupancy
        # attributed to the head packet's destination (mutated in place —
        # the switch holds a live reference to this list).
        for output in range(self.num_outputs):
            self._lengths[output] = 0
        if self._queue:
            self._lengths[self._queue[0][1]] = self._used
        self._retired_slots = state["retired_slots"]

    def canonical_state(self) -> tuple[Any, ...]:
        # The single queue in order, identified by (destination, size):
        # packet ids are renumbered by the model checker, so they carry
        # no information here.
        return (
            self.kind,
            self.capacity,
            self.num_outputs,
            self._retired_slots,
            tuple(
                (destination, packet.size)
                for packet, destination in self._queue
            ),
        )

    def check_invariants(self) -> None:
        total = sum(packet.size for packet, _ in self._queue)
        if total != self._used:
            raise InvariantError(
                f"FIFO occupancy register {self._used} != queued sizes {total}"
            )
        expected = [0] * self.num_outputs
        if self._queue:
            expected[self._queue[0][1]] = self._used
        if self._lengths != expected:
            raise InvariantError(
                f"FIFO length registers {self._lengths} != expected {expected}"
            )
        if self._used > self.effective_capacity:
            raise InvariantError(
                f"FIFO holds {self._used} slots but only "
                f"{self.effective_capacity} are in service"
            )

    def _check_output(self, destination: int) -> None:
        if not 0 <= destination < self.num_outputs:
            raise ConfigurationError(
                f"output {destination} out of range [0, {self.num_outputs})"
            )
