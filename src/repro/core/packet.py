"""Packet and message models shared by the switch- and network-level code.

The network simulator (Section 4.2 of the paper) works at *packet*
granularity: a packet is the unit that is buffered, arbitrated and
transmitted in one synchronized network cycle.  The chip model
(:mod:`repro.chip`) works at *byte* granularity and has its own wire-level
representation; it uses :class:`Message` to describe what the host asks it
to send.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["Packet", "Message", "PacketFactory"]

#: Packet payload bounds of the ComCoBB system (Section 3): one to thirty-two
#: bytes of data per packet; only the last packet of a message may be short.
MIN_PACKET_BYTES = 1
MAX_PACKET_BYTES = 32


@dataclass(slots=True)
class Packet:
    """A routable unit of data.

    Parameters
    ----------
    packet_id:
        Unique identifier (for tracing and latency bookkeeping).
    source:
        Index of the injecting network input (processor).
    destination:
        Index of the network output (memory module) the packet targets.
    created_at:
        Clock cycle at which the generator created the packet.  Latency is
        measured from here to delivery.
    route:
        Pre-computed local output-port index at each stage of the network
        (self-routing, as an Omega network does with destination bits).
    size:
        Packet length in buffer slots.  The paper's network evaluation uses
        fixed-length packets (``size == 1``); the variable-length extension
        sets larger sizes.
    """

    packet_id: int
    source: int
    destination: int
    created_at: int = 0
    route: tuple[int, ...] = ()
    size: int = 1
    hop: int = 0
    injected_at: int | None = None
    delivered_at: int | None = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigurationError(f"packet size must be >= 1, got {self.size}")

    @property
    def hops_remaining(self) -> int:
        """Number of switch traversals still ahead of this packet."""
        return len(self.route) - self.hop

    def output_port_at_current_hop(self) -> int:
        """Local output-port index at the switch currently holding the packet."""
        if self.hop >= len(self.route):
            raise ConfigurationError(
                f"packet {self.packet_id} has no route entry for hop {self.hop}"
            )
        return self.route[self.hop]

    def advance_hop(self) -> None:
        """Record that the packet crossed one switch."""
        self.hop += 1

    def latency(self) -> int:
        """End-to-end latency in clock cycles (generation to delivery)."""
        if self.delivered_at is None:
            raise ConfigurationError(f"packet {self.packet_id} not delivered yet")
        return self.delivered_at - self.created_at

    def network_latency(self) -> int:
        """Latency from injection into the first stage to delivery."""
        if self.delivered_at is None or self.injected_at is None:
            raise ConfigurationError(f"packet {self.packet_id} not delivered yet")
        return self.delivered_at - self.injected_at

    def to_state(self) -> dict[str, Any]:
        """Every field as a JSON-able dict (checkpoint serialization)."""
        return {
            "packet_id": self.packet_id,
            "source": self.source,
            "destination": self.destination,
            "created_at": self.created_at,
            "route": list(self.route),
            "size": self.size,
            "hop": self.hop,
            "injected_at": self.injected_at,
            "delivered_at": self.delivered_at,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "Packet":
        """Rebuild a packet from a :meth:`to_state` dict."""
        return cls(
            packet_id=state["packet_id"],
            source=state["source"],
            destination=state["destination"],
            created_at=state["created_at"],
            route=tuple(state["route"]),
            size=state["size"],
            hop=state["hop"],
            injected_at=state["injected_at"],
            delivered_at=state["delivered_at"],
        )


@dataclass(slots=True)
class Message:
    """A host-level message, possibly spanning several packets.

    The ComCoBB protocol (Section 3) splits a message into packets of up to
    32 data bytes; only the final packet may be shorter.  ``circuit`` names
    the virtual circuit the message travels on.
    """

    message_id: int
    circuit: int
    payload: bytes
    created_at: int = 0

    def __post_init__(self) -> None:
        if len(self.payload) < 1:
            raise ConfigurationError("a message carries at least one byte")

    def packet_payloads(self) -> list[bytes]:
        """Split the payload into per-packet chunks per the ComCoBB rules."""
        chunks = [
            self.payload[i : i + MAX_PACKET_BYTES]
            for i in range(0, len(self.payload), MAX_PACKET_BYTES)
        ]
        return chunks

    @property
    def packet_count(self) -> int:
        """Number of packets the message occupies on the wire."""
        return (len(self.payload) + MAX_PACKET_BYTES - 1) // MAX_PACKET_BYTES


@dataclass(slots=True)
class PacketFactory:
    """Mints :class:`Packet` objects with sequential ids.

    A single factory per simulation keeps packet ids unique across all
    traffic generators, which the delivery-accounting assertions rely on.
    The id counter is a plain integer (not ``itertools.count``) so a
    checkpoint can capture and restore it without consuming a value.
    """

    _counter: int = 0

    def create(
        self,
        source: int,
        destination: int,
        created_at: int = 0,
        route: tuple[int, ...] = (),
        size: int = 1,
    ) -> Packet:
        """Create a new packet with the next unique id."""
        packet_id = self._counter
        self._counter += 1
        return Packet(
            packet_id=packet_id,
            source=source,
            destination=destination,
            created_at=created_at,
            route=route,
            size=size,
        )

    def snapshot_state(self) -> int:
        """The next packet id to be issued."""
        return self._counter

    def restore_state(self, state: int) -> None:
        """Restore the id counter from :meth:`snapshot_state`."""
        self._counter = state
