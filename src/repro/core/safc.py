"""The statically allocated fully connected (SAFC) buffer (Figure 1b).

Storage-wise identical to SAMQ — per-output queues with statically
partitioned slots — but each queue has its *own* path to its output port
(four 4×1 switches instead of one 4×4 crossbar in the paper's figure).
An input port can therefore feed several output ports in the same cycle.
The cost is replicated datapaths and controllers and a 4× flow-control
problem, which is why the paper finds its modest throughput edge over SAMQ
not worth the hardware.
"""

from __future__ import annotations

from repro.core.samq import SamqBuffer

__all__ = ["SafcBuffer"]


class SafcBuffer(SamqBuffer):
    """SAMQ storage with a fully connected (multi-read) output path.

    The only behavioural difference from :class:`SamqBuffer` is
    ``max_reads_per_cycle``: the crossbar arbiter may grant this buffer one
    packet per *output port* per cycle instead of one packet total.
    """

    kind = "SAFC"

    def __init__(self, capacity: int, num_outputs: int) -> None:
        super().__init__(capacity, num_outputs)
        # One dedicated read path per output port.
        self.max_reads_per_cycle = num_outputs
