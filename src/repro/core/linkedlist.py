"""Hardware-faithful linked-list slot manager (Section 3.1 of the paper).

The DAMQ buffer keeps its packets organized as linked lists threaded through
a pool of fixed-size slots.  Every slot has a *pointer register* naming the
next slot of its list; every list has a *head register* and a *tail
register*; unused slots live on a *free list*.  This module models exactly
that register file, because both the packet-granularity
:class:`repro.core.damq.DamqBuffer` and the byte-granularity chip model
(:mod:`repro.chip.slots`) are built on it.

A detail that matters for virtual cut-through (Section 3.2.2): when a
destination list is empty, its head register is made to point at the *first
slot of the free list*, so the transmitter already addresses the correct
slot the moment a cut-through packet starts arriving.  The manager preserves
that behaviour: :meth:`head` of an empty list returns the free-list head.
"""

from __future__ import annotations

from typing import Any

from repro.errors import (
    BufferEmptyError,
    BufferFullError,
    ConfigurationError,
    FaultError,
    InvariantError,
)

__all__ = ["SlotListManager", "NO_SLOT"]

#: Sentinel pointer value meaning "no next slot" (a null pointer register).
NO_SLOT = -1


class SlotListManager:
    """A pool of slots threaded into one free list plus ``num_lists`` queues.

    Parameters
    ----------
    num_slots:
        Total number of slots in the pool.
    num_lists:
        Number of destination lists (e.g. one per output port the input is
        not paired with, plus one for the processor interface — five in the
        ComCoBB chip, with the fifth being the free list which this class
        manages implicitly).

    The manager mirrors the hardware exactly:

    * one pointer register per slot (``pointer_register``),
    * a head and tail register per list,
    * a free-list head register (slots are returned to the free list in
      FIFO order, as the hardware recycles them).
    """

    def __init__(self, num_slots: int, num_lists: int) -> None:
        if num_slots < 1:
            raise ConfigurationError("slot pool needs at least one slot")
        if num_lists < 1:
            raise ConfigurationError("need at least one destination list")
        self.num_slots = num_slots
        self.num_lists = num_lists
        # Pointer register file: _next[s] is the slot after s in its list.
        self._next: list[int] = [NO_SLOT] * num_slots
        # Head/tail registers, one pair per destination list.
        self._head: list[int] = [NO_SLOT] * num_lists
        self._tail: list[int] = [NO_SLOT] * num_lists
        self._length: list[int] = [0] * num_lists
        # The free list initially chains every slot in index order.
        for slot in range(num_slots - 1):
            self._next[slot] = slot + 1
        self._free_head = 0
        self._free_tail = num_slots - 1
        self._free_count = num_slots
        # Slots taken out of service by the fault model: on no list at all.
        self._retired: set[int] = set()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def free_count(self) -> int:
        """Number of slots currently on the free list."""
        return self._free_count

    def length(self, list_id: int) -> int:
        """Number of slots currently queued on list ``list_id``."""
        self._check_list(list_id)
        return self._length[list_id]

    @property
    def retired_count(self) -> int:
        """Number of slots retired by the fault model."""
        return len(self._retired)

    @property
    def usable_slots(self) -> int:
        """Slots still in service (total minus retired)."""
        return self.num_slots - len(self._retired)

    def retired_slots(self) -> list[int]:
        """The retired slots in index order."""
        return sorted(self._retired)

    def occupancy(self) -> int:
        """Total slots in use across all destination lists."""
        return self.num_slots - self._free_count - len(self._retired)

    def is_empty(self, list_id: int) -> bool:
        """True when list ``list_id`` holds no slot."""
        return self.length(list_id) == 0

    def peek_free(self) -> int:
        """Slot at the head of the free list (``NO_SLOT`` when exhausted)."""
        return self._free_head if self._free_count else NO_SLOT

    def head(self, list_id: int) -> int:
        """Value of the head register for ``list_id``.

        Faithful to the hardware: an *empty* list's head register points at
        the head of the free list so that a cut-through transmission can
        start without waiting for pointer updates.  Returns ``NO_SLOT`` only
        when the list is empty *and* the free list is exhausted.
        """
        self._check_list(list_id)
        if self._length[list_id] == 0:
            return self.peek_free()
        return self._head[list_id]

    def tail(self, list_id: int) -> int:
        """Value of the tail register for ``list_id`` (``NO_SLOT`` if empty)."""
        self._check_list(list_id)
        return self._tail[list_id] if self._length[list_id] else NO_SLOT

    def next_slot(self, slot: int) -> int:
        """Value of ``slot``'s pointer register."""
        self._check_slot(slot)
        return self._next[slot]

    def slots(self, list_id: int) -> list[int]:
        """The slots of ``list_id`` in queue order (head first)."""
        self._check_list(list_id)
        result = []
        slot = self._head[list_id]
        for _ in range(self._length[list_id]):
            result.append(slot)
            slot = self._next[slot]
        return result

    def free_slots(self) -> list[int]:
        """The slots of the free list in order (head first)."""
        result = []
        slot = self._free_head
        for _ in range(self._free_count):
            result.append(slot)
            slot = self._next[slot]
        return result

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def allocate(self, list_id: int) -> int:
        """Move the free-list head slot to the tail of ``list_id``.

        This is the receive-side operation of Section 3.2.1: take a slot
        from the free list, then point the old tail's pointer register at
        it and update the tail register.

        Returns the slot index.  Raises :class:`BufferFullError` when the
        free list is empty.
        """
        self._check_list(list_id)
        if self._free_count == 0:
            raise BufferFullError("no free slot available")
        slot = self._free_head
        self._free_head = self._next[slot]
        self._free_count -= 1
        if self._free_count == 0:
            self._free_head = NO_SLOT
            self._free_tail = NO_SLOT
        self._next[slot] = NO_SLOT
        if self._length[list_id] == 0:
            self._head[list_id] = slot
        else:
            self._next[self._tail[list_id]] = slot
        self._tail[list_id] = slot
        self._length[list_id] += 1
        return slot

    def release_head(self, list_id: int) -> int:
        """Pop the head slot of ``list_id`` and return it to the free list.

        This is the transmit-side operation of Section 3.2.2: the head
        register advances to the slot named by the departing slot's pointer
        register, and the departing slot is appended to the free list.
        """
        self._check_list(list_id)
        if self._length[list_id] == 0:
            raise BufferEmptyError(f"list {list_id} is empty")
        slot = self._head[list_id]
        self._head[list_id] = self._next[slot]
        self._length[list_id] -= 1
        if self._length[list_id] == 0:
            self._head[list_id] = NO_SLOT
            self._tail[list_id] = NO_SLOT
        self._append_free(slot)
        return slot

    def release_tail(self, list_id: int) -> int:
        """Pop the *tail* slot of ``list_id`` and return it to the free list.

        This is not a hardware datapath operation: the controller uses it
        only when a fault is detected while a packet is still being
        received, to un-claim the slots of the aborted packet (which are by
        construction the newest — tail — slots of their destination list).
        """
        self._check_list(list_id)
        if self._length[list_id] == 0:
            raise BufferEmptyError(f"list {list_id} is empty")
        tail = self._tail[list_id]
        if self._length[list_id] == 1:
            self._head[list_id] = NO_SLOT
            self._tail[list_id] = NO_SLOT
        else:
            predecessor = self._head[list_id]
            while self._next[predecessor] != tail:
                predecessor = self._next[predecessor]
            self._next[predecessor] = NO_SLOT
            self._tail[list_id] = predecessor
        self._length[list_id] -= 1
        self._append_free(tail)
        return tail

    # ------------------------------------------------------------------
    # Graceful degradation: slot retirement
    # ------------------------------------------------------------------

    def retire_slot(self, slot: int | None = None) -> int:
        """Permanently take a *free* slot out of service.

        Models a hard failure of a buffer slot (stuck cells, broken pointer
        register): the slot is unlinked from the free list and never handed
        out again, so the pool keeps operating at reduced capacity.  With
        ``slot=None`` the free-list head is retired.  Returns the retired
        slot index.  Raises :class:`FaultError` when the slot is not free
        or when retiring it would leave the pool without usable slots.
        """
        if self._free_count == 0:
            raise FaultError("no free slot available to retire")
        if self.usable_slots <= 1:
            raise FaultError("cannot retire the last usable slot")
        if slot is None:
            slot = self._free_head
        else:
            self._check_slot(slot)
            if slot in self._retired:
                raise FaultError(f"slot {slot} is already retired")
        # Unlink the slot from wherever it sits on the free chain.
        if slot == self._free_head:
            self._free_head = self._next[slot]
        else:
            predecessor = self._free_head
            while predecessor != NO_SLOT and self._next[predecessor] != slot:
                predecessor = self._next[predecessor]
            if predecessor == NO_SLOT:
                raise FaultError(f"slot {slot} is not on the free list")
            self._next[predecessor] = self._next[slot]
            if slot == self._free_tail:
                self._free_tail = predecessor
        self._free_count -= 1
        if self._free_count == 0:
            self._free_head = NO_SLOT
            self._free_tail = NO_SLOT
        self._next[slot] = NO_SLOT
        self._retired.add(slot)
        return slot

    def restore_slot(self, slot: int) -> None:
        """Return a retired slot to service (appended to the free list)."""
        self._check_slot(slot)
        if slot not in self._retired:
            raise FaultError(f"slot {slot} is not retired")
        self._retired.remove(slot)
        self._append_free(slot)

    def _append_free(self, slot: int) -> None:
        """Append ``slot`` to the tail of the free list."""
        self._next[slot] = NO_SLOT
        if self._free_count == 0:
            self._free_head = slot
        else:
            self._next[self._free_tail] = slot
        self._free_tail = slot
        self._free_count += 1

    def canonical_state(self) -> tuple[Any, ...]:
        """A hashable canonical form of the register file (pure).

        Captures the *exact* physical layout — per-list slot chains in
        queue order, the free chain in recycling order, and the retired
        set — so the model checker's exact-layout mode distinguishes
        states that differ only in how slots are threaded.
        """
        return (
            self.num_slots,
            self.num_lists,
            tuple(
                tuple(self.slots(list_id))
                for list_id in range(self.num_lists)
            ),
            tuple(self.free_slots()),
            tuple(sorted(self._retired)),
        )

    # ------------------------------------------------------------------
    # Checkpoint serialization
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """The whole register file as a JSON-able dict.

        Captures every pointer/head/tail/length register plus the free
        list and the retired set (serialized as a sorted list — the set
        itself is never iterated during simulation, so ordering carries
        no behaviour).
        """
        return {
            "next": list(self._next),
            "head": list(self._head),
            "tail": list(self._tail),
            "length": list(self._length),
            "free_head": self._free_head,
            "free_tail": self._free_tail,
            "free_count": self._free_count,
            "retired": sorted(self._retired),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Overwrite the register file with a :meth:`snapshot_state` dict.

        The register lists are mutated *in place* so any live references
        (instrumentation, debug views) keep observing the same objects.
        """
        if len(state["next"]) != self.num_slots:
            raise ConfigurationError(
                f"snapshot describes {len(state['next'])} slots, "
                f"this pool has {self.num_slots}"
            )
        self._next[:] = state["next"]
        self._head[:] = state["head"]
        self._tail[:] = state["tail"]
        self._length[:] = state["length"]
        self._free_head = state["free_head"]
        self._free_tail = state["free_tail"]
        self._free_count = state["free_count"]
        self._retired.clear()
        self._retired.update(state["retired"])

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify slot conservation: every slot on exactly one list.

        Raises :class:`InvariantError` on corruption (never a bare
        ``AssertionError``, so the check fires under ``python -O`` too).
        Retired slots must appear on *no* list.  Exercised heavily by the
        property-based tests.
        """
        seen: set[int] = set()
        for list_id in range(self.num_lists):
            chain = self.slots(list_id)
            if len(chain) != self._length[list_id]:
                raise InvariantError(
                    f"list {list_id}: chain length {len(chain)} != register "
                    f"{self._length[list_id]}"
                )
            if chain:
                if self._tail[list_id] != chain[-1]:
                    raise InvariantError(
                        f"list {list_id}: tail register does not point at "
                        f"last slot"
                    )
                if self._next[chain[-1]] != NO_SLOT:
                    raise InvariantError(
                        f"list {list_id}: last slot pointer register not null"
                    )
            for slot in chain:
                if slot in seen:
                    raise InvariantError(f"slot {slot} appears on two lists")
                if slot in self._retired:
                    raise InvariantError(
                        f"retired slot {slot} appears on list {list_id}"
                    )
                seen.add(slot)
        free = self.free_slots()
        if len(free) != self._free_count:
            raise InvariantError("free-list length mismatch")
        for slot in free:
            if slot in seen:
                raise InvariantError(f"slot {slot} both free and allocated")
            if slot in self._retired:
                raise InvariantError(f"retired slot {slot} is on the free list")
            seen.add(slot)
        expected = set(range(self.num_slots)) - self._retired
        if seen != expected:
            raise InvariantError(f"lost slots: {expected - seen}")

    def _check_list(self, list_id: int) -> None:
        if not 0 <= list_id < self.num_lists:
            raise ConfigurationError(
                f"list id {list_id} out of range [0, {self.num_lists})"
            )

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise ConfigurationError(
                f"slot {slot} out of range [0, {self.num_slots})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lists = {lid: self.slots(lid) for lid in range(self.num_lists)}
        return f"SlotListManager(free={self.free_slots()}, lists={lists})"
