"""Hardware-faithful linked-list slot manager (Section 3.1 of the paper).

The DAMQ buffer keeps its packets organized as linked lists threaded through
a pool of fixed-size slots.  Every slot has a *pointer register* naming the
next slot of its list; every list has a *head register* and a *tail
register*; unused slots live on a *free list*.  This module models exactly
that register file, because both the packet-granularity
:class:`repro.core.damq.DamqBuffer` and the byte-granularity chip model
(:mod:`repro.chip.slots`) are built on it.

A detail that matters for virtual cut-through (Section 3.2.2): when a
destination list is empty, its head register is made to point at the *first
slot of the free list*, so the transmitter already addresses the correct
slot the moment a cut-through packet starts arriving.  The manager preserves
that behaviour: :meth:`head` of an empty list returns the free-list head.
"""

from __future__ import annotations

from repro.errors import BufferEmptyError, BufferFullError, ConfigurationError

__all__ = ["SlotListManager", "NO_SLOT"]

#: Sentinel pointer value meaning "no next slot" (a null pointer register).
NO_SLOT = -1


class SlotListManager:
    """A pool of slots threaded into one free list plus ``num_lists`` queues.

    Parameters
    ----------
    num_slots:
        Total number of slots in the pool.
    num_lists:
        Number of destination lists (e.g. one per output port the input is
        not paired with, plus one for the processor interface — five in the
        ComCoBB chip, with the fifth being the free list which this class
        manages implicitly).

    The manager mirrors the hardware exactly:

    * one pointer register per slot (``pointer_register``),
    * a head and tail register per list,
    * a free-list head register (slots are returned to the free list in
      FIFO order, as the hardware recycles them).
    """

    def __init__(self, num_slots: int, num_lists: int) -> None:
        if num_slots < 1:
            raise ConfigurationError("slot pool needs at least one slot")
        if num_lists < 1:
            raise ConfigurationError("need at least one destination list")
        self.num_slots = num_slots
        self.num_lists = num_lists
        # Pointer register file: _next[s] is the slot after s in its list.
        self._next: list[int] = [NO_SLOT] * num_slots
        # Head/tail registers, one pair per destination list.
        self._head: list[int] = [NO_SLOT] * num_lists
        self._tail: list[int] = [NO_SLOT] * num_lists
        self._length: list[int] = [0] * num_lists
        # The free list initially chains every slot in index order.
        for slot in range(num_slots - 1):
            self._next[slot] = slot + 1
        self._free_head = 0
        self._free_tail = num_slots - 1
        self._free_count = num_slots

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def free_count(self) -> int:
        """Number of slots currently on the free list."""
        return self._free_count

    def length(self, list_id: int) -> int:
        """Number of slots currently queued on list ``list_id``."""
        self._check_list(list_id)
        return self._length[list_id]

    def occupancy(self) -> int:
        """Total slots in use across all destination lists."""
        return self.num_slots - self._free_count

    def is_empty(self, list_id: int) -> bool:
        """True when list ``list_id`` holds no slot."""
        return self.length(list_id) == 0

    def peek_free(self) -> int:
        """Slot at the head of the free list (``NO_SLOT`` when exhausted)."""
        return self._free_head if self._free_count else NO_SLOT

    def head(self, list_id: int) -> int:
        """Value of the head register for ``list_id``.

        Faithful to the hardware: an *empty* list's head register points at
        the head of the free list so that a cut-through transmission can
        start without waiting for pointer updates.  Returns ``NO_SLOT`` only
        when the list is empty *and* the free list is exhausted.
        """
        self._check_list(list_id)
        if self._length[list_id] == 0:
            return self.peek_free()
        return self._head[list_id]

    def tail(self, list_id: int) -> int:
        """Value of the tail register for ``list_id`` (``NO_SLOT`` if empty)."""
        self._check_list(list_id)
        return self._tail[list_id] if self._length[list_id] else NO_SLOT

    def next_slot(self, slot: int) -> int:
        """Value of ``slot``'s pointer register."""
        self._check_slot(slot)
        return self._next[slot]

    def slots(self, list_id: int) -> list[int]:
        """The slots of ``list_id`` in queue order (head first)."""
        self._check_list(list_id)
        result = []
        slot = self._head[list_id]
        for _ in range(self._length[list_id]):
            result.append(slot)
            slot = self._next[slot]
        return result

    def free_slots(self) -> list[int]:
        """The slots of the free list in order (head first)."""
        result = []
        slot = self._free_head
        for _ in range(self._free_count):
            result.append(slot)
            slot = self._next[slot]
        return result

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def allocate(self, list_id: int) -> int:
        """Move the free-list head slot to the tail of ``list_id``.

        This is the receive-side operation of Section 3.2.1: take a slot
        from the free list, then point the old tail's pointer register at
        it and update the tail register.

        Returns the slot index.  Raises :class:`BufferFullError` when the
        free list is empty.
        """
        self._check_list(list_id)
        if self._free_count == 0:
            raise BufferFullError("no free slot available")
        slot = self._free_head
        self._free_head = self._next[slot]
        self._free_count -= 1
        if self._free_count == 0:
            self._free_head = NO_SLOT
            self._free_tail = NO_SLOT
        self._next[slot] = NO_SLOT
        if self._length[list_id] == 0:
            self._head[list_id] = slot
        else:
            self._next[self._tail[list_id]] = slot
        self._tail[list_id] = slot
        self._length[list_id] += 1
        return slot

    def release_head(self, list_id: int) -> int:
        """Pop the head slot of ``list_id`` and return it to the free list.

        This is the transmit-side operation of Section 3.2.2: the head
        register advances to the slot named by the departing slot's pointer
        register, and the departing slot is appended to the free list.
        """
        self._check_list(list_id)
        if self._length[list_id] == 0:
            raise BufferEmptyError(f"list {list_id} is empty")
        slot = self._head[list_id]
        self._head[list_id] = self._next[slot]
        self._length[list_id] -= 1
        if self._length[list_id] == 0:
            self._head[list_id] = NO_SLOT
            self._tail[list_id] = NO_SLOT
        self._append_free(slot)
        return slot

    def _append_free(self, slot: int) -> None:
        """Append ``slot`` to the tail of the free list."""
        self._next[slot] = NO_SLOT
        if self._free_count == 0:
            self._free_head = slot
        else:
            self._next[self._free_tail] = slot
        self._free_tail = slot
        self._free_count += 1

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert slot conservation: every slot on exactly one list.

        Raises :class:`AssertionError` on corruption.  Exercised heavily by
        the property-based tests.
        """
        seen: set[int] = set()
        for list_id in range(self.num_lists):
            chain = self.slots(list_id)
            assert len(chain) == self._length[list_id], (
                f"list {list_id}: chain length {len(chain)} != register "
                f"{self._length[list_id]}"
            )
            if chain:
                assert self._tail[list_id] == chain[-1], (
                    f"list {list_id}: tail register does not point at last slot"
                )
                assert self._next[chain[-1]] == NO_SLOT, (
                    f"list {list_id}: last slot pointer register not null"
                )
            for slot in chain:
                assert slot not in seen, f"slot {slot} appears on two lists"
                seen.add(slot)
        free = self.free_slots()
        assert len(free) == self._free_count, "free-list length mismatch"
        for slot in free:
            assert slot not in seen, f"slot {slot} both free and allocated"
            seen.add(slot)
        assert seen == set(range(self.num_slots)), (
            f"lost slots: {set(range(self.num_slots)) - seen}"
        )

    def _check_list(self, list_id: int) -> None:
        if not 0 <= list_id < self.num_lists:
            raise ConfigurationError(
                f"list id {list_id} out of range [0, {self.num_lists})"
            )

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise ConfigurationError(
                f"slot {slot} out of range [0, {self.num_slots})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lists = {lid: self.slots(lid) for lid in range(self.num_lists)}
        return f"SlotListManager(free={self.free_slots()}, lists={lists})"
