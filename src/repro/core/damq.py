"""The dynamically allocated multi-queue (DAMQ) buffer — the contribution.

One FIFO queue per output port, all sharing a single pool of slots through
the linked-list register machinery of Section 3.1
(:class:`repro.core.linkedlist.SlotListManager`).  The buffer therefore

* never blocks a packet behind one bound for a busy output (non-FIFO
  forwarding across queues, FIFO order within each queue), and
* applies every free slot to whichever packet arrives next (no static
  partitioning, so no rejections while other partitions sit empty).

This class is the packet-granularity model used by the network simulator;
the byte-granularity hardware model lives in :mod:`repro.chip`.
"""

from __future__ import annotations

from typing import Any

from repro.core.buffer import SwitchBuffer
from repro.core.linkedlist import SlotListManager
from repro.core.packet import Packet
from repro.errors import (
    BufferEmptyError,
    BufferFullError,
    ConfigurationError,
    InvariantError,
)

__all__ = ["DamqBuffer"]


class DamqBuffer(SwitchBuffer):
    """Per-output linked-list queues dynamically sharing one slot pool.

    The implementation deliberately routes every operation through the
    hardware-faithful :class:`SlotListManager` (head/tail/pointer
    registers) rather than Python lists, so the structural invariants the
    paper's controller maintains — slot conservation, FIFO order within a
    list, free-list recycling — are the same ones our property tests check.
    """

    kind = "DAMQ"
    lengths_are_live = True

    def __init__(self, capacity: int, num_outputs: int) -> None:
        super().__init__(capacity, num_outputs)
        self._lists = SlotListManager(num_slots=capacity, num_lists=num_outputs)
        # Slot contents: the "data RAM" next to the pointer-register file.
        self._slot_packet: list[Packet | None] = [None] * capacity
        # Packets (not slots) per destination queue, kept incrementally so
        # the arbiter's longest-queue scan is O(1) per queue.
        self._packet_counts = [0] * num_outputs

    # -- write side ------------------------------------------------------

    def can_accept(self, destination: int, size: int = 1) -> bool:
        if not 0 <= destination < self.num_outputs:
            self._check_output(destination)
        return self._lists.free_count >= size

    def push(self, packet: Packet, destination: int) -> None:
        if not 0 <= destination < self.num_outputs:
            self._check_output(destination)
        if self._lists.free_count < packet.size:
            raise BufferFullError(
                f"DAMQ buffer out of slots ({self._lists.free_count} free, "
                f"packet needs {packet.size})"
            )
        # A multi-slot packet occupies consecutive *list* positions (its
        # slots are chained on the same destination list), mirroring how
        # the chip spreads a long packet over several 8-byte slots.
        first_slot = self._lists.allocate(destination)
        self._slot_packet[first_slot] = packet
        for _ in range(packet.size - 1):
            continuation = self._lists.allocate(destination)
            self._slot_packet[continuation] = packet
        self._packet_counts[destination] += 1

    # -- read side -------------------------------------------------------

    def peek(self, destination: int) -> Packet | None:
        if not 0 <= destination < self.num_outputs:
            self._check_output(destination)
        # Hot path for the arbiter: read the head register directly rather
        # than going through the empty-list/free-list indirection.
        if self._packet_counts[destination] == 0:
            return None
        return self._slot_packet[self._lists._head[destination]]

    def pop(self, destination: int) -> Packet:
        if not 0 <= destination < self.num_outputs:
            self._check_output(destination)
        # Same head-register fast path as peek: packet count zero is
        # exactly the list-empty condition.
        if self._packet_counts[destination] == 0:
            raise BufferEmptyError(f"DAMQ queue for output {destination} empty")
        packet = self._slot_packet[self._lists._head[destination]]
        if packet is None:
            raise InvariantError(
                f"DAMQ head slot of queue {destination} holds no packet"
            )
        for _ in range(packet.size):
            slot = self._lists.release_head(destination)
            self._slot_packet[slot] = None
        self._packet_counts[destination] -= 1
        return packet

    def queue_length(self, destination: int) -> int:
        """Packets queued for ``destination`` (not slots: a size-2 packet
        counts once, matching how the arbiter reasons about queues)."""
        self._check_output(destination)
        return self._packet_counts[destination]

    def queue_lengths(self) -> list[int]:
        # The live register file; callers treat it as read-only.
        return self._packet_counts

    # -- graceful degradation ----------------------------------------------

    def retire_slot(self) -> None:
        """Retire one free slot from the shared pool.

        Unlike the statically partitioned buffers, the DAMQ design loses
        nothing but raw capacity: every surviving slot remains available
        to every destination queue.
        """
        self._lists.retire_slot()

    @property
    def retired_count(self) -> int:
        return self._lists.retired_count

    # -- inspection --------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return self._lists.occupancy()

    def packets(self) -> list[Packet]:
        result = []
        seen: set[int] = set()
        for output in range(self.num_outputs):
            for slot in self._lists.slots(output):
                packet = self._slot_packet[slot]
                if packet is None:
                    raise InvariantError(
                        f"allocated slot {slot} holds no packet"
                    )
                if packet.packet_id not in seen:
                    seen.add(packet.packet_id)
                    result.append(packet)
        return result

    # -- checkpoint serialization ------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "lists": self._lists.snapshot_state(),
            # The data RAM, slot by slot.  A multi-slot packet appears
            # once per occupied slot; restore re-shares by packet id.
            "slots": [
                packet.to_state() if packet is not None else None
                for packet in self._slot_packet
            ],
            "retired_slots": self._retired_slots,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self._lists.restore_state(state["lists"])
        # Rebuild the data RAM, re-sharing one Packet object across the
        # slots of a multi-slot packet (pop identity-checks against the
        # arbiter's grant, so aliasing must be preserved).
        by_id: dict[int, Packet] = {}
        for slot, packet_state in enumerate(state["slots"]):
            if packet_state is None:
                self._slot_packet[slot] = None
                continue
            packet = by_id.get(packet_state["packet_id"])
            if packet is None:
                packet = Packet.from_state(packet_state)
                by_id[packet.packet_id] = packet
            self._slot_packet[slot] = packet
        # Derived register: unique packets per destination list (mutated
        # in place — the switch holds a live reference).
        for output in range(self.num_outputs):
            seen: set[int] = set()
            for slot in self._lists.slots(output):
                packet = self._slot_packet[slot]
                if packet is not None:
                    seen.add(packet.packet_id)
            self._packet_counts[output] = len(seen)
        self._retired_slots = state["retired_slots"]

    def canonical_state(self) -> tuple[Any, ...]:
        # Exact physical layout (register file) plus the per-list packet
        # shape: consecutive slots of one multi-slot packet are grouped,
        # so the value records packet sizes in queue order per list.
        # Packet ids are excluded (renumbered by the model checker).
        sizes: list[tuple[int, ...]] = []
        for output in range(self.num_outputs):
            shape: list[int] = []
            previous_id: int | None = None
            for slot in self._lists.slots(output):
                packet = self._slot_packet[slot]
                if packet is None:
                    raise InvariantError(
                        f"allocated slot {slot} holds no packet"
                    )
                if packet.packet_id != previous_id:
                    shape.append(packet.size)
                    previous_id = packet.packet_id
            sizes.append(tuple(shape))
        return (
            self.kind,
            self.capacity,
            self.num_outputs,
            self._lists.canonical_state(),
            tuple(sizes),
        )

    def check_invariants(self) -> None:
        """Structural self-check delegated to the register-file model.

        Raises :class:`InvariantError` on corruption.
        """
        self._lists.check_invariants()
        for output in range(self.num_outputs):
            packet_ids = set()
            for slot in self._lists.slots(output):
                packet = self._slot_packet[slot]
                if packet is None:
                    raise InvariantError(
                        f"allocated slot {slot} holds no packet"
                    )
                packet_ids.add(packet.packet_id)
            if len(packet_ids) != self._packet_counts[output]:
                raise InvariantError(
                    f"queue {output}: cached count "
                    f"{self._packet_counts[output]} != actual "
                    f"{len(packet_ids)}"
                )
        for slot in self._lists.free_slots():
            if self._slot_packet[slot] is not None:
                raise InvariantError(f"free slot {slot} still holds a packet")
        for slot in self._lists.retired_slots():
            if self._slot_packet[slot] is not None:
                raise InvariantError(
                    f"retired slot {slot} still holds a packet"
                )

    def _check_output(self, destination: int) -> None:
        if not 0 <= destination < self.num_outputs:
            raise ConfigurationError(
                f"output {destination} out of range [0, {self.num_outputs})"
            )
