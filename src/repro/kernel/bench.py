"""Backend benchmark: reference vs numpy on the paper's headline grids.

Times both backends end-to-end — kernel construction, arrival-stream
preparation, the cycle loop and result summarization — on the figure 3
and table 3 grids, the two experiments whose simulation volume dominates
the perf harness.  The reference backend runs each configuration
individually (exactly how ``parallel_simulate`` schedules it per
worker); the numpy backend fuses each structural batch group
(:func:`~repro.kernel.numpy_kernel.batch_group_key`) into one kernel,
which is precisely how it is dispatched in production.

Two numpy measurements are reported.  The per-grid rows batch within
one experiment's grid (how a single ``run_experiment`` call dispatches
it).  The headline **aggregate** fuses the whole figure3+table3
workload — the batch groups span experiments, since the group key
keeps neither protocol nor buffer kind (both are per-virtual-stage
state), so the quick workload collapses to just two kernels (FIFO ring
layout + shared ring layout) and the array dispatch cost amortizes over
all 26 simulations at once, exactly as one fused sweep would run it.

Results land in ``benchmarks/BENCH_9[_quick].json`` with per-backend
wall/throughput fields; ``python -m repro.kernel bench`` is the entry
point and CI's perf-smoke job enforces a minimum aggregate speedup with
``--min-speedup``.

Every benchmark run also cross-checks the two backends' final
:class:`~repro.network.metrics.SimulationResult` digests — a benchmark
that quietly timed two different computations would be worthless.
"""

from __future__ import annotations

import json
import time
from collections import defaultdict
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.figure3 import QUICK_LOADS, SWEEP_LOADS
from repro.experiments.report import sim_cycles
from repro.experiments.table3 import _CELLS as TABLE3_CELLS
from repro.experiments.table3 import _KIND_ORDER as TABLE3_KINDS
from repro.kernel.base import make_kernel
from repro.network.simulator import NetworkConfig
from repro.switch.flow_control import Protocol
from repro.utils.digest import digest_json

__all__ = [
    "KERNEL_BENCH_SCHEMA",
    "bench_grids",
    "load_kernel_bench",
    "run_kernel_bench",
    "write_kernel_bench",
]

#: Version tag of the kernel benchmark document.
KERNEL_BENCH_SCHEMA = 1


def bench_grids(
    quick: bool = True, seed: int = 1988
) -> dict[str, list[NetworkConfig]]:
    """The benchmark's simulation grids, keyed by experiment name.

    Mirrors the figure 3 and table 3 grids exactly (same loads, cells
    and kind order) so the measured cycles/s translate directly to the
    experiment pipeline's wall time.
    """
    figure3 = [
        NetworkConfig(
            buffer_kind=kind,
            slots_per_buffer=4,
            protocol=Protocol.BLOCKING,
            arbiter_kind="smart",
            traffic_kind="uniform",
            offered_load=load,
            seed=seed,
        )
        for kind in ("FIFO", "DAMQ")
        for load in (QUICK_LOADS if quick else SWEEP_LOADS)
    ]
    table3 = [
        NetworkConfig(
            buffer_kind=kind,
            slots_per_buffer=4,
            protocol=Protocol.DISCARDING,
            arbiter_kind=arbiter,
            traffic_kind="uniform",
            offered_load=load,
            seed=seed,
        )
        for kind in TABLE3_KINDS
        for (_label, load, arbiter) in TABLE3_CELLS
    ]
    return {"figure3": figure3, "table3": table3}


def _run_reference(
    configs: list[NetworkConfig], warmup: int, measure: int
) -> tuple[float, list[Any]]:
    start = time.perf_counter()  # repro: noqa=REP002 (benchmark harness: timing backends is this module's purpose)
    results = [
        make_kernel(config, "reference").run(warmup, measure)
        for config in configs
    ]
    return time.perf_counter() - start, results  # repro: noqa=REP002 (benchmark harness: timing backends is this module's purpose)


def _run_numpy(
    configs: list[NetworkConfig], warmup: int, measure: int
) -> tuple[float, list[Any], int]:
    from repro.kernel.numpy_kernel import NumpyKernel, batch_group_key

    groups: dict[tuple[Any, ...], list[int]] = defaultdict(list)
    for index, config in enumerate(configs):
        groups[batch_group_key(config)].append(index)
    results: list[Any] = [None] * len(configs)
    start = time.perf_counter()  # repro: noqa=REP002 (benchmark harness: timing backends is this module's purpose)
    for indices in groups.values():
        kernel = NumpyKernel.batch([configs[i] for i in indices])
        for index, result in zip(indices, kernel.run_batch(warmup, measure)):
            results[index] = result
    return time.perf_counter() - start, results, len(groups)  # repro: noqa=REP002 (benchmark harness: timing backends is this module's purpose)


def run_kernel_bench(
    quick: bool = True,
    seed: int = 1988,
    repeats: int = 1,
    progress: bool = True,
) -> dict[str, Any]:
    """Benchmark both backends; return the benchmark document.

    With ``repeats > 1`` each (grid, backend) measurement is taken that
    many times and the best wall time wins — the standard defence
    against shared-machine noise.  The two backends' results are
    digest-compared on every repeat; a mismatch aborts the benchmark
    with a :class:`SimulationError` because the timings would no longer
    describe the same computation.
    """
    if repeats < 1:
        raise ConfigurationError("repeats must be >= 1")
    warmup, measure = sim_cycles(quick)
    total = warmup + measure
    grids = bench_grids(quick=quick, seed=seed)
    records: dict[str, Any] = {}
    aggregate_ref = 0.0
    aggregate_cycles = 0
    reference_results: list[Any] = []
    all_configs: list[NetworkConfig] = []
    for name, configs in grids.items():
        cycles = len(configs) * total
        best_ref = best_numpy = float("inf")
        batches = 0
        grid_reference: list[Any] = []
        for _repeat in range(repeats):
            ref_wall, ref_results = _run_reference(configs, warmup, measure)
            numpy_wall, numpy_results, batches = _run_numpy(
                configs, warmup, measure
            )
            for config, left, right in zip(
                configs, ref_results, numpy_results
            ):
                if digest_json(left.to_state()) != digest_json(
                    right.to_state()
                ):
                    raise SimulationError(
                        f"backend results diverged on {name} "
                        f"({config.buffer_kind}@{config.offered_load:g}); "
                        "run `python -m repro.kernel diff` to localize"
                    )
            best_ref = min(best_ref, ref_wall)
            best_numpy = min(best_numpy, numpy_wall)
            grid_reference = ref_results
        record = {
            "sims": len(configs),
            "cycles": cycles,
            "reference": {
                "wall_s": round(best_ref, 3),
                "cycles_per_s": round(cycles / best_ref, 1),
            },
            "numpy": {
                "wall_s": round(best_numpy, 3),
                "cycles_per_s": round(cycles / best_numpy, 1),
                "batches": batches,
            },
            "speedup": round(best_ref / best_numpy, 2),
        }
        records[name] = record
        aggregate_ref += best_ref
        aggregate_cycles += cycles
        reference_results.extend(grid_reference)
        all_configs.extend(configs)
        if progress:
            print(
                f"  {name:<10} reference {best_ref:7.2f}s  "
                f"numpy {best_numpy:6.2f}s  "
                f"speedup {record['speedup']:.2f}x"
            )
    # The headline measurement: the whole workload fused, so batch
    # groups span experiment grids (see the module docstring).
    best_fused = float("inf")
    fused_batches = 0
    for _repeat in range(repeats):
        fused_wall, fused_results, fused_batches = _run_numpy(
            all_configs, warmup, measure
        )
        for config, left, right in zip(
            all_configs, reference_results, fused_results
        ):
            if digest_json(left.to_state()) != digest_json(right.to_state()):
                raise SimulationError(
                    f"fused-run results diverged from reference "
                    f"({config.buffer_kind}@{config.offered_load:g}); "
                    "run `python -m repro.kernel diff` to localize"
                )
        best_fused = min(best_fused, fused_wall)
    if progress:
        print(
            f"  {'fused':<10} reference {aggregate_ref:7.2f}s  "
            f"numpy {best_fused:6.2f}s  "
            f"speedup {aggregate_ref / best_fused:.2f}x  "
            f"({fused_batches} batch kernels)"
        )
    return {
        "schema": KERNEL_BENCH_SCHEMA,
        "kind": "kernel-backends",
        "mode": "quick" if quick else "full",
        "seed": seed,
        "warmup_cycles": warmup,
        "measure_cycles": measure,
        "repeats": repeats,
        "grids": records,
        "aggregate": {
            "sims": len(all_configs),
            "cycles": aggregate_cycles,
            "reference_wall_s": round(aggregate_ref, 3),
            "numpy_wall_s": round(best_fused, 3),
            "numpy_batches": fused_batches,
            "reference_cycles_per_s": round(
                aggregate_cycles / aggregate_ref, 1
            ),
            "numpy_cycles_per_s": round(aggregate_cycles / best_fused, 1),
            "speedup": round(aggregate_ref / best_fused, 2),
        },
    }


def write_kernel_bench(document: dict[str, Any], path: str | Path) -> Path:
    """Write a kernel benchmark document as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def load_kernel_bench(path: str | Path) -> dict[str, Any]:
    """Read a kernel benchmark document, validating the schema version."""
    document = json.loads(Path(path).read_text())
    if document.get("schema") != KERNEL_BENCH_SCHEMA:
        raise ConfigurationError(
            f"kernel benchmark file {path} has schema "
            f"{document.get('schema')!r}, expected {KERNEL_BENCH_SCHEMA}"
        )
    return document
