"""The ``SimKernel`` backend interface and backend resolution rules.

A kernel owns one simulation: it is constructed from a
:class:`~repro.network.simulator.NetworkConfig`, advances in whole
network cycles, and can pack its complete observable state into a
JSON-able dict whose canonical digest is comparable *across backends*.
Two kernels built from the same config must produce identical packed
states after every cycle — that is the contract the differential
harness (:mod:`repro.kernel.differential`) enforces.

Backend resolution distinguishes a *forced* request (the ``--backend``
flag, a service job field, an explicit ``backend=`` argument) from a
*soft* preference (the ``REPRO_BACKEND`` environment variable).  A
forced request that cannot be honoured — the numpy backend under
telemetry, the sanitizer, checkpointing, or an unsupported config —
raises :class:`~repro.errors.ConfigurationError`; a soft preference
falls back to the reference kernel instead, because those paths are
implemented only by the reference simulator's instrumented classes.
"""

from __future__ import annotations

import importlib.util
import os
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.utils.digest import digest_json

if TYPE_CHECKING:
    from repro.network.metrics import SimulationResult
    from repro.network.simulator import NetworkConfig

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "NUMPY_ARBITER_KINDS",
    "NUMPY_BUFFER_KINDS",
    "SimKernel",
    "make_kernel",
    "normalize_backend",
    "numpy_available",
    "numpy_unsupported_reason",
    "requested_backend",
    "resolve_backend",
]

#: Recognized backend names, in preference-listing order.
BACKENDS = ("reference", "numpy")

DEFAULT_BACKEND = "reference"

#: Environment variable naming the soft backend preference.
BACKEND_ENV = "REPRO_BACKEND"

#: The configurations the vectorized kernel implements: the paper's four
#: buffer architectures under its two arbiters.  The ``repro.arch`` zoo
#: (DAMQ-RSV, CQ, the crosspoint/iterative schedulers) stays on the
#: reference kernel.
NUMPY_BUFFER_KINDS = ("FIFO", "SAMQ", "SAFC", "DAMQ")
NUMPY_ARBITER_KINDS = ("smart", "dumb")


class SimKernel(ABC):
    """One simulation, advanced a whole network cycle at a time."""

    #: Backend name, matching an entry of :data:`BACKENDS`.
    name: str = "abstract"

    config: "NetworkConfig"

    @property
    @abstractmethod
    def cycle(self) -> int:
        """Network cycles completed so far."""

    @abstractmethod
    def prepare(self, total_cycles: int) -> None:
        """Pre-size internal state for a run of ``total_cycles`` cycles.

        Idempotent; kernels that need no pre-sizing may ignore it.  The
        numpy kernel uses it to decode the arrival streams up front.
        """

    @abstractmethod
    def begin_measurement(self) -> None:
        """Open the measurement window at the *current* cycle.

        Equivalent to the reference ``run`` loop reaching
        ``cycle == warmup_cycles``: every packet created from this
        clock on is counted by the meters.
        """

    @abstractmethod
    def step(self) -> None:
        """Advance the network by one cycle."""

    @abstractmethod
    def packed_state(self) -> dict[str, Any]:
        """The complete observable state as a JSON-able dict.

        Covers cycle count, per-stage slot totals, every buffer's
        logical queue contents (packet id, destination, creation and
        injection clocks, in FIFO order per queue), the length
        registers, arbiter fairness state, source injection queues and
        RNG-cursor proxies (generated / stalled counts), sink and
        switch counters, the packet-factory counter and the full meters
        snapshot.  Two backends in the same state pack identically;
        physical DAMQ slot indices are deliberately excluded because
        free-list order is unobservable (see DESIGN §12).
        """

    @abstractmethod
    def finish(self, warmup_cycles: int, measure_cycles: int) -> "SimulationResult":
        """Summarize a completed run as a :class:`SimulationResult`."""

    def state_digest(self) -> str:
        """Canonical digest of :meth:`packed_state`."""
        return digest_json(self.packed_state())

    def run(
        self, warmup_cycles: int = 2000, measure_cycles: int = 10000
    ) -> "SimulationResult":
        """Warm up, measure, and summarize (reference ``run`` semantics)."""
        if warmup_cycles < 0 or measure_cycles < 1:
            raise ConfigurationError("invalid warmup/measure cycle counts")
        total = warmup_cycles + measure_cycles
        self.prepare(total)
        while self.cycle < total:
            if self.cycle == warmup_cycles:
                self.begin_measurement()
            self.step()
        return self.finish(warmup_cycles, measure_cycles)


def normalize_backend(name: str) -> str:
    """Validate and canonicalize a backend name."""
    normalized = name.strip().lower()
    if normalized not in BACKENDS:
        raise ConfigurationError(
            f"unknown simulation backend {name!r}; expected one of {BACKENDS}"
        )
    return normalized


def requested_backend() -> str | None:
    """The soft backend preference from ``REPRO_BACKEND`` (or ``None``)."""
    value = os.environ.get(BACKEND_ENV, "")
    if value in ("", "0"):
        return None
    return normalize_backend(value)


def numpy_available() -> bool:
    """Whether the numpy package is importable in this interpreter."""
    return importlib.util.find_spec("numpy") is not None


def numpy_unsupported_reason(config: "NetworkConfig") -> str | None:
    """Why the numpy kernel cannot run ``config`` (``None`` if it can).

    The vectorized kernel covers the full paper grid — all four buffer
    kinds, both protocols, both arbiter schemes, all traffic patterns,
    both flow-control fidelities — but not the orthogonal extension
    features, which stay on the reference kernel.
    """
    if not numpy_available():
        return "numpy is not installed"
    if config.buffer_kind not in NUMPY_BUFFER_KINDS:
        return (
            f"extension buffer architecture {config.buffer_kind!r} "
            "(only the paper buffers are vectorized)"
        )
    if config.arbiter_kind not in NUMPY_ARBITER_KINDS:
        return (
            f"extension scheduler {config.arbiter_kind!r} "
            "(only the paper's smart/dumb arbiters are vectorized)"
        )
    if config.packet_size != 1 or config.packet_size_max is not None:
        return "variable/multi-slot packet sizes"
    if config.serialize_links:
        return "link serialization"
    if config.packet_loss_rate > 0.0:
        return "fault injection (packet loss)"
    if config.retired_slots_per_buffer > 0:
        return "retired buffer slots"
    return None


def resolve_backend(
    config: "NetworkConfig",
    backend: str | None = None,
    *,
    sanitize: bool = False,
    trace: bool = False,
    checkpoint: bool = False,
) -> str:
    """Pick the backend for one run.

    ``backend`` is the forced request (already normalized or raw); when
    ``None`` the ``REPRO_BACKEND`` preference applies softly.  The
    instrumentation flags describe what the caller is about to do:
    telemetry, the sanitizer and checkpointing all live in the
    reference simulator's class hierarchy, so the numpy kernel refuses
    them when forced and yields to the reference kernel when merely
    preferred.
    """
    forced = backend is not None
    requested = (
        normalize_backend(backend)
        if backend is not None
        else requested_backend() or DEFAULT_BACKEND
    )
    if requested != "numpy":
        return requested
    reason: str | None = None
    if sanitize:
        reason = "the sanitizer instruments the reference buffer classes"
    elif trace:
        reason = "telemetry instruments the reference simulator classes"
    elif checkpoint:
        reason = "checkpoint/resume is implemented by the reference simulator"
    else:
        unsupported = numpy_unsupported_reason(config)
        if unsupported is not None:
            reason = f"unsupported configuration: {unsupported}"
    if reason is None:
        return "numpy"
    if forced:
        raise ConfigurationError(
            f"the numpy backend cannot run this job ({reason}); "
            "drop --backend numpy or disable the conflicting feature"
        )
    return DEFAULT_BACKEND


def make_kernel(config: "NetworkConfig", backend: str = DEFAULT_BACKEND) -> SimKernel:
    """Construct a kernel for ``config`` on the named backend."""
    normalized = normalize_backend(backend)
    if normalized == "reference":
        from repro.kernel.reference import ReferenceKernel

        return ReferenceKernel(config)
    reason = numpy_unsupported_reason(config)
    if reason is not None:
        raise ConfigurationError(
            f"the numpy backend cannot run this configuration ({reason})"
        )
    from repro.kernel.numpy_kernel import NumpyKernel

    return NumpyKernel(config)
