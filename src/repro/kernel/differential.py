"""Per-cycle differential harness for the simulation backends.

The exactness bar for the vectorized kernel is *byte-identical* packed
state after every cycle, not merely matching end-of-run metrics.  This
module runs the reference and numpy kernels in lockstep on one
configuration, compares their canonical state digests
(:meth:`~repro.kernel.base.SimKernel.state_digest`) cycle by cycle, and
on the first divergence reports which packed-state entries disagree
plus a replayable :class:`~repro.analysis.counterexample.Counterexample`
whose action trace re-drives both kernels to the divergent cycle.

The counterexample plugs into the model checker's replay machinery via
:class:`KernelDiffSystem`, a deterministic transition system registered
under ``"kernel-diff"`` in :func:`repro.analysis.model.build_system`:
its only action is ``("cycle",)`` and its probe re-raises the digest
mismatch as a :class:`~repro.analysis.properties.PropertyViolation`, so
a serialized trace replays bit-exactly with the standard tooling
(``Counterexample.replay`` or the rendered standalone script).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable

from repro.analysis.counterexample import Counterexample
from repro.analysis.properties import PropertyViolation, Violation
from repro.errors import ConfigurationError
from repro.kernel.base import SimKernel, make_kernel, numpy_unsupported_reason

if TYPE_CHECKING:
    from repro.network.simulator import NetworkConfig

__all__ = [
    "DiffReport",
    "KernelDiffSystem",
    "diff_kernels",
    "first_difference",
]

#: Stable property identifier carried by divergence violations.
DIVERGENCE_PROP = "kernel-equivalence"


def first_difference(
    reference: Any, candidate: Any, path: str = ""
) -> str | None:
    """The path of the first leaf where two packed states disagree.

    Walks dicts (sorted key order) and sequences in lockstep and returns
    a ``/``-separated path such as ``"switches/s1w03/in2/queue1"``, or
    ``None`` when the structures are identical.  Used only for diagnosis
    — equality is decided by the canonical digests.
    """
    if isinstance(reference, dict) and isinstance(candidate, dict):
        for key in sorted(set(reference) | set(candidate), key=str):
            if key not in reference or key not in candidate:
                return f"{path}/{key}"
            found = first_difference(
                reference[key], candidate[key], f"{path}/{key}"
            )
            if found is not None:
                return found
        return None
    if isinstance(reference, (list, tuple)) and isinstance(
        candidate, (list, tuple)
    ):
        if len(reference) != len(candidate):
            return f"{path}/len({len(reference)}!={len(candidate)})"
        for index, (left, right) in enumerate(zip(reference, candidate)):
            found = first_difference(left, right, f"{path}[{index}]")
            if found is not None:
                return found
        return None
    if reference != candidate:
        return path or "/"
    return None


@dataclass
class DiffReport:
    """Outcome of one lockstep differential run."""

    config: "NetworkConfig"
    cycles_compared: int
    #: Completed-cycle count at the first observed divergence (``None``
    #: — the backends stayed equivalent).
    divergence_cycle: int | None = None
    #: Packed-state path of the first disagreeing entry.
    divergence_path: str | None = None
    reference_digest: str | None = None
    numpy_digest: str | None = None
    counterexample: Counterexample | None = None
    #: Final metrics digests (populated on fully equivalent runs).
    result_digests: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.divergence_cycle is None

    def describe(self) -> str:
        label = (
            f"{self.config.buffer_kind}/{self.config.protocol}"
            f"/{self.config.arbiter_kind}"
            f"@{self.config.offered_load:g}"
        )
        if self.ok:
            return (
                f"{label}: equivalent over {self.cycles_compared} cycles"
            )
        return (
            f"{label}: DIVERGED at cycle {self.divergence_cycle} "
            f"(first difference at {self.divergence_path}; "
            f"reference {self.reference_digest} != numpy {self.numpy_digest})"
        )


class KernelDiffSystem:
    """Deterministic transition system replaying a lockstep comparison.

    The system exists so kernel divergences serialize through the same
    :class:`Counterexample` machinery as model-checker violations.  Its
    state is the pair of kernels; the single action ``("cycle",)``
    advances both by one network cycle (opening the measurement window
    when the configured warmup boundary is reached) and
    :meth:`probe` raises when the packed states disagree.
    """

    name = "kernel-diff"

    def __init__(
        self, config: "NetworkConfig", warmup_cycles: int = 0
    ) -> None:
        reason = numpy_unsupported_reason(config)
        if reason is not None:
            raise ConfigurationError(
                f"cannot diff backends on this configuration ({reason})"
            )
        if warmup_cycles < 0:
            raise ConfigurationError("warmup_cycles must be >= 0")
        self.network_config = config
        self.warmup_cycles = warmup_cycles

    def config(self) -> dict[str, Any]:
        return {
            "system": self.name,
            "network": self.network_config.to_state(),
            "warmup_cycles": self.warmup_cycles,
        }

    # -- transition-system protocol ------------------------------------

    def initial(self) -> tuple[Hashable, Any]:
        reference = make_kernel(self.network_config, "reference")
        vectorized = make_kernel(self.network_config, "numpy")
        payload = (reference, vectorized)
        return self._key(payload), payload

    def apply(
        self, payload: Any, action: tuple[Any, ...]
    ) -> tuple[Hashable, Any]:
        if action != ("cycle",):
            raise ConfigurationError(f"unknown action {action!r}")
        reference, vectorized = payload
        for kernel in (reference, vectorized):
            if kernel.cycle == self.warmup_cycles:
                kernel.begin_measurement()
            kernel.step()
        return self._key(payload), payload

    def probe(self, payload: Any) -> None:
        reference, vectorized = payload
        left = reference.state_digest()
        right = vectorized.state_digest()
        if left != right:
            where = first_difference(
                reference.packed_state(), vectorized.packed_state()
            )
            raise PropertyViolation(
                Violation(
                    prop=DIVERGENCE_PROP,
                    message=(
                        f"backends diverged at cycle {reference.cycle}: "
                        f"first difference at {where} "
                        f"(reference {left} != numpy {right})"
                    ),
                    kind=self.network_config.buffer_kind,
                )
            )

    def _key(self, payload: tuple[SimKernel, SimKernel]) -> Hashable:
        reference, _vectorized = payload
        return (self.name, reference.cycle)


def diff_kernels(
    config: "NetworkConfig",
    warmup_cycles: int = 200,
    measure_cycles: int = 900,
    compare_every: int = 1,
) -> DiffReport:
    """Run both backends in lockstep and compare packed states.

    Digests are compared every ``compare_every`` cycles (and always on
    the final cycle).  On the first mismatch the returned report carries
    the divergent cycle, the first differing packed-state path, and a
    counterexample whose trace replays the divergence.  On equivalence
    the report additionally pins both backends' final
    :class:`~repro.network.metrics.SimulationResult` digests, which must
    also agree (a safety net over the per-cycle comparison).
    """
    from repro.utils.digest import digest_json

    if measure_cycles < 1:
        raise ConfigurationError("measure_cycles must be >= 1")
    if compare_every < 1:
        raise ConfigurationError("compare_every must be >= 1")
    total = warmup_cycles + measure_cycles
    system = KernelDiffSystem(config, warmup_cycles)
    _key, payload = system.initial()
    reference, vectorized = payload
    reference.prepare(total)
    vectorized.prepare(total)
    compared = 0
    for cycle in range(total):
        _key, payload = system.apply(payload, ("cycle",))
        if (cycle + 1) % compare_every and cycle + 1 != total:
            continue
        compared += 1
        try:
            system.probe(payload)
        except PropertyViolation as error:
            return DiffReport(
                config=config,
                cycles_compared=compared,
                divergence_cycle=cycle + 1,
                divergence_path=first_difference(
                    reference.packed_state(), vectorized.packed_state()
                ),
                reference_digest=reference.state_digest(),
                numpy_digest=vectorized.state_digest(),
                counterexample=Counterexample(
                    config=system.config(),
                    actions=[("cycle",)] * (cycle + 1),
                    violation=error.violation,
                ),
            )
    result_digests = {
        "reference": digest_json(
            reference.finish(warmup_cycles, measure_cycles).to_state()
        ),
        "numpy": digest_json(
            vectorized.finish(warmup_cycles, measure_cycles).to_state()
        ),
    }
    report = DiffReport(
        config=config,
        cycles_compared=compared,
        result_digests=result_digests,
    )
    if result_digests["reference"] != result_digests["numpy"]:
        report.divergence_cycle = total
        report.divergence_path = "result"
        report.reference_digest = result_digests["reference"]
        report.numpy_digest = result_digests["numpy"]
    return report
