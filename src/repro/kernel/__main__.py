"""Command-line entry points for the kernel backends.

Examples::

    # Lockstep per-cycle equivalence check of the CI smoke grid:
    python -m repro.kernel diff --ci

    # Diff one configuration, dumping a replayable counterexample on
    # divergence:
    python -m repro.kernel diff --kind DAMQ --protocol blocking \\
        --arbiter smart --load 0.7 --counterexample diverged.json

    # Benchmark both backends on the quick grids and enforce the CI
    # floor:
    python -m repro.kernel bench --quick -o benchmarks/BENCH_9_quick.json \\
        --min-speedup 5.0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.report import QUICK_MEASURE, QUICK_WARMUP
from repro.kernel.bench import run_kernel_bench, write_kernel_bench
from repro.kernel.differential import diff_kernels
from repro.network.simulator import NetworkConfig
from repro.switch.flow_control import Protocol

#: The CI smoke grid: one fault-free configuration per buffer kind,
#: covering both flow-control protocols and both arbiter priorities
#: across the four rows.
CI_GRID = (
    ("FIFO", Protocol.BLOCKING, "smart", 0.5),
    ("DAMQ", Protocol.BLOCKING, "dumb", 0.7),
    ("SAMQ", Protocol.DISCARDING, "smart", 0.5),
    ("SAFC", Protocol.DISCARDING, "dumb", 0.5),
)


def _diff_main(args: argparse.Namespace) -> int:
    if args.ci:
        configs = [
            NetworkConfig(
                buffer_kind=kind,
                slots_per_buffer=4,
                protocol=protocol,
                arbiter_kind=arbiter,
                traffic_kind="uniform",
                offered_load=load,
                seed=args.seed,
            )
            for kind, protocol, arbiter, load in CI_GRID
        ]
    else:
        configs = [
            NetworkConfig(
                buffer_kind=args.kind,
                slots_per_buffer=args.slots,
                protocol=Protocol.from_name(args.protocol),
                arbiter_kind=args.arbiter,
                traffic_kind=args.traffic,
                offered_load=args.load,
                seed=args.seed,
            )
        ]
    failures = 0
    for config in configs:
        report = diff_kernels(
            config,
            warmup_cycles=args.warmup,
            measure_cycles=args.measure,
            compare_every=args.every,
        )
        print(report.describe())
        if report.ok:
            continue
        failures += 1
        if report.counterexample is not None and args.counterexample:
            path = Path(args.counterexample)
            path.write_text(
                json.dumps(
                    report.counterexample.to_dict(), indent=2, sort_keys=True
                )
                + "\n"
            )
            print(f"  counterexample written to {path}")
    if failures:
        print(
            f"{failures}/{len(configs)} configurations diverged",
            file=sys.stderr,
        )
        return 1
    print(f"all {len(configs)} configurations equivalent")
    return 0


def _bench_main(args: argparse.Namespace) -> int:
    document = run_kernel_bench(
        quick=args.quick, seed=args.seed, repeats=args.repeats
    )
    aggregate = document["aggregate"]
    print(
        f"AGGREGATE: reference {aggregate['reference_wall_s']:.2f}s  "
        f"numpy {aggregate['numpy_wall_s']:.2f}s  "
        f"speedup {aggregate['speedup']:.2f}x  "
        f"({aggregate['sims']} sims, {aggregate['cycles']} cycles/backend)"
    )
    if args.output:
        path = write_kernel_bench(document, args.output)
        print(f"benchmark written to {path}")
    if args.min_speedup is not None and aggregate["speedup"] < args.min_speedup:
        print(
            f"SPEEDUP FLOOR MISSED: {aggregate['speedup']:.2f}x < "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.kernel",
        description="Differential testing and benchmarking of the "
        "simulation backends.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    diff = commands.add_parser(
        "diff",
        help="lockstep per-cycle state comparison of both backends",
    )
    diff.add_argument(
        "--ci",
        action="store_true",
        help="run the CI smoke grid (one config per buffer kind, both "
        "protocols and both arbiter priorities covered)",
    )
    diff.add_argument("--kind", default="DAMQ")
    diff.add_argument("--slots", type=int, default=4)
    diff.add_argument(
        "--protocol", default="blocking", choices=["blocking", "discarding"]
    )
    diff.add_argument("--arbiter", default="smart")
    diff.add_argument("--traffic", default="uniform")
    diff.add_argument("--load", type=float, default=0.5)
    diff.add_argument("--seed", type=int, default=1988)
    diff.add_argument("--warmup", type=int, default=QUICK_WARMUP)
    diff.add_argument("--measure", type=int, default=QUICK_MEASURE)
    diff.add_argument(
        "--every",
        type=int,
        default=1,
        metavar="N",
        help="compare digests every N cycles (default: every cycle)",
    )
    diff.add_argument(
        "--counterexample",
        metavar="PATH",
        help="on divergence, write the replayable counterexample here",
    )
    diff.set_defaults(entry=_diff_main)

    bench = commands.add_parser(
        "bench",
        help="benchmark reference vs numpy on the figure3/table3 grids",
    )
    bench.add_argument(
        "--quick",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="quick windows and loads (default) or the full sweeps",
    )
    bench.add_argument("--seed", type=int, default=1988)
    bench.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="take the best of this many timing passes per backend",
    )
    bench.add_argument("-o", "--output", metavar="PATH")
    bench.add_argument(
        "--min-speedup",
        type=float,
        metavar="X",
        help="exit 1 unless the aggregate numpy speedup reaches X",
    )
    bench.set_defaults(entry=_bench_main)

    args = parser.parse_args(argv)
    result: int = args.entry(args)
    return result


if __name__ == "__main__":
    sys.exit(main())
