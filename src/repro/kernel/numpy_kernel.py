"""Struct-of-arrays numpy backend for the Omega-network simulator.

Where the reference simulator advances one Python object at a time, this
kernel stores the whole network as a handful of integer arrays and
advances every switch of a stage per array operation:

* **Queue rings** — each input buffer's per-destination queues live in a
  ring array ``ring[stage, switch, input, output, slot]`` of packet ids
  with head/length registers (the FIFO keeps a single ring per input
  plus the stored local output of every entry).  Packet attributes
  (destination, creation and injection clocks) live in flat pools
  indexed by packet id.
* **Vectorized arbitration** — the reference arbiter's
  longest-unblocked-queue scan is re-expressed as an argmax over a
  composite key ``(length << 44) | (stale << 4) | (radix-1-output)``
  that encodes the exact lexicographic preference (length, then stale
  count when smart, then lowest output index).  Rotating the key rows by
  each switch's priority pointer turns the round-robin examination order
  into ``radix`` argmax steps executed for all switches of a stage at
  once; granted output columns are invalidated between steps, and the
  SAFC's multi-read passes loop until no switch makes progress — the
  same fixpoint the reference while-loop reaches.
* **Pre-decoded arrivals** — source draw sequences are state-independent
  (a stalled source draws nothing), so :mod:`repro.kernel.arrivals`
  decodes each source's raw PCG64 stream up front and injection becomes
  a vectorized countdown against per-source attempt schedules.
* **Simulation batching** — the quick/full experiment grids run many
  *structurally identical* configurations (same topology, buffer kind,
  capacity and protocol; different loads, seeds, arbiter schemes or
  traffic patterns).  :meth:`NumpyKernel.batch` fuses ``B`` such
  simulations into one kernel by widening the stage axis: virtual stage
  ``u = s * B + b`` holds network stage ``s`` of simulation ``b``.
  Simulations never interconnect — the inter-stage wiring offset simply
  becomes ``+B`` — so every array op amortizes its fixed dispatch cost
  over the whole batch, which is where the speedup over the reference
  simulator comes from at the paper's 64x64 scale.

Batching whole stages is exact because the inter-stage wiring is a
bijection: each downstream buffer has exactly one upstream feeder, so
the pushes of one switch can never affect another switch's flow-control
predicate within the same stage, and all granted (switch, input, output)
triples of a stage are unique.  Stages are processed last-to-first,
exactly like the reference ``step``; when no downstream buffer is full
(always, under the discarding protocol) the blocked predicate is
identically false and all stages arbitrate in one stacked batch.
Deliveries are replayed through a scalar Welford loop in the reference's
(switch index, grant order) sequence so the latency accumulators match
bit for bit.

The result is byte-identical packed state — same packets, same grants,
same meters, same RNG stream consumption — verified every cycle by
:mod:`repro.kernel.differential`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.kernel.arrivals import GAP_SENTINEL, decode_arrivals
from repro.kernel.base import SimKernel, numpy_unsupported_reason
from repro.network.metrics import Meters, SimulationResult
from repro.network.simulator import NetworkConfig
from repro.network.topology import OmegaTopology
from repro.network.traffic import make_traffic
from repro.switch.flow_control import Protocol
from repro.utils.stats import OnlineStats

__all__ = ["NumpyKernel", "batch_group_key"]

#: Bit layout of the arbitration key: length in the high bits, stale
#: count (smart scheme only) in the middle, output preference in the low
#: nibble.  Requires radix <= 16 and stale counts < 2**40 — both far
#: beyond any configuration the simulator accepts in practice.
_LENGTH_SHIFT = 44
_STALE_SHIFT = 4

#: Any candidate with a non-empty queue scores at least ``1 << 44``
#: (length >= 1), while an empty queue's key — stale and rank bits only —
#: stays strictly below.  Using this threshold as the grant test makes
#: the explicit ``key[ql == 0] = -1`` masking unnecessary: empty-queue
#: candidates simply never win.
_VALID = 1 << _LENGTH_SHIFT


def batch_group_key(config: NetworkConfig) -> tuple[Any, ...]:
    """Structural batching key: equal keys may share one kernel.

    Configurations in one batch must agree on everything that shapes the
    arrays — topology, buffer *layout* (the FIFO's shared-ring storage
    versus the per-destination rings of DAMQ/SAMQ/SAFC), slot count,
    clocking and effective source queue depth.  Everything else is a
    per-simulation property: offered load, seed, arbiter scheme,
    traffic pattern, protocol, flow-control fidelity, and the exact
    buffer kind within the ring layout — which is how the paper's whole
    experiment grid collapses into two kernels.
    """
    kind = config.buffer_kind.upper()
    layout = "FIFO" if kind == "FIFO" else "ring"
    # Mirrors the reference's exact predicate (an enum identity test):
    # a non-enum protocol value disables discard-at-injection there too.
    discard_at_injection = (
        config.protocol is Protocol.DISCARDING and config.discard_at_injection
    )
    effective_capacity = (
        0 if discard_at_injection else config.source_queue_capacity
    )
    return (
        config.num_ports,
        config.radix,
        layout,
        config.slots_per_buffer,
        discard_at_injection,
        config.cycle_clocks,
        effective_capacity,
    )


class NumpyKernel(SimKernel):
    """Struct-of-arrays simulation kernel (numpy backend)."""

    name = "numpy"

    def __init__(self, config: NetworkConfig) -> None:
        self._setup([config])

    @classmethod
    def batch(cls, configs: list[NetworkConfig]) -> "NumpyKernel":
        """Fuse structurally identical configs into one batched kernel."""
        kernel = cls.__new__(cls)
        kernel._setup(list(configs))
        return kernel

    def _setup(self, configs: list[NetworkConfig]) -> None:
        if not configs:
            raise ConfigurationError("a kernel batch needs at least one config")
        for config in configs:
            reason = numpy_unsupported_reason(config)
            if reason is not None:
                raise ConfigurationError(
                    f"the numpy backend cannot run this configuration ({reason})"
                )
        group = batch_group_key(configs[0])
        for config in configs[1:]:
            if batch_group_key(config) != group:
                raise ConfigurationError(
                    "batched configurations must be structurally identical "
                    f"({batch_group_key(config)} != {group})"
                )
        self.configs = configs
        self.config = configs[0]
        config = self.config
        topology = OmegaTopology(config.num_ports, config.radix)
        self.B = len(configs)
        self.N = config.num_ports
        self.BN = self.B * self.N
        self.R = config.radix
        self.S = topology.num_stages
        self.SV = self.S * self.B
        self.W = topology.switches_per_stage
        if self.R > 16:
            raise ConfigurationError(
                "the numpy backend's arbitration key packs the output "
                "index into 4 bits; radix > 16 needs the reference backend"
            )
        kinds = []
        for cfg in configs:
            kind = cfg.buffer_kind.upper()
            if kind not in ("FIFO", "DAMQ", "SAMQ", "SAFC"):
                raise ConfigurationError(
                    f"unknown buffer kind {cfg.buffer_kind!r}"
                )
            kinds.append(kind)
        self.kinds = kinds
        self.kind = kinds[0]
        self.layout = "FIFO" if kinds[0] == "FIFO" else "ring"
        self.C = config.slots_per_buffer
        cq_list = []
        for kind in kinds:
            if kind in ("SAMQ", "SAFC"):
                if self.C % self.R != 0:
                    raise ConfigurationError(
                        f"{kind} capacity {self.C} is not divisible by "
                        f"{self.R} output ports"
                    )
                cq_list.append(self.C // self.R)
            else:
                cq_list.append(self.C)
        # Per-sim queue capacity; the ring arrays are as wide as the
        # largest, and every wrap/fullness check uses the sim's own.
        self._cq_b = np.array(cq_list, dtype=np.int64)
        self.CqW = int(self._cq_b.max())
        self._cq_uniform = len(set(cq_list)) == 1
        self.Cq = cq_list[0] if self._cq_uniform else None
        reads_list = [self.R if kind == "SAFC" else 1 for kind in kinds]
        self._single_read = all(reads == 1 for reads in reads_list)
        self.max_reads = max(reads_list)
        smart_flags = []
        for cfg in configs:
            scheme = cfg.arbiter_kind.lower()
            if scheme not in ("smart", "dumb"):
                raise ConfigurationError(
                    f"unknown arbiter kind {cfg.arbiter_kind!r}"
                )
            smart_flags.append(scheme == "smart")
        self._smart_all = all(smart_flags)
        self._smart_any = any(smart_flags)
        self.clk = config.cycle_clocks
        blocking_flags = [
            cfg.protocol is Protocol.BLOCKING for cfg in configs
        ]
        self._blocking_b = blocking_flags
        self._blocking_any = any(blocking_flags)
        self._blocking_all = all(blocking_flags)
        self.blocking = blocking_flags[0]
        conservative_flags = [
            blocking_flags[b]
            and cfg.flow_control_fidelity == "conservative"
            and kinds[b] in ("SAMQ", "SAFC")
            for b, cfg in enumerate(configs)
        ]
        self.conservative = conservative_flags[0]
        self._conservative_b = conservative_flags
        # Buffer-level room/blocked semantics (whole buffer full) versus
        # queue-level (the destination's partition full).
        buflevel = [kind in ("FIFO", "DAMQ") for kind in kinds]
        self._buflevel_b = buflevel
        self._buflevel_all = all(buflevel)
        self._buflevel_none = not any(buflevel)
        self._discard_at_injection = (
            config.protocol is Protocol.DISCARDING
            and config.discard_at_injection
        )
        self.queue_capacity = (
            0 if self._discard_at_injection else config.source_queue_capacity
        )
        self.patterns = [
            make_traffic(
                cfg.traffic_kind, self.N, cfg.hot_fraction, cfg.hot_port
            )
            for cfg in configs
        ]
        self.pattern = self.patterns[0]

        B, N, R, S, W, C = self.B, self.N, self.R, self.S, self.W, self.C
        Cq = self.CqW
        SV = self.SV
        i64 = np.int64
        # Routing digit per network stage for every destination (shared
        # by all simulations — the topology is structural).
        self.digit = np.empty((S, N), dtype=i64)
        for destination in range(N):
            route = topology.route(0, destination)
            for stage in range(S):
                self.digit[stage, destination] = route[stage]
        # Inter-stage wiring (bijections) and stage-0 entry points.
        self.dw = np.empty((max(S - 1, 1), W, R), dtype=i64)
        self.di = np.empty((max(S - 1, 1), W, R), dtype=i64)
        for stage in range(S - 1):
            for switch in range(W):
                for output in range(R):
                    hop = topology.next_hop(stage, switch, output)
                    self.dw[stage, switch, output] = hop.switch
                    self.di[stage, switch, output] = hop.port
        # Downstream buffer as a flat (switch * R + input) index, for
        # gathering per-buffer state along the wiring in one op.
        self.flatidx = self.dw * R + self.di
        # Virtual-stage expansions: row u = s * B + b reads network row s.
        self.digit_v = np.repeat(self.digit, B, axis=0)
        self.dw_v = np.repeat(self.dw, B, axis=0)
        self.di_v = np.repeat(self.di, B, axis=0)
        entry_w = np.empty(N, dtype=i64)
        entry_i = np.empty(N, dtype=i64)
        for port in range(N):
            entry = topology.entry_point(port)
            entry_w[port] = entry.switch
            entry_i[port] = entry.port
        # Global source port p = b * N + n enters stage-0 virtual row b.
        self.entry_w = np.tile(entry_w, B)
        self.entry_i = np.tile(entry_i, B)
        # Flat (virtual stage, switch, input) buffer addresses — one
        # gather against these replaces three coordinate gathers plus
        # multi-array fancy indexing at the push sites.
        sv_dst = np.arange((S - 1) * B, dtype=i64)[:, None, None] + B
        self._oflat_v = (sv_dst * W + self.dw_v) * R + self.di_v
        p_ar = np.arange(B * N, dtype=i64)
        self._entry_oflat = (
            (p_ar // N) * W + self.entry_w
        ) * R + self.entry_i

        # Buffer state.  Queue rings hold packet ids; per-queue capacity
        # is the whole buffer for the dynamically shared kinds and one
        # partition for the statically partitioned ones.
        if self.layout == "FIFO":
            self.fring = np.zeros((SV, W, R, C), dtype=i64)
            self.fdest = np.zeros((SV, W, R, C), dtype=i64)
            self.fhead = np.zeros((SV, W, R), dtype=i64)
            self.flen = np.zeros((SV, W, R), dtype=i64)
            self.ring = self.qhead = self.qlen = None
        else:
            self.ring = np.zeros((SV, W, R, R, Cq), dtype=i64)
            self.qhead = np.zeros((SV, W, R, R), dtype=i64)
            self.qlen = np.zeros((SV, W, R, R), dtype=i64)
            self.fring = self.fdest = self.fhead = self.flen = None
        # Occupied slots per input buffer (all kinds).
        self.occb = np.zeros((SV, W, R), dtype=i64)
        # Arbiter fairness state.
        self.prio = np.zeros((SV, W), dtype=i64)
        self.stale = np.zeros((SV, W, R, R), dtype=i64)
        # Switch / sink counters.
        self.recv = np.zeros((SV, W), dtype=i64)
        self.fwd = np.zeros((SV, W), dtype=i64)
        self.sink_recv = np.zeros(self.BN, dtype=i64)
        self.sink_mis = np.zeros(self.BN, dtype=i64)
        # Sources: injection-queue rings plus the arrival countdowns.
        self.K2 = self.queue_capacity + 2
        self.sring = np.zeros((self.BN, self.K2), dtype=i64)
        self.shead = np.zeros(self.BN, dtype=i64)
        self.slen = np.zeros(self.BN, dtype=i64)
        self.src_gen = np.zeros(self.BN, dtype=i64)
        self.src_stall = np.zeros(self.BN, dtype=i64)
        self.att = np.zeros(self.BN, dtype=i64)
        self.next_k = np.zeros(self.BN, dtype=i64)
        self.target = np.full(self.BN, GAP_SENTINEL, dtype=i64)
        # Packet pools.  Global packet id = sim * stride + local id, so
        # each simulation's local ids count 0, 1, 2, ... exactly like
        # the reference packet factory; ``prepare`` sizes the stride.
        self.pk_dest = np.zeros(1, dtype=i64)
        self.pk_created = np.zeros(1, dtype=i64)
        self.pk_injected = np.zeros(1, dtype=i64)
        self.next_idv = np.zeros(B, dtype=i64)
        self._stride = 0
        self._plan_attempts = -1
        self._arr_att: Any = None
        self._dests: Any = None
        self._offsets: Any = None

        self._cycle = 0
        self.measure_start_clock: int | None = None
        self.stage_slots = np.zeros(SV, dtype=i64)
        self.metersL = [Meters(num_ports=N) for _ in range(B)]
        # Deferred meter samples: per-cycle (sims, latency, network)
        # delivery triples and stage-slot snapshots, folded into the
        # ``Meters`` accumulators by :meth:`_flush_meters` before any
        # read (``finish`` / ``packed_state``).
        self._pend: list[tuple[Any, Any, Any]] = []
        self._occ_pend: list[Any] = []
        self._cnt_pend: dict[str, Any] = {}
        # Precomputed helpers for the arbitration loop.
        # Examination-order table: row p lists inputs starting at p.
        self._rows_table = (
            np.arange(R, dtype=i64)[None, :] + np.arange(R, dtype=i64)[:, None]
        ) % R
        self._rank_o = np.arange(R - 1, -1, -1, dtype=i64)
        # Mixed smart/dumb batches mask the stale term and the priority
        # advance per simulation; uniform batches skip the masks.
        if self._smart_any and not self._smart_all:
            flags = np.array(smart_flags)
            # Pre-shifted per-row stale weight: ``stale * weight`` adds
            # the masked stale term in a single op per cycle.
            stacked = np.repeat(np.tile(flags, S), W)
            self._smart_stacked_bool = stacked
            self._smart_stacked_16 = (
                stacked.astype(i64)[:, None, None] << _STALE_SHIFT
            )
        else:
            self._smart_stacked_bool = None
            self._smart_stacked_16 = None
        # Flat views of the fixed-size state arrays (the packet pools
        # are the only arrays ever reallocated), so the per-cycle hot
        # paths never re-derive them.
        self._occ_flat = self.occb.reshape(-1)
        self._stale_flat = self.stale.reshape(-1)
        self._prio_flat = self.prio.reshape(-1)
        self._fwd_flat = self.fwd.reshape(-1)
        self._recv_flat = self.recv.reshape(-1)
        if self.layout == "FIFO":
            self._fring_flat = self.fring.reshape(-1)
            self._fdest_flat = self.fdest.reshape(-1)
            self._fhead_flat = self.fhead.reshape(-1)
            self._flen_flat = self.flen.reshape(-1)
            self._ring_flat = self._qhead_flat = self._qlen_flat = None
        else:
            self._ring_flat = self.ring.reshape(-1)
            self._qhead_flat = self.qhead.reshape(-1)
            self._qlen_flat = self.qlen.reshape(-1)
            self._fring_flat = self._fdest_flat = None
            self._fhead_flat = self._flen_flat = None
        self._b_grid = np.arange(B, dtype=i64)[:, None, None, None]
        # Mixed-property helpers: per-port / per-virtual-stage expansions
        # of the per-sim capacity, protocol and room-semantics vectors.
        flags_blocking = np.array(blocking_flags)
        flags_buflevel = np.array(buflevel)
        self._cq_b4 = self._cq_b[:, None, None, None]
        self._cq_vstage = np.tile(self._cq_b, S)
        self._cq_port = np.repeat(self._cq_b, N)
        self._buflevel_port = np.repeat(flags_buflevel, N)
        self._buflevel_vstage = np.tile(flags_buflevel, S)
        self._blocking_vstage = np.tile(flags_blocking, S)
        self._blocking_mask4 = flags_blocking[:, None, None, None]
        self._buflevel_mask4 = flags_buflevel[:, None, None, None]
        self._cons_mask4 = np.array(conservative_flags)[:, None, None, None]
        self._any_buflevel_blocking = any(
            blocking_flags[b] and buflevel[b] for b in range(B)
        )
        self._any_cons = any(conservative_flags)
        self._any_precise = any(
            blocking_flags[b] and not buflevel[b] and not conservative_flags[b]
            for b in range(B)
        )
        # Fullness scan rows for the stacked/sequential gate: only the
        # blocking sims' past-stage-0 buffers can block anything.
        occ_rows = [
            u for u in range(B, SV)
            if blocking_flags[u % B] and buflevel[u % B]
        ]
        q_rows = [
            u for u in range(B, SV)
            if blocking_flags[u % B] and not buflevel[u % B]
        ]
        self._full_occ_rows = (
            np.array(occ_rows, dtype=i64) if occ_rows else None
        )
        self._full_q_rows = np.array(q_rows, dtype=i64) if q_rows else None
        self._full_q_cq = (
            self._cq_b[np.array(q_rows, dtype=i64) % B][:, None, None, None]
            if q_rows
            else None
        )
        # (sim, bound) pairs for the per-stage may-block gate.
        self._gate_checks = [
            (b, self.C if buflevel[b] else int(self._cq_b[b]))
            for b in range(B)
            if blocking_flags[b]
        ]
        if not self._single_read:
            # Static row subsets of the multi-read (SAFC) sims: after the
            # first arbitration pass every single-read row is dead, so
            # later passes only touch these rows.  ``None`` when every
            # sim is multi-read (subsetting would buy nothing).
            multi = np.array(
                [b for b in range(B) if reads_list[b] > 1], dtype=i64
            )
            if multi.size == B:
                self._multi_rows_seq = self._multi_rows_stacked = None
            else:
                w_ar = np.arange(W, dtype=i64)
                self._multi_rows_seq = (
                    multi[:, None] * W + w_ar
                ).ravel()
                s_ar = np.arange(S, dtype=i64)
                self._multi_rows_stacked = (
                    ((s_ar[:, None] * B + multi) [:, :, None]) * W + w_ar
                ).ravel()
        else:
            self._multi_rows_seq = self._multi_rows_stacked = None
        # Reusable grant-round scratch, keyed by batch width (one stage
        # or all stages stacked): index vectors plus the rotated key
        # array, widened by a dummy output column so non-granting
        # switches can scatter into it harmlessly.
        self._scratch_cache: dict[int, tuple[Any, Any, Any]] = {}

    # ------------------------------------------------------------------
    # SimKernel interface
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        return self._cycle

    @property
    def meters(self) -> Meters:
        return self.metersL[0]

    def prepare(self, total_cycles: int) -> None:
        if self._plan_attempts >= total_cycles:
            return
        plans = [decode_arrivals(cfg, total_cycles) for cfg in self.configs]
        width = max(plan.gaps.shape[1] for plan in plans)
        gaps = np.full((self.BN, width), GAP_SENTINEL, dtype=np.int64)
        dests = np.zeros((self.BN, width), dtype=np.int64)
        offsets = np.zeros((self.BN, width), dtype=np.int64)
        counts = np.zeros(self.BN, dtype=np.int64)
        for b, plan in enumerate(plans):
            rows = slice(b * self.N, (b + 1) * self.N)
            cols = plan.gaps.shape[1]
            gaps[rows, :cols] = plan.gaps
            dests[rows, :cols] = plan.dests
            offsets[rows, :cols] = plan.offsets
            counts[rows] = plan.counts
        # Attempt number (1-based, cumulative) of each arrival; the
        # sentinel column (and any padding) stays unreachably large.
        padded = gaps >= GAP_SENTINEL
        arr_att = np.cumsum(np.where(padded, 0, gaps) + 1, axis=1)
        arr_att[padded] = GAP_SENTINEL
        self._plan_attempts = total_cycles
        self._arr_att = arr_att
        self._dests = dests
        self._offsets = offsets
        # Re-deriving the plan over a longer horizon reproduces the old
        # prefix exactly, so live cursors (att, next_k) stay valid; only
        # the per-source targets must be re-read from the new table.
        self.target = arr_att[np.arange(self.BN), self.next_k]
        stride = int(counts.reshape(self.B, self.N).sum(axis=1).max()) + 1
        self._grow_pools(stride)

    def _grow_pools(self, stride: int) -> None:
        """Resize the packet pools to ``B * stride``, preserving ids.

        Growing the stride moves every simulation's id block, so all
        stored global ids (queue rings, source rings) are remapped in
        place: ``id += (id // old_stride) * (stride - old_stride)``.
        Local ids and the per-sim counters are stride-independent.
        """
        old = self._stride
        if stride <= old:
            return
        if old and self.B > 1:
            diff = stride - old
            arrays = (
                (self.fring, self.sring)
                if self.layout == "FIFO"
                else (self.ring, self.sring)
            )
            for array in arrays:
                array += (array // old) * diff
        for attr in ("pk_dest", "pk_created", "pk_injected"):
            pool = getattr(self, attr)
            grown = np.zeros(self.B * stride, dtype=np.int64)
            if old:
                for b in range(self.B):
                    grown[b * stride : b * stride + old] = pool[
                        b * old : (b + 1) * old
                    ]
            setattr(self, attr, grown)
        self._stride = stride

    def begin_measurement(self) -> None:
        if self.measure_start_clock is None:
            self.measure_start_clock = self._cycle * self.clk

    def step(self) -> None:
        if self._plan_attempts <= self._cycle:
            self.prepare(max(64, 2 * (self._cycle + 1)))
        if self.stage_slots.any():
            # Blocking can only bite while some downstream buffer is
            # full; otherwise the stages decouple within the cycle and
            # all of them arbitrate in one stacked batch (always the
            # case under the discarding protocol).
            if self._blocking_any and self._any_downstream_full():
                self._run_stages_sequenced()
            else:
                self._run_all_stages()
        self._inject()
        if self.measure_start_clock is not None:
            # Snapshot now, fold into the occupancy stats at flush time.
            self._occ_pend.append(self.stage_slots.copy())
        self._cycle += 1

    def finish(
        self, warmup_cycles: int, measure_cycles: int
    ) -> SimulationResult:
        return self._result(0, warmup_cycles, measure_cycles)

    def _result(
        self, sim: int, warmup_cycles: int, measure_cycles: int
    ) -> SimulationResult:
        self._flush_meters()
        meters = self.metersL[sim]
        meters.cycles = measure_cycles
        config = self.configs[sim]
        return SimulationResult(
            buffer_kind=config.buffer_kind,
            protocol=str(config.protocol),
            arbiter_kind=config.arbiter_kind,
            traffic_kind=self.patterns[sim].kind,
            offered_load=config.offered_load,
            slots_per_buffer=config.slots_per_buffer,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
            seed=config.seed,
            meters=meters,
        )

    def run_batch(
        self, warmup_cycles: int = 2000, measure_cycles: int = 10000
    ) -> list[SimulationResult]:
        """Run the whole batch and summarize each simulation."""
        if warmup_cycles < 0 or measure_cycles < 1:
            raise ConfigurationError("invalid warmup/measure cycle counts")
        total = warmup_cycles + measure_cycles
        self.prepare(total)
        while self._cycle < total:
            if self._cycle == warmup_cycles:
                self.begin_measurement()
            self.step()
        return [
            self._result(sim, warmup_cycles, measure_cycles)
            for sim in range(self.B)
        ]

    # ------------------------------------------------------------------
    # One stage: arbitration, pops, forwards / deliveries
    # ------------------------------------------------------------------

    def _scratch(self, batch: int) -> tuple[Any, Any, Any, Any]:
        """Index vectors and the widened key scratch for ``batch`` rows."""
        cached = self._scratch_cache.get(batch)
        if cached is None:
            u_ar = np.arange(batch, dtype=np.int64)
            keyx = np.empty((batch, self.R, self.R + 1), dtype=np.int64)
            picks = np.empty((self.R, batch), dtype=np.int64)
            cached = (u_ar, u_ar[:, None], keyx, picks)
            self._scratch_cache[batch] = cached
        return cached

    def _rounds(
        self, key: Any, prio: Any
    ) -> tuple[Any, Any, Any, Any, Any, Any]:
        """Run the grant rounds for a batch of switches at once.

        ``key`` is the masked arbitration key, ``[batch, input,
        output]``; ``prio`` the matching priority pointers.  Each round
        argmaxes one examination step for every switch.  Rather than
        extracting the granting switches per round, each round scatters
        its grants into a dummy output column ``R`` for non-granting
        switches (``keyx`` is one column wider than real outputs, so the
        unconditional scatter is harmless) and records only the chosen
        column vector; all grants are extracted after the loop with a
        single ``nonzero``.  Returns ``(rows, Ug, Ig, Og, Seq, got0)``
        where ``rows`` is the examination-order table, ``Ug/Ig/Og/Seq``
        the granted (switch, input, output, examination sequence)
        vectors and ``got0`` the boolean "granted at step 0" vector that
        drives the smart scheme's priority advance.
        """
        R = self.R
        u_ar, u_col, keyx, picks = self._scratch(key.shape[0])
        rows = self._rows_table[prio]
        keyx[:, :, :R] = key[u_col, rows]
        keyx[:, :, R] = -1
        sub_chosen: list[Any] = []
        sub = None
        # Pass 1: a switch's input is examined exactly once, and every
        # input still has its full read budget, so no eligibility test.
        for t in range(R):
            row_keys = keyx[:, t, :]
            best = row_keys.argmax(1)
            got = row_keys[u_ar, best] >= _VALID
            taken = np.where(got, best, R)
            keyx[u_ar, :, taken] = -1  # output taken for this cycle
            picks[t] = taken
        granted = picks != R
        if self.max_reads > 1 and granted.any():
            # SAFC: passes repeat while any switch still makes progress;
            # an input that offered nothing is dead for the whole cycle
            # (reads zeroed), exactly like the reference while-loop.
            # Non-SAFC sims fused into the batch have one read per
            # input — dead after pass 1 — so later passes run on the
            # static multi-read row subset.  Read budgets only change
            # at pass boundaries (each input is examined once per
            # pass), so the bookkeeping is a per-pass batch update:
            # granted inputs keep ``budget - passes granted``, inputs
            # that offered nothing drop to zero, and exhausted inputs'
            # key rows are erased before the next pass.
            sub = self._multi_rows_stacked
            if sub is not None and key.shape[0] != self.SV * self.W:
                sub = self._multi_rows_seq
            live = keyx if sub is None else keyx[sub]
            # Probe before the budget bookkeeping: erasing dead inputs
            # only removes keys, so a probe below the validity floor
            # already proves no later pass can grant — the common case
            # at moderate load ends here for the price of one ``max``.
            if int(live.max()) >= _VALID:
                if sub is None:
                    m_ar = u_ar
                    granted_r = granted.T
                else:
                    m_ar = np.arange(sub.size, dtype=np.int64)
                    granted_r = granted.T[sub]
                # Remaining read budgets, kept in the same *round* order
                # as ``live``'s second axis — an input occupies one
                # round slot for the whole cycle.  All multi-read sims
                # use the SAFC budget of R reads.  A pass-end kill is
                # exact: a starved input's keys only shrink, so it
                # could not have granted mid-pass either.
                reads_s = np.where(granted_r, R - 1, 0)
                live[reads_s == 0] = -1
                # The dummy column is -1, so a whole-array max is a
                # valid (and cheaper) any-candidate-left probe.
                while int(live.max()) >= _VALID:
                    # Any remaining valid key guarantees a grant this
                    # pass: its input is examined and argmax finds it
                    # (or a better one), so the loop always progresses.
                    base = len(sub_chosen)
                    for t in range(R):
                        row_keys = live[:, t, :]
                        best = row_keys.argmax(1)
                        found = row_keys[m_ar, best] >= _VALID
                        taken = np.where(found, best, R)
                        live[m_ar, :, taken] = -1
                        sub_chosen.append(taken)
                    granted_p = np.array(sub_chosen[base:]) != R
                    reads_s = np.where(granted_p.T, reads_s - 1, 0)
                    live[reads_s == 0] = -1
        Seq, Ug = granted.nonzero()
        Og = picks[Seq, Ug]
        Ig = rows[Ug, Seq % R]
        if sub_chosen:
            # Map the subset rows' later-pass grants back to global rows
            # and sequence numbers (pass 1 used rounds ``0 .. R-1``).
            picks2 = np.array(sub_chosen)
            Seq2, Us2 = (picks2 != R).nonzero()
            if Us2.size:
                Og2 = picks2[Seq2, Us2]
                Ug2 = Us2 if sub is None else sub[Us2]
                Ig2 = rows[Ug2, Seq2 % R]
                Ug = np.concatenate([Ug, Ug2])
                Ig = np.concatenate([Ig, Ig2])
                Og = np.concatenate([Og, Og2])
                Seq = np.concatenate([Seq, Seq2 + R])
        got0 = picks[0] != R
        return rows, Ug, Ig, Og, Seq, got0

    def _fairness(
        self, ql: Any, prio: Any, stale: Any, occ: Any, got0: Any, mask: Any
    ) -> None:
        """Post-arbitration fairness update on pre-pop lengths.

        ``ql``/``prio``/``stale``/``occ`` are batch views (one stage or
        all stages flattened); updates happen in place through them.
        ``mask`` selects the smart rows of a mixed batch (``None`` when
        the whole batch shares one scheme).
        """
        stale += 1
        stale *= ql > 0
        if mask is None:
            if self._smart_all:
                advance = got0
            else:
                # Dumb round robin advances for every switch that
                # arbitrated (occupancy > 0 — idle switches are skipped).
                advance = occ.any(1)
        else:
            advance = np.where(mask, got0, occ.any(1))
        prio += advance
        prio %= self.R

    def _stacked_key(self) -> tuple[Any, Any]:
        """Cycle-start candidate lengths and arbitration keys, stacked.

        ``ql4`` is the candidate length register ``[vstage, switch,
        input, output]`` — the live ``qlen`` array for the ring layout,
        a freshly scattered register for FIFO — and ``key`` the
        composite arbitration key, materialized before any pop.  Every
        stage's candidates are fixed at cycle start (upstream pushes
        land only after it arbitrates; downstream pops never touch its
        queues), so one stacked construction serves both the stacked
        fast path and the sequenced blocking walk.
        """
        R, W, SV = self.R, self.W, self.SV
        U = SV * W
        if self.layout == "FIFO":
            head_dest = np.take_along_axis(
                self.fdest, self.fhead[..., None], axis=3
            )[..., 0]
            ql4 = np.zeros((SV, W, R, R), dtype=np.int64)
            np.put_along_axis(ql4, head_dest[..., None], self.flen[..., None], 3)
        else:
            ql4 = self.qlen
        ql = ql4.reshape(U, R, R)
        stale = self.stale.reshape(U, R, R)
        key = ql << _LENGTH_SHIFT
        if self._smart_all:
            key += stale << _STALE_SHIFT
        elif self._smart_any:
            key += stale * self._smart_stacked_16
        key += self._rank_o
        return ql4, key

    def _pop(self, bflat: Any, Sg: Any, Og: Any) -> Any:
        """Pop the granted head packets; returns their global ids.

        ``bflat`` holds flat ``(vstage, switch, input)`` buffer
        addresses.  Granted 4-tuples are unique per cycle, so every
        flat address below is unique and the direct fancy updates are
        exact — except the occupancy decrement of a multi-read (SAFC)
        batch, where one input buffer can grant several outputs.
        """
        if self.layout == "FIFO":
            heads = self._fhead_flat[bflat]
            ids = self._fring_flat[bflat * self.C + heads]
            bumped = heads + 1
            self._fhead_flat[bflat] = np.where(bumped == self.C, 0, bumped)
            self._flen_flat[bflat] -= 1
        else:
            qflat = bflat * self.R + Og
            heads = self._qhead_flat[qflat]
            ids = self._ring_flat[qflat * self.CqW + heads]
            bumped = heads + 1
            cq = self.Cq if self._cq_uniform else self._cq_vstage[Sg]
            self._qhead_flat[qflat] = np.where(bumped == cq, 0, bumped)
            self._qlen_flat[qflat] -= 1
        if self.max_reads == 1:
            self._occ_flat[bflat] -= 1
        else:
            np.add.at(self._occ_flat, bflat, -1)
        return ids

    def _run_all_stages(self) -> None:
        """Arbitrate every virtual stage in one stacked batch.

        Exact whenever no candidate can be blocked (discarding protocol,
        or blocking with no full downstream buffer): the stages then
        decouple within the cycle, because a stage's pushes only land in
        the *next* stage's buffers — which have already popped — and the
        blocked predicate is identically false.  Grants, pops and
        fairness updates are order-independent across stages; pushes are
        applied after all pops, exactly like the reference's
        last-to-first stage walk.
        """
        R, W, SV = self.R, self.W, self.SV
        U = SV * W
        ql4, key = self._stacked_key()
        rows, Ug, Ig, Og, Seq, got0 = self._rounds(key, self._prio_flat)
        self._fairness(
            ql4.reshape(U, R, R), self._prio_flat,
            self.stale.reshape(U, R, R), self.occb.reshape(U, R), got0,
            self._smart_stacked_bool,
        )
        if Ug.size == 0:
            return
        bflat = Ug * R + Ig
        self._stale_flat[bflat * R + Og] = 0
        Sg, Wg = divmod(Ug, W)
        ids = self._pop(bflat, Sg, Og)
        self._fwd_flat += np.bincount(Ug, minlength=U)
        self.stage_slots -= np.bincount(Sg, minlength=SV)
        last0 = (self.S - 1) * self.B
        is_last = Sg >= last0
        if is_last.all():
            self._deliver(Wg, Og, Seq, ids, Sg - last0)
        elif is_last.any():
            self._deliver(
                Wg[is_last], Og[is_last], Seq[is_last], ids[is_last],
                Sg[is_last] - last0,
            )
            rest = ~is_last
            self._forward(Sg[rest], Wg[rest], Og[rest], ids[rest])
        else:
            self._forward(Sg, Wg, Og, ids)

    def _run_stages_sequenced(self) -> None:
        """Last-to-first stage walk for cycles where blocking can bite.

        Only the truly sequential core serializes per network stage:
        stage ``s``'s blocked predicate reads stage ``s+1``'s post-pop
        buffer state, so the blocked mask, the grant rounds and the
        pops walk the stages last-to-first, exactly like the reference.
        Everything else is order-free across stages and runs stacked,
        once per cycle:

        * the arbitration keys (:meth:`_stacked_key`);
        * the fairness update — it reads pre-pop lengths/occupancy
          (snapshotted below) and the grant-at-step-0 bits, neither of
          which the walk feeds;
        * the stale reset of granted queues — elementwise, applied
          after the stacked fairness bump, exactly the per-stage order;
        * the forwards — stage ``s`` pushes into ``s+1``, which the
          remaining walk never re-reads (stage ``s-1``'s blocked
          predicate looks at stage ``s``, whose pushes come from
          ``s-1`` itself), so they batch into one scatter, exactly
          like the stacked path's;
        * the forwarded/slot counters — nothing mid-walk reads them
          except the may-block gate, which then sees pre-pop slot
          counts and only errs toward computing an (exact) blocked
          mask it could have skipped.
        """
        B, R, W, SV = self.B, self.R, self.W, self.SV
        U = SV * W
        BW = B * W
        ql4, key = self._stacked_key()
        # Fairness reads pre-pop state; snapshot what the walk mutates.
        # (The FIFO register is already a fresh scatter, and only the
        # dumb scheme's advance reads occupancy.)
        ql_pre = ql4 if self.layout == "FIFO" else ql4.copy()
        occ = self.occb.reshape(U, R)
        occ_pre = occ if self._smart_all else occ.copy()
        got0 = np.zeros(U, dtype=bool)
        stage_slots = self.stage_slots
        grant_rows: list[Any] = []
        grant_bflat: list[Any] = []
        grant_og: list[Any] = []
        fwd_parts: list[tuple[Any, Any, Any, Any]] = []
        last0 = (self.S - 1) * B
        for s in range(self.S - 1, -1, -1):
            if not stage_slots[s * B : (s + 1) * B].any():
                continue
            lo = s * BW
            key_s = key[lo : lo + BW]
            last = s == self.S - 1
            if (
                self._blocking_any
                and not last
                and self._downstream_may_block(s)
            ):
                blocked = self._blocked(s, ql4[s * B : (s + 1) * B])
                if not self._blocking_all:
                    # Discarding sims in the batch never block; their
                    # pushes drop at the destination instead.
                    blocked = blocked & self._blocking_mask4
                # Empty queues are already invalid (below the ``_VALID``
                # threshold), so only blocked candidates need erasing.
                # ``blocked`` may be input-independent ([sim, switch, 1,
                # output]); broadcast before flattening.
                key_s[
                    np.broadcast_to(blocked, (B, W, R, R)).reshape(BW, R, R)
                ] = -1
            rows, Ug, Ig, Og, Seq, got0_s = self._rounds(
                key_s, self._prio_flat[lo : lo + BW]
            )
            got0[lo : lo + BW] = got0_s
            if Ug.size == 0:
                continue
            gU = Ug + lo
            bflat = gU * R + Ig
            Sg, Wg = divmod(gU, W)
            ids = self._pop(bflat, Sg, Og)
            grant_rows.append(gU)
            grant_bflat.append(bflat)
            grant_og.append(Og)
            if last:
                self._deliver(Wg, Og, Seq, ids, Sg - last0)
            else:
                fwd_parts.append((Sg, Wg, Og, ids))
        self._fairness(
            ql_pre.reshape(U, R, R), self._prio_flat,
            self.stale.reshape(U, R, R), occ_pre, got0,
            self._smart_stacked_bool,
        )
        if not grant_rows:
            return
        one = len(grant_rows) == 1
        gU = grant_rows[0] if one else np.concatenate(grant_rows)
        bflat = grant_bflat[0] if one else np.concatenate(grant_bflat)
        Og = grant_og[0] if one else np.concatenate(grant_og)
        self._stale_flat[bflat * R + Og] = 0
        self._fwd_flat += np.bincount(gU, minlength=U)
        stage_slots -= np.bincount(gU // W, minlength=SV)
        if fwd_parts:
            if len(fwd_parts) == 1:
                fSg, fWg, fOg, fids = fwd_parts[0]
            else:
                fSg = np.concatenate([p[0] for p in fwd_parts])
                fWg = np.concatenate([p[1] for p in fwd_parts])
                fOg = np.concatenate([p[2] for p in fwd_parts])
                fids = np.concatenate([p[3] for p in fwd_parts])
            self._forward(fSg, fWg, fOg, fids)

    def _any_downstream_full(self) -> bool:
        """Whether any buffer past stage 0 could block an upstream push.

        False means the blocked predicate is identically false this
        cycle (for every fidelity: precise blocking needs the specific
        partition full, conservative any partition — both imply a full
        partition somewhere downstream), so the stacked path is exact.
        Pops only drain buffers, so the pre-pop check stays sufficient
        mid-cycle.  Only the blocking sims' rows are scanned — a full
        buffer of a discarding sim drops pushes instead of blocking.
        """
        rows = self._full_occ_rows
        if rows is not None and bool((self.occb[rows] >= self.C).any()):
            return True
        rows = self._full_q_rows
        if rows is not None and bool(
            (self.qlen[rows] >= self._full_q_cq).any()
        ):
            return True
        return False

    def _downstream_may_block(self, s: int) -> bool:
        """Cheap skip: a blocking sim's downstream buffer can only be
        full while its next-stage slot count reaches the fullness bound
        (queue capacity, or whole-buffer capacity for FIFO/DAMQ).  The
        sequenced walk defers its slot-count decrements, so the gate
        sees pre-pop counts — an over-approximation that can only make
        it compute an (exact) blocked mask it could have skipped."""
        nxt = (s + 1) * self.B
        stage_slots = self.stage_slots
        return any(
            stage_slots[nxt + b] >= bound for b, bound in self._gate_checks
        )

    def _blocked(self, s: int, ql4: Any) -> Any:
        """Blocked predicate for every candidate of network stage ``s``.

        ``ql4`` is the candidate length register ``[sim, switch, input,
        output]``; the result broadcasts against it.  Mixed batches
        evaluate each blocked semantics only for the sims that use it
        (buffer-full for FIFO/DAMQ, any-partition-full for conservative
        fidelity, head-packet's-partition-full for precise) and stitch
        the results together with per-sim masks; rows of sims in other
        categories are garbage there but never selected.
        """
        B = self.B
        flat = self.flatidx[s]
        nxt = slice((s + 1) * B, (s + 2) * B)
        if self.layout == "FIFO":
            # Dest-independent: the downstream buffer is simply full.
            # (Conservative fidelity coincides with precise here.)
            full = (self.occb[nxt] >= self.C).reshape(B, -1)
            return full[:, flat][:, :, None, :]
        blocked = None
        if self._any_precise:
            # Precise: the head packet's next-stage queue must have room.
            heads = np.take_along_axis(
                self.ring[slice(s * B, (s + 1) * B)],
                self.qhead[slice(s * B, (s + 1) * B)][..., None],
                axis=4,
            )[..., 0]
            heads = np.where(ql4 > 0, heads, 0)
            next_digit = self.digit[s + 1][self.pk_dest[heads]]
            used = self.qlen[nxt].reshape(B, self.W * self.R, self.R)
            blocked = (
                used[self._b_grid, flat[None, :, None, :], next_digit]
                >= self._cq_b4
            )
        if self._any_cons:
            any_full = (
                (self.qlen[nxt] >= self._cq_b4).any(-1).reshape(B, -1)
            )
            cons = any_full[:, flat][:, :, None, :]
            blocked = (
                cons
                if blocked is None
                else np.where(self._cons_mask4, cons, blocked)
            )
        if not self._buflevel_none:
            occ_full = (self.occb[nxt] >= self.C).reshape(B, -1)
            bufl = occ_full[:, flat][:, :, None, :]
            blocked = (
                bufl
                if blocked is None
                else np.where(self._buflevel_mask4, bufl, blocked)
            )
        return blocked

    def _forward(self, Sg: Any, Wg: Any, Og: Any, ids: Any) -> None:
        """Push granted packets one virtual stage downstream.

        ``Sg`` names each packet's source *virtual* stage; the wiring
        offset between virtual stages is ``B``, and pushes from distinct
        virtual stages land in distinct buffers, so all scatters stay
        collision-free.
        """
        B = self.B
        R = self.R
        s2 = Sg + B
        # Flat downstream buffer / queue addresses; targets are unique,
        # so the single-index gathers read true pre-push state and the
        # direct fancy updates are exact.
        oflat = self._oflat_v[Sg, Wg, Og]
        d2 = self.digit_v[s2, self.pk_dest[ids]]
        occ_flat = self._occ_flat
        if self.layout == "FIFO":
            qflat = None
            qlen_flat = None
        else:
            qflat = oflat * R + d2
            qlen_flat = self._qlen_flat
        if not self._blocking_all:
            # Discarding protocol: a full downstream buffer drops the
            # packet.
            if self.layout == "FIFO" or self._buflevel_all:
                room = occ_flat[oflat] < self.C
            elif self._buflevel_none:
                cq = self.Cq if self._cq_uniform else self._cq_vstage[s2]
                room = qlen_flat[qflat] < cq
            else:
                room = np.where(
                    self._buflevel_vstage[s2],
                    occ_flat[oflat] < self.C,
                    qlen_flat[qflat] < self._cq_vstage[s2],
                )
            if self._blocking_any:
                # Blocking sims' grants are never blocked-at-push: flow
                # control already guaranteed room upstream.
                room |= self._blocking_vstage[s2]
            if not room.all():
                dropped = ids[~room]
                ms = self.measure_start_clock
                if ms is not None:
                    self._tally(
                        "discarded",
                        Sg[~room] % B,
                        self.pk_created[dropped] >= ms,
                    )
                ids = ids[room]
                s2 = s2[room]
                oflat = oflat[room]
                d2 = d2[room]
                if qflat is not None:
                    qflat = qflat[room]
        if not ids.size:
            return
        if self.layout == "FIFO":
            flen_flat = self._flen_flat
            tail = self._fhead_flat[oflat] + flen_flat[oflat]
            tail = np.where(tail >= self.C, tail - self.C, tail)
            self._fring_flat[oflat * self.C + tail] = ids
            self._fdest_flat[oflat * self.C + tail] = d2
            flen_flat[oflat] += 1
        else:
            cq = self.Cq if self._cq_uniform else self._cq_vstage[s2]
            tail = self._qhead_flat[qflat] + qlen_flat[qflat]
            tail = np.where(tail >= cq, tail - cq, tail)
            self._ring_flat[qflat * self.CqW + tail] = ids
            qlen_flat[qflat] += 1
        occ_flat[oflat] += 1
        recv_flat = self._recv_flat
        recv_flat += np.bincount(oflat // R, minlength=recv_flat.size)
        self.stage_slots += np.bincount(s2, minlength=self.SV)

    def _tally(self, attr: str, sims: Any, ok: Any) -> None:
        """Defer per-sim counts of ``ok`` for a meters counter field."""
        counts = self._cnt_pend.get(attr)
        if counts is None:
            counts = self._cnt_pend[attr] = np.zeros(self.B, dtype=np.int64)
        if self.B == 1:
            counts[0] += int(ok.sum())
        else:
            counts += np.bincount(sims[ok], minlength=self.B)

    @staticmethod
    def _welford_add(stats: OnlineStats, values: list[int]) -> None:
        """Fold samples into an accumulator, replaying ``OnlineStats.add``.

        The loop body performs the identical sequence of float
        operations on identical values, so the accumulator state matches
        the reference's method-call trajectory bit for bit; hoisting the
        attribute accesses out of the loop just removes interpreter
        overhead.
        """
        count = stats.count
        mean = stats._mean  # noqa: SLF001 - exact Welford replay
        m2 = stats._m2  # noqa: SLF001
        minimum = stats.minimum
        maximum = stats.maximum
        for value in values:
            count += 1
            delta = value - mean
            mean += delta / count
            m2 += delta * (value - mean)
            if value < minimum:
                minimum = value
            if value > maximum:
                maximum = value
        stats.count = count
        stats._mean = mean  # noqa: SLF001
        stats._m2 = m2  # noqa: SLF001
        stats.minimum = minimum
        stats.maximum = maximum

    def _flush_meters(self) -> None:
        """Fold the deferred meter samples into the accumulators.

        Sample order is preserved — per-cycle batches were appended in
        cycle order and are already sorted in reference order within a
        cycle, so each simulation's concatenated stream replays the
        exact ``OnlineStats.add`` trajectory.
        """
        if self._cnt_pend:
            for attr, counts in self._cnt_pend.items():
                for b in counts.nonzero()[0].tolist():
                    meters = self.metersL[b]
                    setattr(meters, attr, getattr(meters, attr) + int(counts[b]))
            self._cnt_pend.clear()
        if self._occ_pend:
            occ = np.asarray(self._occ_pend, dtype=np.int64)
            self._occ_pend.clear()
            for b in range(self.B):
                self._welford_add(
                    self.metersL[b].occupancy,
                    occ[:, b :: self.B].sum(axis=1).tolist(),
                )
        if self._pend:
            pend = self._pend
            self._pend = []
            lat = np.concatenate([p[1] for p in pend])
            net = np.concatenate([p[2] for p in pend])
            if self.B == 1:
                meters = self.metersL[0]
                meters.delivered += int(lat.size)
                self._welford_add(meters.latency, lat.tolist())
                self._welford_add(meters.network_latency, net.tolist())
                return
            sims = np.concatenate([p[0] for p in pend])
            for b in range(self.B):
                mask = sims == b
                count = int(mask.sum())
                if not count:
                    continue
                meters = self.metersL[b]
                meters.delivered += count
                self._welford_add(meters.latency, lat[mask].tolist())
                self._welford_add(meters.network_latency, net[mask].tolist())

    def _deliver(
        self, Wg: Any, Og: Any, Seq: Any, ids: Any, sims: Any
    ) -> None:
        """Hand final-stage grants to their sinks, in reference order.

        Reference order within one simulation is (switch index, grant
        sequence); simulations' meters are independent, so sorting by
        (sim, switch, sequence) and segmenting per sim replays every
        accumulator exactly.
        """
        # ``Seq`` ascends (grants are extracted in round order), so its
        # last element spans the composite sort key: one stable argsort
        # replaces a multi-key lexsort.
        span = int(Seq[-1]) + 1
        if self.B == 1:
            order = np.argsort(Wg * span + Seq, kind="stable")
        else:
            order = np.argsort(
                (sims * self.W + Wg) * span + Seq, kind="stable"
            )
            sims = sims[order]
        ids = ids[order]
        lports = Wg[order] * self.R + Og[order]
        gports = lports if self.B == 1 else sims * self.N + lports
        # Each output port is granted at most once per cycle, so the
        # gport addresses are unique and direct fancy adds are exact.
        self.sink_recv[gports] += 1
        misrouted = self.pk_dest[ids] != lports
        if misrouted.any():
            self.sink_mis[gports[misrouted]] += 1
        ms = self.measure_start_clock
        if ms is None:
            return
        created = self.pk_created[ids]
        selected = created >= ms
        delivered_at = (self._cycle + 1) * self.clk
        injected = self.pk_injected[ids]
        # Defer the Welford replay: samples are already in reference
        # order (cycle-major, then the sort above), so per-sim streams
        # concatenate across cycles and :meth:`_flush_meters` can fold
        # them with one accumulator pass per simulation.
        self._pend.append(
            (
                None if self.B == 1 else sims[selected],
                delivered_at - created[selected],
                delivered_at - injected[selected],
            )
        )

    # ------------------------------------------------------------------
    # Sources: generation countdown + head injection
    # ------------------------------------------------------------------

    def _inject(self) -> None:
        ms = self.measure_start_clock
        cap = self.queue_capacity
        B = self.B
        slen = self.slen
        # Phase 1 — generation.  A stalled source makes no attempt (and
        # draws nothing); a non-stalled attempt arrives exactly when the
        # running attempt count hits the source's next decoded target.
        if cap:
            stalled = slen >= cap
            self.src_stall += stalled
            self.att += ~stalled
        else:
            self.att += 1
        # ``att`` sits strictly below ``target`` at every cycle start
        # (the target advances past it on each arrival), so a stalled
        # port can never read as a hit and needs no explicit mask.
        hit = self.att == self.target
        ports = hit.nonzero()[0]
        if ports.size:
            k = self.next_k[ports]
            destinations = self._dests[ports, k]
            offsets = self._offsets[ports, k]
            count = int(ports.size)
            if B == 1:
                sims_p = None
                base = self.next_idv[0]
                ids = np.arange(base, base + count, dtype=np.int64)
                self.next_idv[0] += count
            else:
                # ``ports`` ascends, so each sim's new ids land in local
                # port order — the reference factory's issue order.
                sims_p = ports // self.N
                per_sim = np.bincount(sims_p, minlength=B)
                first = np.cumsum(per_sim) - per_sim
                within = np.arange(count, dtype=np.int64) - first[sims_p]
                ids = (
                    sims_p * self._stride + self.next_idv[sims_p] + within
                )
                self.next_idv += per_sim
            created = self._cycle * self.clk + offsets
            self.pk_dest[ids] = destinations
            self.pk_created[ids] = created
            self.src_gen[ports] += 1
            tail = (self.shead[ports] + slen[ports]) % self.K2
            self.sring[ports, tail] = ids
            slen[ports] += 1
            self.next_k[ports] += 1
            self.target[ports] = self._arr_att[ports, k + 1]
            if ms is not None:
                self._tally("generated", sims_p, created >= ms)
        # Phase 2 — head injection into stage 0 (entry points are a
        # bijection per simulation, so per-source checks are independent;
        # global port p = b * N + n enters stage-0 virtual row b).
        pending = (slen > 0).nonzero()[0]
        if pending.size == 0:
            return
        head_ids = self.sring[pending, self.shead[pending]]
        d0 = self.digit[0][self.pk_dest[head_ids]]
        oflat0 = self._entry_oflat[pending]
        occ_flat = self._occ_flat
        if self.layout == "FIFO":
            qflat0 = None
            qlen_flat = None
        else:
            qflat0 = oflat0 * self.R + d0
            qlen_flat = self._qlen_flat
        if self.layout == "FIFO" or self._buflevel_all:
            can = occ_flat[oflat0] < self.C
        elif self._buflevel_none:
            cq = self.Cq if self._cq_uniform else self._cq_port[pending]
            can = qlen_flat[qflat0] < cq
        else:
            can = np.where(
                self._buflevel_port[pending],
                occ_flat[oflat0] < self.C,
                qlen_flat[qflat0] < self._cq_port[pending],
            )
        accepted = can.nonzero()[0]
        if accepted.size:
            sources = pending[accepted]
            ids = head_ids[accepted]
            oa = oflat0[accepted]
            va = sources // self.N
            self.pk_injected[ids] = (self._cycle + 1) * self.clk
            if self.layout == "FIFO":
                flen_flat = self._flen_flat
                tail = self._fhead_flat[oa] + flen_flat[oa]
                tail = np.where(tail >= self.C, tail - self.C, tail)
                self._fring_flat[oa * self.C + tail] = ids
                self._fdest_flat[oa * self.C + tail] = d0[accepted]
                flen_flat[oa] += 1
            else:
                qa = qflat0[accepted]
                cq = (
                    self.Cq if self._cq_uniform else self._cq_port[sources]
                )
                tail = self._qhead_flat[qa] + qlen_flat[qa]
                tail = np.where(tail >= cq, tail - cq, tail)
                self._ring_flat[qa * self.CqW + tail] = ids
                qlen_flat[qa] += 1
            occ_flat[oa] += 1
            recv_flat = self._recv_flat
            recv_flat += np.bincount(
                oa // self.R, minlength=recv_flat.size
            )
            if B == 1:
                self.stage_slots[0] += accepted.size
            else:
                self.stage_slots[:B] += np.bincount(va, minlength=B)
            if ms is not None:
                self._tally("injected", va, self.pk_created[ids] >= ms)
            self.shead[sources] = (self.shead[sources] + 1) % self.K2
            slen[sources] -= 1
        if self._discard_at_injection:
            rejected = (~can).nonzero()[0]
            if rejected.size:
                sources = pending[rejected]
                ids = head_ids[rejected]
                if ms is not None:
                    self._tally(
                        "discarded",
                        sources // self.N,
                        self.pk_created[ids] >= ms,
                    )
                self.shead[sources] = (self.shead[sources] + 1) % self.K2
                slen[sources] -= 1

    # ------------------------------------------------------------------
    # Packed state (must match ReferenceKernel.packed_state byte-for-byte)
    # ------------------------------------------------------------------

    def _packed_entry(self, packet_id: int, base: int) -> list[Any]:
        return [
            packet_id - base,
            int(self.pk_dest[packet_id]),
            int(self.pk_created[packet_id]),
            int(self.pk_injected[packet_id]),
        ]

    def _packed_queue(
        self, u: int, w: int, i: int, o: int, base: int
    ) -> list[list[Any]]:
        head = int(self.qhead[u, w, i, o])
        length = int(self.qlen[u, w, i, o])
        ring = self.ring[u, w, i, o]
        cq = int(self._cq_b[u % self.B])
        return [
            self._packed_entry(int(ring[(head + k) % cq]), base)
            for k in range(length)
        ]

    def _packed_switch(self, u: int, w: int, base: int) -> dict[str, Any]:
        R = self.R
        if self.layout == "FIFO":
            lengths = []
            queues = []
            for i in range(R):
                used = int(self.flen[u, w, i])
                head = int(self.fhead[u, w, i])
                row = [0] * R
                entries = []
                for k in range(used):
                    slot = (head + k) % self.C
                    entries.append(
                        self._packed_entry(int(self.fring[u, w, i, slot]), base)
                    )
                if used:
                    row[int(self.fdest[u, w, i, head])] = used
                lengths.append(row)
                queues.append([entries])
        else:
            lengths = self.qlen[u, w].tolist()
            queues = [
                [self._packed_queue(u, w, i, o, base) for o in range(R)]
                for i in range(R)
            ]
        return {
            "occupancy": int(self.occb[u, w].sum()),
            "received": int(self.recv[u, w]),
            "forwarded": int(self.fwd[u, w]),
            "priority": int(self.prio[u, w]),
            "stale": self.stale[u, w].tolist(),
            "lengths": lengths,
            "queues": queues,
        }

    def packed_state(self) -> dict[str, Any]:
        return self.packed_state_for(0)

    def packed_state_for(self, sim: int) -> dict[str, Any]:
        """The packed state of one simulation of the batch."""
        self._flush_meters()
        B = self.B
        base = sim * self._stride
        sources = []
        for local_port in range(self.N):
            port = sim * self.N + local_port
            head = int(self.shead[port])
            queue = []
            for k in range(int(self.slen[port])):
                packet_id = int(self.sring[port, (head + k) % self.K2])
                queue.append(
                    [
                        packet_id - base,
                        int(self.pk_dest[packet_id]),
                        int(self.pk_created[packet_id]),
                    ]
                )
            sources.append(
                {
                    "generated": int(self.src_gen[port]),
                    "stalled": int(self.src_stall[port]),
                    "queue": queue,
                }
            )
        return {
            "cycle": self._cycle,
            "measure_start_clock": self.measure_start_clock,
            "stage_slots": [
                int(self.stage_slots[s * B + sim]) for s in range(self.S)
            ],
            "factory_next": int(self.next_idv[sim]),
            "switches": [
                [
                    self._packed_switch(s * B + sim, w, base)
                    for w in range(self.W)
                ]
                for s in range(self.S)
            ],
            "sources": sources,
            "sinks": [
                {
                    "received": int(self.sink_recv[sim * self.N + port]),
                    "misrouted": int(self.sink_mis[sim * self.N + port]),
                }
                for port in range(self.N)
            ],
            "meters": self.metersL[sim].snapshot_state(),
        }
