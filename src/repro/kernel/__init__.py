"""Simulation kernel backends.

The reference Omega-network simulator
(:mod:`repro.network.simulator`) advances the machine one Python object
at a time; it is the semantics oracle every other backend is measured
against.  This package puts a thin :class:`~repro.kernel.base.SimKernel`
interface in front of it and adds a numpy struct-of-arrays backend
(:mod:`repro.kernel.numpy_kernel`) that advances every switch of a
stage per array operation while producing byte-identical results —
same packets, same grants, same meters, same RNG stream consumption.

Backend selection is threaded through ``simulate`` /
``run_experiment`` / ``parallel_simulate`` / ``repro.perf`` and the
service job specs; ``--backend`` forces a backend (unsupported
combinations raise :class:`~repro.errors.ConfigurationError`) while the
``REPRO_BACKEND`` environment variable states a soft preference that
falls back to the reference kernel whenever telemetry, the sanitizer,
checkpointing or an unsupported configuration demands it.

The exactness bar is enforced by :mod:`repro.kernel.differential`: a
lockstep harness steps both backends cycle by cycle, compares packed
state digests, and renders the first divergence as a replayable
:class:`~repro.analysis.counterexample.Counterexample`.
"""

from repro.kernel.base import (
    BACKEND_ENV,
    BACKENDS,
    DEFAULT_BACKEND,
    SimKernel,
    make_kernel,
    normalize_backend,
    numpy_available,
    numpy_unsupported_reason,
    requested_backend,
    resolve_backend,
)

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "SimKernel",
    "make_kernel",
    "normalize_backend",
    "numpy_available",
    "numpy_unsupported_reason",
    "requested_backend",
    "resolve_backend",
]
