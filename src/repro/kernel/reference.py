"""The reference backend: the pure-Python simulator behind ``SimKernel``.

Wraps :class:`~repro.network.simulator.OmegaNetworkSimulator` verbatim —
no behavioural changes, the object simulator stays the semantics oracle
— and adds the packed-state view the differential harness compares
between backends.

The packed state reads each buffer's *logical* queue contents (packets
in FIFO order per destination queue).  For the DAMQ that is the
pointer-RAM list order of each destination, not the physical slot
indices: which free slot a packet landed in is an implementation detail
no experiment can observe, so backends are free to manage free space
differently (DESIGN §12).
"""

from __future__ import annotations

from typing import Any

from repro.core.buffer import SwitchBuffer
from repro.core.packet import Packet
from repro.errors import InvariantError
from repro.kernel.base import SimKernel
from repro.network.metrics import SimulationResult
from repro.network.simulator import NetworkConfig, OmegaNetworkSimulator

__all__ = ["ReferenceKernel", "packed_buffer_queues"]


def _entry(packet: Packet) -> list[Any]:
    return [
        packet.packet_id,
        packet.destination,
        packet.created_at,
        packet.injected_at,
    ]


def packed_buffer_queues(buffer: SwitchBuffer) -> list[list[list[Any]]]:
    """The logical queue contents of one buffer, packed for comparison.

    Returns one list per destination queue (a single list for the FIFO,
    whose one physical queue serves every destination), each entry
    ``[packet_id, destination, created_at, injected_at]`` in FIFO
    order.
    """
    kind = buffer.kind
    if kind == "FIFO":
        # One shared queue; the stored per-entry destination is the
        # packet's local output, derivable from its route, so only the
        # packets themselves are packed.
        queue = buffer._queue  # noqa: SLF001 - packed-state accessor
        return [[_entry(packet) for packet, _destination in queue]]
    if kind in ("SAMQ", "SAFC"):
        queues = buffer._queues  # noqa: SLF001 - packed-state accessor
        return [[_entry(packet) for packet in queue] for queue in queues]
    if kind == "DAMQ":
        lists = buffer._lists  # noqa: SLF001 - packed-state accessor
        slot_packet = buffer._slot_packet  # noqa: SLF001
        packed: list[list[list[Any]]] = []
        for output in range(buffer.num_outputs):
            row: list[list[Any]] = []
            previous: int | None = None
            for slot in lists.slots(output):
                packet = slot_packet[slot]
                if packet is None:
                    raise InvariantError(
                        f"allocated DAMQ slot {slot} holds no packet"
                    )
                if packet.packet_id != previous:
                    row.append(_entry(packet))
                    previous = packet.packet_id
            packed.append(row)
        return packed
    raise InvariantError(f"unknown buffer kind {kind!r}")


class ReferenceKernel(SimKernel):
    """The existing object-per-packet simulator, unchanged."""

    name = "reference"

    def __init__(self, config: NetworkConfig) -> None:
        self.config = config
        self.simulator = OmegaNetworkSimulator(config)

    @property
    def cycle(self) -> int:
        return self.simulator.cycle

    def prepare(self, total_cycles: int) -> None:
        pass

    def begin_measurement(self) -> None:
        sim = self.simulator
        if sim._measure_start_clock is None:  # noqa: SLF001
            sim._measure_start_clock = (  # noqa: SLF001
                sim.cycle * sim.config.cycle_clocks
            )

    def step(self) -> None:
        self.simulator.step()

    def packed_state(self) -> dict[str, Any]:
        sim = self.simulator
        switches = [
            [
                {
                    "occupancy": switch.occupancy,
                    "received": switch.packets_received,
                    "forwarded": switch.packets_forwarded,
                    "priority": switch.arbiter._priority,  # noqa: SLF001
                    "stale": [
                        list(row)
                        for row in switch.arbiter._stale  # noqa: SLF001
                    ],
                    "lengths": [
                        list(buffer.queue_lengths())
                        for buffer in switch.buffers
                    ],
                    "queues": [
                        packed_buffer_queues(buffer)
                        for buffer in switch.buffers
                    ],
                }
                for switch in row
            ]
            for row in sim.switches
        ]
        sources = [
            {
                "generated": source.generated,
                "stalled": source.stalled_cycles,
                "queue": [
                    [packet.packet_id, packet.destination, packet.created_at]
                    for packet in source.queue
                ],
            }
            for source in sim.sources
        ]
        sinks = [
            {"received": sink.received, "misrouted": sink.misrouted}
            for sink in sim.sinks
        ]
        return {
            "cycle": sim.cycle,
            "measure_start_clock": sim._measure_start_clock,  # noqa: SLF001
            "stage_slots": list(sim._stage_slots),  # noqa: SLF001
            "factory_next": sim.factory.snapshot_state(),
            "switches": switches,
            "sources": sources,
            "sinks": sinks,
            "meters": sim.meters.snapshot_state(),
        }

    def finish(
        self, warmup_cycles: int, measure_cycles: int
    ) -> SimulationResult:
        sim = self.simulator
        sim.meters.cycles = measure_cycles
        return SimulationResult(
            buffer_kind=sim.config.buffer_kind,
            protocol=str(sim.config.protocol),
            arbiter_kind=sim.config.arbiter_kind,
            traffic_kind=sim.pattern.kind,
            offered_load=sim.config.offered_load,
            slots_per_buffer=sim.config.slots_per_buffer,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
            seed=sim.config.seed,
            meters=sim.meters,
        )
