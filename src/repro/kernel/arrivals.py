"""Pre-decoded arrival streams for the vectorized kernel.

The reference simulator draws its traffic one scalar call at a time:
each non-stalled source attempts a Bernoulli coin per cycle
(:class:`~repro.utils.rng.BatchedBernoulli`, scalar-stream-exact by
construction) and, on a hit, draws the packet's destination and a
sub-cycle creation offset from the *same* per-source stream.  Because a
stalled source draws nothing, the draw sequence is a pure function of
the number of attempts — it does not depend on simulation state.  That
makes the whole stream decodable up front: this module replays numpy's
bit-level decoding rules directly against the raw PCG64 word stream of
each source and emits, per source, the arrival schedule
``(miss-gap, destination, offset)`` the scalar path would have produced.

Decoding rules (validated against numpy's implementation; the
equivalence tests in ``tests/property/test_kernel_equivalence.py`` re-verify
them on every run):

* ``Generator.random()`` consumes one 64-bit word ``w`` and yields
  ``(w >> 11) * 2.0**-53``; it never touches the bounded-integer cache.
* Bounded ``Generator.integers(0, n)`` (``n <= 2**32``) consumes 32-bit
  half-words — low half first, high half cached in the bit generator —
  and applies Lemire rejection: with ``m = half * n``, the value is
  ``m >> 32``, rejected (draw another half) iff
  ``(m & 0xFFFFFFFF) < (2**32 - n) % n``.

All raw words flow from the same seeded streams the reference kernel
uses (``RandomStream(seed, "omega").spawn(f"source{port}")``), so the
two backends consume byte-identical RNG state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.utils.rng import _seed_for

if TYPE_CHECKING:
    from repro.network.simulator import NetworkConfig

__all__ = ["ArrivalPlan", "decode_arrivals"]

_MASK32 = 0xFFFFFFFF

#: Gap sentinel for "no further arrivals decoded": larger than any
#: possible attempt count, so the countdown never reaches zero.
GAP_SENTINEL = 1 << 62


def _lemire_threshold(n: int) -> int:
    """Rejection threshold of numpy's 32-bit bounded-integer path."""
    return ((1 << 32) - n) % n


class _Cursor:
    """Scalar word-stream decoder with the half-word cache."""

    __slots__ = ("words", "pos", "has_half", "half")

    def __init__(self, words: list[int]) -> None:
        self.words = words
        self.pos = 0
        self.has_half = False
        self.half = 0

    def double(self) -> float:
        words = self.words
        if self.pos >= len(words):
            raise _NeedMoreWords
        word = words[self.pos]
        self.pos += 1
        return (word >> 11) * 2.0**-53

    def bounded(self, n: int, threshold: int) -> int:
        while True:
            if self.has_half:
                half = self.half
                self.has_half = False
            else:
                words = self.words
                if self.pos >= len(words):
                    raise _NeedMoreWords
                word = words[self.pos]
                self.pos += 1
                half = word & _MASK32
                self.half = word >> 32
                self.has_half = True
            m = half * n
            if (m & _MASK32) >= threshold:
                return m >> 32


class _NeedMoreWords(Exception):
    """Raised when the pre-drawn raw words run out mid-decode."""


@dataclass
class ArrivalPlan:
    """Per-source arrival schedules, padded into rectangular arrays.

    ``gaps[n, k]`` is the number of missed attempts the source makes
    before its ``k``-th arrival; ``dests``/``offsets`` are the decoded
    destination and sub-cycle offset.  Column ``counts[n]`` of ``gaps``
    holds :data:`GAP_SENTINEL` so runtime countdowns past the decoded
    horizon never fire.  ``attempts`` is the per-source attempt horizon
    the plan covers.
    """

    gaps: Any
    dests: Any
    offsets: Any
    counts: Any
    attempts: int


def _raw_words(seed: int, name: str, count: int) -> Any:
    """The next ``count`` raw 64-bit words of one seeded stream."""
    import numpy

    return numpy.random.PCG64(_seed_for(seed, name)).random_raw(count)


def _decode_scalar(
    cursor: _Cursor,
    total_attempts: int,
    probability: float,
    kind: str,
    num_ports: int,
    cycle_clocks: int,
    hot_fraction: float,
    hot_port: int,
    fixed_dest: int,
) -> tuple[list[int], list[int], list[int]]:
    """Exact scalar replay of one source's draw sequence."""
    threshold_dest = _lemire_threshold(num_ports)
    threshold_off = _lemire_threshold(cycle_clocks)
    gaps: list[int] = []
    dests: list[int] = []
    offsets: list[int] = []
    miss = 0
    for _attempt in range(total_attempts):
        if probability < 1.0:
            if not cursor.double() < probability:
                miss += 1
                continue
        if kind == "uniform":
            destination = cursor.bounded(num_ports, threshold_dest)
        elif kind == "hotspot":
            # RandomStream.bernoulli skips the draw at exactly 0.0/1.0.
            if hot_fraction >= 1.0:
                destination = hot_port
            elif hot_fraction > 0.0 and cursor.double() < hot_fraction:
                destination = hot_port
            else:
                destination = cursor.bounded(num_ports, threshold_dest)
        else:  # permutation: the mapping is draw-free
            destination = fixed_dest
        offset = cursor.bounded(cycle_clocks, threshold_off)
        gaps.append(miss)
        miss = 0
        dests.append(destination)
        offsets.append(offset)
    return gaps, dests, offsets


def _decode_uniform_vectorized(
    seed: int,
    name: str,
    total_attempts: int,
    probability: float,
    num_ports: int,
    cycle_clocks: int,
) -> tuple[list[int], Any, Any] | None:
    """Fast path for uniform traffic; ``None`` defers to the scalar path.

    Uniform arrivals consume exactly one coin word per attempt and one
    value word per arrival (destination from the low half, offset from
    the high half, cache left empty) — *unless* a Lemire rejection
    occurs, which the scalar fallback handles exactly.
    """
    import numpy

    threshold_dest = _lemire_threshold(num_ports)
    threshold_off = _lemire_threshold(cycle_clocks)
    expected_hits = probability * total_attempts
    margin = 6 * int(math.sqrt(expected_hits + 1.0)) + 16
    count = total_attempts + int(expected_hits) + margin
    words = _raw_words(seed, name, count)
    gaps: list[int] = []
    if probability >= 1.0:
        # The coin short-circuits: every attempt arrives, value words only.
        value_words = words[:total_attempts]
        gaps = [0] * total_attempts
    else:
        doubles = (words >> numpy.uint64(11)) * 2.0**-53
        candidates = numpy.flatnonzero(doubles < probability)
        # A candidate below the scan cursor is a value word that happened
        # to look like a coin hit.  The cursor always advances to
        # ``accepted + 2``, and a maximal run of consecutive candidate
        # indices never straddles that jump (the element after a run is
        # at least two past its last member), so runs are independent:
        # within each run exactly the even offsets from the run start are
        # real coin hits.
        if candidates.size:
            starts = numpy.empty(candidates.size, dtype=bool)
            starts[0] = True
            numpy.greater(numpy.diff(candidates), 1, out=starts[1:])
            run_start = candidates[starts]
            accepted_mask = ((candidates - run_start[numpy.cumsum(starts) - 1]) & 1) == 0
            pos_arr = candidates[accepted_mask]
        else:
            pos_arr = candidates
        # Attempt k's coin sits at word ``pos_arr[k] - k`` of the attempt
        # stream (k value words precede it), so the cumulative attempt
        # count after accepting it is ``pos_arr[k] - k + 1``.
        counts = numpy.arange(pos_arr.size, dtype=numpy.int64)
        keep = pos_arr - counts < total_attempts
        if not keep.all():
            pos_arr = pos_arr[keep]
        elif len(words) - pos_arr.size < total_attempts:
            # Each hit consumes two words and each miss one, so the
            # stream covers ``len(words) - hits`` attempts in total.
            return None  # stream shorter than the horizon; rare
        gap_arr = numpy.diff(pos_arr, prepend=-2) - 2
        gaps = gap_arr.tolist()
        value_words = words[pos_arr + 1]
    low = (value_words & numpy.uint64(_MASK32)).astype(numpy.int64)
    high = (value_words >> numpy.uint64(32)).astype(numpy.int64)
    m_dest = low * num_ports
    m_off = high * cycle_clocks
    rejected = ((m_dest & _MASK32) < threshold_dest) | (
        (m_off & _MASK32) < threshold_off
    )
    if bool(rejected.any()):
        return None  # ~1e-9 per half-word; replay exactly in scalar mode
    return gaps, m_dest >> 32, m_off >> 32


def decode_arrivals(config: "NetworkConfig", total_attempts: int) -> ArrivalPlan:
    """Decode every source's arrival schedule for ``total_attempts``."""
    import numpy

    from repro.network.traffic import PermutationTraffic, make_traffic

    if total_attempts < 0:
        raise ConfigurationError("total_attempts cannot be negative")
    pattern = make_traffic(
        config.traffic_kind,
        config.num_ports,
        config.hot_fraction,
        config.hot_port,
    )
    mapping = (
        pattern.mapping if isinstance(pattern, PermutationTraffic) else None
    )
    probability = config.offered_load
    num_ports = config.num_ports
    per_source: list[tuple[list[int], Any, Any]] = []
    for port in range(num_ports):
        name = f"omega/source{port}"
        if probability <= 0.0:
            per_source.append(([], [], []))
            continue
        decoded: tuple[list[int], Any, Any] | None = None
        if pattern.kind == "uniform":
            decoded = _decode_uniform_vectorized(
                config.seed,
                name,
                total_attempts,
                probability,
                num_ports,
                config.cycle_clocks,
            )
        if decoded is None:
            # Exact scalar replay, growing the word window as needed.
            count = int(total_attempts * (1.0 + 4.0 * probability)) + 64
            while True:
                cursor = _Cursor(_raw_words(config.seed, name, count).tolist())
                try:
                    decoded = _decode_scalar(
                        cursor,
                        total_attempts,
                        probability,
                        pattern.kind,
                        num_ports,
                        config.cycle_clocks,
                        config.hot_fraction,
                        config.hot_port,
                        mapping[port] if mapping is not None else 0,
                    )
                except _NeedMoreWords:
                    count *= 2
                    continue
                break
        per_source.append(decoded)

    width = max((len(item[0]) for item in per_source), default=0)
    gaps = numpy.full(
        (num_ports, width + 1), GAP_SENTINEL, dtype=numpy.int64
    )
    dests = numpy.zeros((num_ports, width + 1), dtype=numpy.int64)
    offsets = numpy.zeros((num_ports, width + 1), dtype=numpy.int64)
    counts = numpy.zeros(num_ports, dtype=numpy.int64)
    for port, (source_gaps, source_dests, source_offsets) in enumerate(
        per_source
    ):
        size = len(source_gaps)
        counts[port] = size
        if size:
            gaps[port, :size] = source_gaps
            dests[port, :size] = source_dests
            offsets[port, :size] = source_offsets
    return ArrivalPlan(
        gaps=gaps,
        dests=dests,
        offsets=offsets,
        counts=counts,
        attempts=total_attempts,
    )
