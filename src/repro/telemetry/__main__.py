"""Command-line entry points for the telemetry subsystem.

``python -m repro.telemetry report <dir-or-files...>`` merges exported
``*.metrics.json`` documents and prints the run summary (traffic totals,
hot queues, arbitration fairness).

``python -m repro.telemetry trace`` runs one fully traced simulation of
a chosen configuration and exports the VCD waveform, Chrome trace and
metrics document — the quickest way to get a waveform into GTKWave
without going through ``repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.network.simulator import NetworkConfig, Protocol
from repro.telemetry.report import (
    merge_metrics_documents,
    metrics_files,
    render_report,
)
from repro.telemetry.session import TraceSession
from repro.telemetry.simulator import TracedOmegaNetworkSimulator

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description="Telemetry reports and one-off traced simulations.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="merge metrics documents and print the run summary"
    )
    report.add_argument(
        "paths",
        nargs="+",
        help="metrics .json files, or directories containing them",
    )
    report.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many hot queues to list (default 10)",
    )

    trace = sub.add_parser(
        "trace", help="run one traced simulation and export its artifacts"
    )
    trace.add_argument("--buffer", default="DAMQ", help="buffer kind")
    trace.add_argument(
        "--protocol", default="blocking", choices=["blocking", "discarding"]
    )
    trace.add_argument("--load", type=float, default=0.5)
    trace.add_argument("--ports", type=int, default=16)
    trace.add_argument("--radix", type=int, default=4)
    trace.add_argument("--slots", type=int, default=4)
    trace.add_argument("--seed", type=int, default=1988)
    trace.add_argument("--warmup", type=int, default=100)
    trace.add_argument("--measure", type=int, default=400)
    trace.add_argument(
        "--out", default="telemetry", help="export directory (default ./telemetry)"
    )
    trace.add_argument(
        "--metrics-only",
        action="store_true",
        help="skip the event ring (no VCD/Chrome trace, metrics only)",
    )
    return parser


def _run_report(args: argparse.Namespace) -> int:
    paths: list[Path] = []
    for target in args.paths:
        paths.extend(metrics_files(target))
    registry, info = merge_metrics_documents(paths)
    sys.stdout.write(render_report(registry, info, top=args.top))
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    config = NetworkConfig(
        num_ports=args.ports,
        radix=args.radix,
        buffer_kind=args.buffer,
        slots_per_buffer=args.slots,
        protocol=Protocol(args.protocol),
        offered_load=args.load,
        seed=args.seed,
    )
    session = TraceSession(capacity=0) if args.metrics_only else TraceSession()
    simulator = TracedOmegaNetworkSimulator(config, session=session)
    result = simulator.run(args.warmup, args.measure)
    written = simulator.export(args.out)
    print(
        f"delivered={result.delivered_throughput:.3f} "
        f"latency={result.average_latency:.2f} cycles "
        f"(events emitted: {session.ring.emitted}, "
        f"dropped: {session.ring.dropped})"
    )
    for path in written:
        print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.telemetry`` / ``repro-telemetry``."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "report":
            return _run_report(args)
        return _run_trace(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
