"""Omega-network simulator with full telemetry instrumentation.

:class:`TracedOmegaNetworkSimulator` is a drop-in replacement for
:class:`~repro.network.simulator.OmegaNetworkSimulator`: identical
configuration, identical results (telemetry observes, never perturbs —
it draws nothing from any RNG), plus a :attr:`session` holding the event
ring and metrics for the whole run.

Instrumentation strategy, mirroring the sanitizer's:

* the buffer factory is wrapped so every input buffer (and each DAMQ
  buffer's slot manager) is adopted at construction;
* every switch's arbiter is adopted after construction;
* the flow-control predicates built by ``_make_blocked`` are wrapped to
  emit block/unblock *transition* events per (input, output) pair;
* ``step`` stamps the session's cycle; ``_forward``/``_deliver``/
  ``_count_discard`` observe packet movement by diffing the plain code's
  own side effects (stage slot counts, sink counters, meters), so the
  datapath itself stays byte-for-byte the inherited implementation.

The network-level counters reconcile exactly with the simulator's
meters: ``packets_delivered_measured`` equals ``meters.delivered``,
``packets_lost_measured`` equals ``meters.lost``, and
``packets_delivered_total`` equals the sum of every sink's ``received``
counter (warm-up deliveries included).

When built by :func:`repro.network.simulator.make_simulator` under
``REPRO_TRACE=<dir>`` (or ``REPRO_METRICS=<dir>``), :meth:`run` exports
the VCD waveform, Chrome ``trace_event`` JSON and metrics document into
``<dir>`` after the run completes.
"""

from __future__ import annotations

import json
import os
from collections.abc import Callable
from pathlib import Path
from typing import Any

from repro.core.buffer import SwitchBuffer
from repro.core.packet import Packet
from repro.network.metrics import SimulationResult
from repro.network.simulator import NetworkConfig, OmegaNetworkSimulator
from repro.switch.arbiter import BlockedPredicate
from repro.telemetry.chrome import write_chrome_trace
from repro.telemetry.metrics import METRICS_VERSION
from repro.telemetry.session import TraceSession
from repro.telemetry.vcd import write_vcd

__all__ = ["TracedOmegaNetworkSimulator", "config_tag"]


def config_tag(config: NetworkConfig) -> str:
    """Deterministic file-name stem identifying one config's exports."""
    load = f"{config.offered_load:g}".replace(".", "p")
    return (
        f"{config.buffer_kind.lower()}_{config.protocol}"
        f"_{config.traffic_kind}_n{config.num_ports}_r{config.radix}"
        f"_s{config.slots_per_buffer}_load{load}_seed{config.seed}"
    )


class TracedOmegaNetworkSimulator(OmegaNetworkSimulator):
    """Omega-network simulator with every component instrumented.

    ``session=None`` builds a fresh :class:`TraceSession` with the
    default event-ring capacity; pass ``TraceSession(capacity=0)`` for
    metrics-only mode.  ``export_dir`` (if set) receives the exported
    files when :meth:`run` finishes.
    """

    def __init__(
        self,
        config: NetworkConfig,
        session: TraceSession | None = None,
        export_dir: str | Path | None = None,
    ) -> None:
        # Assigned before super().__init__ so the _make_buffer_factory
        # and _make_blocked hooks (called during construction) see it.
        self.session = session if session is not None else TraceSession()
        super().__init__(config)
        self._export_dir = Path(export_dir) if export_dir is not None else None
        for stage, row in enumerate(self.switches):
            for index, switch in enumerate(row):
                label = f"stage{stage}.switch{index}"
                self.session.adopt_arbiter(switch.arbiter, label)
                for port, buffer in enumerate(switch.buffers):
                    self.session.set_label(buffer, f"{label}.in{port}")
        metrics = self.session.metrics
        self._c_delivered_total = metrics.counter("packets_delivered_total")
        self._c_delivered_measured = metrics.counter(
            "packets_delivered_measured"
        )
        self._c_lost_total = metrics.counter("packets_lost_total")
        self._c_lost_measured = metrics.counter("packets_lost_measured")
        self._c_discarded_total = metrics.counter("packets_discarded_total")
        self._c_discarded_measured = metrics.counter(
            "packets_discarded_measured"
        )
        self._c_links = [
            metrics.counter("link_transfers_total", stage=stage)
            for stage in range(self.topology.num_stages)
        ]

    # -- construction hooks ------------------------------------------------

    def _make_buffer_factory(
        self, config: NetworkConfig
    ) -> Callable[[int], SwitchBuffer]:
        return self.session.wrap_factory(super()._make_buffer_factory(config))

    def _make_blocked(self, stage: int, index: int) -> BlockedPredicate:
        base = super()._make_blocked(stage, index)
        session = self.session
        label = f"stage{stage}.switch{index}"
        counter = session.metrics.counter(
            "flow_control_blocks_total", switch=label
        )
        # Last-observed blocked state per (input, output) pair: events
        # mark *transitions*, not every probe, so an output blocked for
        # 50 cycles shows as one block/unblock pair in the waveform.
        state: dict[tuple[int, int], bool] = {}

        def traced_blocked(
            input_port: int, output_port: int, packet: Packet
        ) -> bool:
            result = base(input_port, output_port, packet)
            key = (input_port, output_port)
            if result != state.get(key, False):
                state[key] = result
                if result:
                    counter.value += 1
                session.emit(
                    "block" if result else "unblock",
                    f"{label}.in{input_port}",
                    output_port,
                    int(result),
                )
            return result

        return traced_blocked

    # -- per-cycle observation ---------------------------------------------

    def step(self) -> None:
        self.session.begin_cycle(self.cycle)
        super().step()

    def _forward(
        self, stage: int, index: int, output_port: int, packet: Packet
    ) -> None:
        slots_before = self._stage_slots[stage + 1]
        lost_before = self.meters.lost
        discards_before = self._c_discarded_total.value
        super()._forward(stage, index, output_port, packet)
        label = f"stage{stage}.switch{index}"
        if self._stage_slots[stage + 1] != slots_before:
            self._c_links[stage].value += 1
            self.session.emit(
                "link", label, output_port, packet.size, packet.packet_id
            )
        elif self.meters.lost != lost_before:
            self._c_lost_total.value += 1
            self._c_lost_measured.value += 1
            self.session.emit(
                "loss", label, output_port, packet.size, packet.packet_id
            )
        elif self._c_discarded_total.value != discards_before:
            pass  # full downstream buffer: observed via _count_discard
        elif self._loss_rng is not None:
            # Destroyed on the link outside the measurement window (the
            # only remaining way a forward leaves no trace in the plain
            # counters — discards re-raise through _count_discard).
            self._c_lost_total.value += 1
            self.session.emit(
                "loss", label, output_port, packet.size, packet.packet_id
            )

    def _deliver(self, index: int, output_port: int, packet: Packet) -> None:
        sink = self._exit_sinks[index][output_port]
        received_before = sink.received
        delivered_before = self.meters.delivered
        lost_before = self.meters.lost
        super()._deliver(index, output_port, packet)
        stage = self._last_stage
        if sink.received != received_before:
            self._c_links[stage].value += 1
            self._c_delivered_total.value += 1
            if self.meters.delivered != delivered_before:
                self._c_delivered_measured.value += 1
            self.session.emit(
                "deliver", "network", sink.port, packet.size, packet.packet_id
            )
        else:
            # Destroyed on the exit link by fault injection.
            self._c_lost_total.value += 1
            if self.meters.lost != lost_before:
                self._c_lost_measured.value += 1
            self.session.emit(
                "loss",
                f"stage{stage}.switch{index}",
                output_port,
                packet.size,
                packet.packet_id,
            )

    def _count_discard(self, packet: Packet) -> None:
        discarded_before = self.meters.discarded
        super()._count_discard(packet)
        self._c_discarded_total.value += 1
        if self.meters.discarded != discarded_before:
            self._c_discarded_measured.value += 1
        self.session.emit("drop", "network", -1, packet.size, packet.packet_id)

    # -- checkpoint composition --------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Inherited snapshot plus the metrics registry's exact state.

        The extra key is ignored by a plain simulator's ``restore`` (it
        reads only the keys it knows), so traced and plain checkpoints
        stay mutually compatible.
        """
        state = super().snapshot()
        state["telemetry"] = self.session.metrics.snapshot_state()
        return state

    def restore(self, state: dict[str, Any]) -> None:
        super().restore(state)
        saved = state.get("telemetry")
        if saved is not None:
            self.session.metrics.restore_state(saved)

    # -- runs and export ---------------------------------------------------

    def run(
        self,
        warmup_cycles: int = 2000,
        measure_cycles: int = 10000,
        checkpoint_every: int | None = None,
        checkpoint_path: str | Path | None = None,
    ) -> SimulationResult:
        result = super().run(
            warmup_cycles,
            measure_cycles,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
        )
        if self._export_dir is not None:
            self.export(self._export_dir)
        return result

    def export(self, directory: str | Path) -> list[Path]:
        """Write the VCD, Chrome trace and metrics files for this run.

        File names derive deterministically from the config
        (:func:`config_tag`); re-exporting the same run overwrites the
        same files.  In metrics-only mode (ring capacity 0) only the
        metrics document is written.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        tag = config_tag(self.config)
        written: list[Path] = []
        events = self.session.ring.events()
        if self.session.ring.capacity > 0:
            written.append(
                write_vcd(
                    events,
                    target / f"{tag}.vcd",
                    cycle_clocks=self.config.cycle_clocks,
                )
            )
            written.append(
                write_chrome_trace(
                    events,
                    target / f"{tag}.trace.json",
                    cycle_clocks=self.config.cycle_clocks,
                )
            )
        document = {
            "format": METRICS_VERSION,
            "tag": tag,
            "config": self.config.to_state(),
            "cycles": self.cycle,
            "events_emitted": self.session.ring.emitted,
            "events_dropped": self.session.ring.dropped,
            "metrics": self.session.metrics.snapshot_state(),
        }
        metrics_path = target / f"{tag}.metrics.json"
        scratch = metrics_path.with_name(
            f"{metrics_path.name}.tmp{os.getpid()}"
        )
        scratch.write_text(json.dumps(document))
        os.replace(scratch, metrics_path)
        written.append(metrics_path)
        return written
