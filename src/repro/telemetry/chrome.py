"""Chrome ``trace_event`` JSON export of the trace-event window.

Produces the JSON Object Format consumed by ``about://tracing`` /
Perfetto: queue lengths and free-list depths become ``"C"`` (counter)
events plotted as stacked area charts per component, and discrete
happenings (grants, denies, block transitions, link transfers,
deliveries, losses, drops) become ``"i"`` (instant) events on a per-kind
track.  Timestamps are microsecond-valued in the viewer; we map one
*clock* to one microsecond (``ts = cycle * cycle_clocks``) so the paper's
12-clock network cycle reads directly off the time axis.

:func:`validate_chrome_trace` is the structural checker the tests and CI
smoke job run over exported files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.errors import ConfigurationError
from repro.network.simulator import DEFAULT_CYCLE_CLOCKS
from repro.telemetry.events import EVENT_KINDS, TraceEvent

__all__ = ["validate_chrome_trace", "write_chrome_trace"]

#: Synthetic pid for all emitted events (one simulated network).
_PID = 1

#: Kinds rendered as counter tracks (the rest become instants).
_COUNTER_KINDS = ("enqueue", "dequeue")


def write_chrome_trace(
    events: Iterable[TraceEvent],
    path: str | Path,
    cycle_clocks: int = DEFAULT_CYCLE_CLOCKS,
) -> Path:
    """Write ``events`` to ``path`` in Chrome trace_event JSON format."""
    trace_events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro.telemetry omega network"},
        }
    ]
    # One thread per event kind keeps instant tracks visually separated.
    tids = {kind: index + 1 for index, kind in enumerate(EVENT_KINDS)}
    for kind, tid in tids.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": kind},
            }
        )
    for event in events:
        ts = event.cycle * cycle_clocks
        if event.kind in _COUNTER_KINDS:
            trace_events.append(
                {
                    "name": event.component,
                    "ph": "C",
                    "pid": _PID,
                    "tid": tids[event.kind],
                    "ts": ts,
                    "args": {f"q{event.port}": event.value, "free": event.extra},
                }
            )
        else:
            trace_events.append(
                {
                    "name": f"{event.kind}:{event.component}",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": tids[event.kind],
                    "ts": ts,
                    "args": {
                        "port": event.port,
                        "value": event.value,
                        "extra": event.extra,
                    },
                }
            )
    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "metadata": {"clocks_per_cycle": cycle_clocks},
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document))
    return target


def validate_chrome_trace(path: str | Path) -> dict[str, int]:
    """Structurally validate a trace file written by :func:`write_chrome_trace`.

    Returns ``{"counters": N, "instants": M, "metadata": K}``.  Raises
    :class:`~repro.errors.ConfigurationError` if the document is not the
    JSON Object Format, an event is missing a required field, uses an
    unknown phase, or timestamps within a thread go backwards (the trace
    viewer tolerates that poorly).
    """
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"trace file is not JSON: {error}") from error
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ConfigurationError(
            "trace file is not JSON Object Format (no traceEvents key)"
        )
    counts = {"counters": 0, "instants": 0, "metadata": 0}
    last_ts: dict[int, int] = {}
    for index, event in enumerate(document["traceEvents"]):
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                raise ConfigurationError(
                    f"trace event {index} is missing {field!r}"
                )
        phase = event["ph"]
        if phase == "M":
            counts["metadata"] += 1
            continue
        if "ts" not in event:
            raise ConfigurationError(f"trace event {index} is missing 'ts'")
        tid = event["tid"]
        if event["ts"] < last_ts.get(tid, 0):
            raise ConfigurationError(
                f"trace event {index} goes backwards in time on tid {tid}"
            )
        last_ts[tid] = event["ts"]
        if phase == "C":
            counts["counters"] += 1
        elif phase == "i":
            if event.get("s") not in ("t", "p", "g"):
                raise ConfigurationError(
                    f"instant event {index} has invalid scope {event.get('s')!r}"
                )
            counts["instants"] += 1
        else:
            raise ConfigurationError(
                f"trace event {index} has unsupported phase {phase!r}"
            )
    return counts
