"""repro.telemetry — cycle-level tracing, metrics and waveform export.

The observability subsystem: a zero-overhead-when-disabled event bus
(:class:`TraceSession`) that instruments buffers, slot managers,
arbiters, the omega-network simulator and the ComCoBB chip ports via the
same ``__class__``-adoption trick as :mod:`repro.analysis.sanitizer`; a
labelled :class:`MetricsRegistry` (counters, gauges, Welford histograms)
with bit-exact snapshots that compose with :mod:`repro.cache`
checkpoints and ``parallel_simulate`` merges; and exporters for VCD
waveforms (GTKWave), Chrome ``trace_event`` JSON (``about://tracing``)
and plain-text reports.

Enable on any run with ``REPRO_TRACE=<dir>`` (full event tracing plus
export) or ``REPRO_METRICS=<dir>`` (counters only, no event ring), or
the ``--trace``/``--metrics`` flags of ``python -m repro.experiments``.
With both unset, simulations construct the plain classes and no
telemetry code runs at all.
"""

from repro.telemetry.chrome import validate_chrome_trace, write_chrome_trace
from repro.telemetry.events import (
    DEFAULT_RING_CAPACITY,
    EVENT_KINDS,
    EventRing,
    TraceEvent,
)
from repro.telemetry.metrics import (
    METRICS_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.report import (
    jain_fairness,
    load_metrics_document,
    merge_metrics_documents,
    metrics_files,
    render_report,
)
from repro.telemetry.session import (
    METRICS_ENV,
    TRACE_ENV,
    TraceSession,
    metrics_directory,
    trace_directory,
)
from repro.telemetry.simulator import TracedOmegaNetworkSimulator, config_tag
from repro.telemetry.vcd import read_vcd, write_vcd

__all__ = [
    "Counter",
    "DEFAULT_RING_CAPACITY",
    "EVENT_KINDS",
    "EventRing",
    "Gauge",
    "Histogram",
    "METRICS_ENV",
    "METRICS_VERSION",
    "MetricsRegistry",
    "TRACE_ENV",
    "TraceEvent",
    "TraceSession",
    "TracedOmegaNetworkSimulator",
    "config_tag",
    "jain_fairness",
    "load_metrics_document",
    "merge_metrics_documents",
    "metrics_files",
    "read_vcd",
    "render_report",
    "trace_directory",
    "metrics_directory",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_vcd",
]
