"""Plain-text telemetry reports and metrics-document aggregation.

``python -m repro.telemetry report <dir-or-files>`` loads one or more
``*.metrics.json`` documents written by
:meth:`~repro.telemetry.simulator.TracedOmegaNetworkSimulator.export`,
merges them (counters add, histograms Welford-merge — exactly the
semantics of :meth:`~repro.telemetry.metrics.MetricsRegistry.merge_state`)
and renders the run summary: delivery/loss totals, the hottest queues by
enqueue count, mean buffer occupancy, and per-switch arbitration
fairness (Jain's index over per-input grant counts).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.telemetry.metrics import METRICS_VERSION, MetricsRegistry

__all__ = [
    "jain_fairness",
    "load_metrics_document",
    "merge_metrics_documents",
    "metrics_files",
    "render_report",
]


def jain_fairness(shares: list[int]) -> float:
    """Jain's fairness index of ``shares``: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly even service; ``1/n`` means one claimant got
    everything.  An all-zero (or empty) share list reports 1.0 — nothing
    was served, so nothing was served unfairly.
    """
    total = sum(shares)
    if not shares or total == 0:
        return 1.0
    return total * total / (len(shares) * sum(x * x for x in shares))


def load_metrics_document(path: str | Path) -> dict[str, Any]:
    """Load and structurally validate one ``*.metrics.json`` document."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"{path} is not a JSON metrics document: {error}"
        ) from error
    if not isinstance(document, dict) or "metrics" not in document:
        raise ConfigurationError(f"{path} has no 'metrics' key")
    if document.get("format") != METRICS_VERSION:
        raise ConfigurationError(
            f"{path} has metrics format {document.get('format')!r}; "
            f"this build reads format {METRICS_VERSION}"
        )
    return document


def metrics_files(target: str | Path) -> list[Path]:
    """The metrics documents under ``target`` (a file or a directory)."""
    path = Path(target)
    if path.is_dir():
        return sorted(path.glob("*.metrics.json"))
    return [path]


def merge_metrics_documents(
    paths: list[Path],
) -> tuple[MetricsRegistry, dict[str, Any]]:
    """Merge metrics documents into one registry plus combined run info."""
    if not paths:
        raise ConfigurationError("no metrics documents to merge")
    registry = MetricsRegistry()
    info: dict[str, Any] = {
        "tags": [],
        "cycles": 0,
        "events_emitted": 0,
        "events_dropped": 0,
    }
    for path in paths:
        document = load_metrics_document(path)
        registry.merge_state(document["metrics"])
        info["tags"].append(document.get("tag", Path(path).stem))
        info["cycles"] += document.get("cycles", 0)
        info["events_emitted"] += document.get("events_emitted", 0)
        info["events_dropped"] += document.get("events_dropped", 0)
    return registry, info


def _fmt(value: float) -> str:
    return f"{value:.4f}"


def render_report(
    registry: MetricsRegistry,
    info: dict[str, Any] | None = None,
    top: int = 10,
) -> str:
    """Render the plain-text run summary for ``registry``."""
    lines: list[str] = ["repro.telemetry report", "======================"]
    if info:
        lines.append(f"runs merged:      {len(info['tags'])}")
        for tag in info["tags"]:
            lines.append(f"  - {tag}")
        lines.append(f"cycles simulated: {info['cycles']}")
        lines.append(
            f"events emitted:   {info['events_emitted']} "
            f"(dropped from ring: {info['events_dropped']})"
        )
    lines.append("")
    lines.append("traffic totals")
    lines.append("--------------")
    for name in (
        "packets_delivered_total",
        "packets_delivered_measured",
        "packets_lost_total",
        "packets_lost_measured",
        "packets_discarded_total",
        "packets_discarded_measured",
        "flow_control_blocks_total",
    ):
        lines.append(f"{name:<28} {registry.value(name)}")
    links = registry.counters("link_transfers_total")
    if links:
        lines.append("link transfers by stage:")
        for counter in links:
            stage = counter.labels.get("stage", "?")
            lines.append(f"  stage {stage:<3} {counter.value}")

    enqueues = registry.counters("buffer_enqueues_total")
    if enqueues:
        lines.append("")
        lines.append(f"hot queues (top {top} by enqueues)")
        lines.append("-------------------------------")
        occupancy = {
            h.labels.get("buffer", ""): h
            for h in registry.histograms("buffer_occupancy")
        }
        dequeues = {
            c.labels.get("buffer", ""): c.value
            for c in registry.counters("buffer_dequeues_total")
        }
        ranked = sorted(
            enqueues, key=lambda c: (-c.value, c.labels.get("buffer", ""))
        )
        for counter in ranked[:top]:
            label = counter.labels.get("buffer", "")
            hist = occupancy.get(label)
            sampled = hist is not None and hist.stats.count > 0
            mean = hist.stats.mean if sampled and hist is not None else 0.0
            peak = hist.stats.maximum if sampled and hist is not None else 0.0
            lines.append(
                f"  {label:<28} enq={counter.value:<7} "
                f"deq={dequeues.get(label, 0):<7} "
                f"mean_occ={_fmt(mean)} peak_occ={peak}"
            )

    grants = registry.counters("arbiter_grants_total")
    if grants:
        lines.append("")
        lines.append("arbitration fairness (Jain's index per switch)")
        lines.append("----------------------------------------------")
        per_switch: dict[str, list[int]] = {}
        for counter in grants:
            per_switch.setdefault(counter.labels.get("switch", ""), []).append(
                counter.value
            )
        denies = {
            c.labels.get("switch", ""): 0
            for c in registry.counters("arbiter_denies_total")
        }
        for counter in registry.counters("arbiter_denies_total"):
            denies[counter.labels.get("switch", "")] += counter.value
        for switch in sorted(per_switch):
            shares = per_switch[switch]
            lines.append(
                f"  {switch:<20} grants={sum(shares):<7} "
                f"denies={denies.get(switch, 0):<7} "
                f"fairness={_fmt(jain_fairness(shares))}"
            )
    return "\n".join(lines) + "\n"
