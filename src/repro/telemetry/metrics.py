"""Labelled metrics registry: counters, gauges and Welford histograms.

The registry is the aggregation side of the telemetry subsystem — where
the event ring keeps a bounded *window* of raw observations, the metrics
keep exact *totals* for the whole run: per-buffer enqueue/dequeue counts,
per-input arbitration grants and denies, occupancy distributions.

Design constraints, matching the rest of the repo's determinism
discipline:

* **Bit-exact snapshots.**  :meth:`MetricsRegistry.snapshot_state`
  produces a canonical, JSON-able document whose floats survive a JSON
  round trip exactly (the histogram state is the raw Welford accumulator
  of :class:`~repro.utils.stats.OnlineStats`), so metrics compose with
  :mod:`repro.cache` checkpoints the same way the simulator's meters do.
* **In-place restore.**  Instrumented components cache direct references
  to their :class:`Counter` objects at adoption time (no dict lookup per
  event); :meth:`MetricsRegistry.restore_state` therefore mutates the
  existing metric objects rather than rebuilding them, keeping every
  cached reference live across a checkpoint restore.
* **Mergeable.**  :meth:`MetricsRegistry.merge_state` folds another
  registry's snapshot into this one (counters add, gauges keep the max,
  histograms use the parallel Welford merge), which is how per-worker
  metrics from ``parallel_simulate`` runs combine into one report.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import ConfigurationError
from repro.utils.stats import OnlineStats

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS_VERSION",
    "MetricsRegistry",
]

#: Version tag of the registry snapshot format.
METRICS_VERSION = 1

#: Canonical key of one metric: (type, name, sorted (label, value) pairs).
_Key = tuple[str, str, tuple[tuple[str, str], ...]]


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (callers on hot paths may also ``+=`` directly)."""
        self.value += amount


class Gauge:
    """Last-written value (e.g. current free-list depth).

    ``updates`` counts writes so an untouched gauge is distinguishable
    from one explicitly set to zero.  Merging two gauges keeps the
    maximum — across parallel runs there is no meaningful "last" writer,
    so the peak is the only order-independent choice.
    """

    __slots__ = ("name", "labels", "value", "updates")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self.updates = 0

    def set(self, value: int) -> None:
        """Record the current value."""
        self.value = value
        self.updates += 1


class Histogram:
    """Welford summary (count/mean/variance/min/max) of a sample stream."""

    __slots__ = ("name", "labels", "stats")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.stats = OnlineStats()

    def record(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.stats.add(value)


#: Union of the three metric classes (for annotations).
Metric = Counter | Gauge | Histogram

_TYPE_NAMES: dict[type[Any], str] = {
    Counter: "counter",
    Gauge: "gauge",
    Histogram: "histogram",
}
_TYPES_BY_NAME: dict[str, type[Any]] = {v: k for k, v in _TYPE_NAMES.items()}


def _labels_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Get-or-create store of labelled metrics with exact serialization."""

    def __init__(self) -> None:
        self._metrics: dict[_Key, Metric] = {}

    # -- get-or-create -----------------------------------------------------

    def _get(self, type_name: str, name: str, labels: dict[str, Any]) -> Metric:
        clean = {key: str(value) for key, value in labels.items()}
        key: _Key = (type_name, name, _labels_key(clean))
        metric = self._metrics.get(key)
        if metric is None:
            metric = _TYPES_BY_NAME[type_name](name, clean)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter registered under ``name`` + ``labels``."""
        metric = self._get("counter", name, labels)
        if not isinstance(metric, Counter):  # pragma: no cover - type guard
            raise ConfigurationError(f"{name} is not a counter")
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge registered under ``name`` + ``labels``."""
        metric = self._get("gauge", name, labels)
        if not isinstance(metric, Gauge):  # pragma: no cover - type guard
            raise ConfigurationError(f"{name} is not a gauge")
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram registered under ``name`` + ``labels``."""
        metric = self._get("histogram", name, labels)
        if not isinstance(metric, Histogram):  # pragma: no cover - type guard
            raise ConfigurationError(f"{name} is not a histogram")
        return metric

    def drop(self, type_name: str, name: str, **labels: Any) -> None:
        """Remove one metric (used when a component is relabelled)."""
        clean = {key: str(value) for key, value in labels.items()}
        self._metrics.pop((type_name, name, _labels_key(clean)), None)

    # -- queries -----------------------------------------------------------

    def rows(self) -> Iterator[Metric]:
        """Every metric, in canonical (type, name, labels) order."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def counters(self, name: str) -> list[Counter]:
        """Every counter registered under ``name``, canonical order."""
        return [
            metric
            for metric in self.rows()
            if isinstance(metric, Counter) and metric.name == name
        ]

    def histograms(self, name: str) -> list[Histogram]:
        """Every histogram registered under ``name``, canonical order."""
        return [
            metric
            for metric in self.rows()
            if isinstance(metric, Histogram) and metric.name == name
        ]

    def value(self, name: str) -> int:
        """Sum of every counter registered under ``name`` (0 when none)."""
        return sum(counter.value for counter in self.counters(name))

    def __len__(self) -> int:
        return len(self._metrics)

    # -- serialization -----------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """Canonical, JSON-able, bit-exact snapshot of every metric."""
        records: list[dict[str, Any]] = []
        for metric in self.rows():
            record: dict[str, Any] = {
                "type": _TYPE_NAMES[type(metric)],
                "name": metric.name,
                "labels": dict(sorted(metric.labels.items())),
            }
            if isinstance(metric, Counter):
                record["value"] = metric.value
            elif isinstance(metric, Gauge):
                record["value"] = metric.value
                record["updates"] = metric.updates
            else:
                record["state"] = metric.stats.get_state()
            records.append(record)
        return {"version": METRICS_VERSION, "metrics": records}

    def restore_state(self, state: dict[str, Any]) -> None:
        """Overwrite this registry with a :meth:`snapshot_state` document.

        Existing metric objects are mutated in place (cached references
        held by instrumented components stay valid); metrics present here
        but absent from the snapshot are reset to their empty state;
        metrics only in the snapshot are created.
        """
        if state.get("version") != METRICS_VERSION:
            raise ConfigurationError(
                f"metrics snapshot version {state.get('version')!r} is not "
                f"the supported version {METRICS_VERSION}"
            )
        seen: set[_Key] = set()
        for record in state["metrics"]:
            metric = self._get(record["type"], record["name"], record["labels"])
            seen.add(
                (record["type"], metric.name, _labels_key(metric.labels))
            )
            if isinstance(metric, Counter):
                metric.value = record["value"]
            elif isinstance(metric, Gauge):
                metric.value = record["value"]
                metric.updates = record["updates"]
            else:
                metric.stats.set_state(record["state"])
        for key, metric in self._metrics.items():
            if key in seen:
                continue
            if isinstance(metric, Counter):
                metric.value = 0
            elif isinstance(metric, Gauge):
                metric.value = 0
                metric.updates = 0
            else:
                metric.stats = OnlineStats()

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        Counters add; gauges keep the maximum value (and add update
        counts); histograms use the exact parallel Welford merge.
        """
        if state.get("version") != METRICS_VERSION:
            raise ConfigurationError(
                f"metrics snapshot version {state.get('version')!r} is not "
                f"the supported version {METRICS_VERSION}"
            )
        for record in state["metrics"]:
            metric = self._get(record["type"], record["name"], record["labels"])
            if isinstance(metric, Counter):
                metric.value += record["value"]
            elif isinstance(metric, Gauge):
                if record["updates"]:
                    metric.value = (
                        record["value"]
                        if not metric.updates
                        else max(metric.value, record["value"])
                    )
                metric.updates += record["updates"]
            else:
                other = OnlineStats()
                other.set_state(record["state"])
                metric.stats.merge(other)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (see :meth:`merge_state`)."""
        self.merge_state(other.snapshot_state())
