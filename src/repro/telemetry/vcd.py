"""Value Change Dump (VCD) export of queue lengths and free-list depth.

The waveform view the paper's Section 3 reasoning calls for: every
buffer's per-destination queue length and its free-slot depth over time,
loadable in GTKWave (or any IEEE 1364 VCD viewer).  Signals are
reconstructed from the trace events — each ``enqueue``/``dequeue`` event
carries the *absolute* new queue length and free depth, and each
``alloc``/``free``/``retire`` event carries the absolute free depth, so
a ring that dropped early history still produces correct values from the
first retained event onward (signals dump as ``x`` until then).

Hierarchy: the dotted component labels (``stage0.switch3.in2``) become
nested ``$scope module`` levels, so GTKWave's tree matches the
simulator's structure.  One timescale unit is one *clock*; event times
are ``cycle * cycle_clocks`` (the paper's 12-clock network cycle).

:func:`read_vcd` is the minimal structural parser the tests and the CI
smoke job use to validate exported files.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.errors import ConfigurationError
from repro.network.simulator import DEFAULT_CYCLE_CLOCKS
from repro.telemetry.events import TraceEvent

__all__ = ["read_vcd", "write_vcd"]

#: Signal width in bits (queue lengths and free depths are small ints).
_WIDTH = 16

#: Printable VCD identifier-code alphabet ('!' .. '~').
_ID_ALPHABET = [chr(code) for code in range(33, 127)]


def _id_code(index: int) -> str:
    """Compact printable identifier code for the ``index``-th signal."""
    base = len(_ID_ALPHABET)
    code = _ID_ALPHABET[index % base]
    while index >= base:
        index = index // base - 1
        code = _ID_ALPHABET[index % base] + code
    return code


def _signal_changes(
    events: Iterable[TraceEvent],
) -> dict[tuple[str, str], list[tuple[int, int]]]:
    """(component, signal) -> [(cycle, absolute value), ...] in order."""
    changes: dict[tuple[str, str], list[tuple[int, int]]] = {}

    def note(component: str, signal: str, cycle: int, value: int) -> None:
        changes.setdefault((component, signal), []).append((cycle, value))

    for event in events:
        if event.kind in ("enqueue", "dequeue"):
            note(event.component, f"q{event.port}", event.cycle, event.value)
            note(event.component, "free", event.cycle, event.extra)
        elif event.kind in ("alloc", "free", "retire"):
            note(event.component, "free", event.cycle, event.extra)
    return changes


def write_vcd(
    events: Iterable[TraceEvent],
    path: str | Path,
    cycle_clocks: int = DEFAULT_CYCLE_CLOCKS,
) -> Path:
    """Write the queue-length/free-depth waveform of ``events`` to ``path``.

    Deterministic output: signals are declared in sorted (component,
    signal) order and identifier codes assigned in that order, so the
    same events always produce a byte-identical file.
    """
    changes = _signal_changes(events)
    keys = sorted(changes)
    codes = {key: _id_code(index) for index, key in enumerate(keys)}

    lines: list[str] = [
        "$comment repro.telemetry queue-length/free-depth waveform $end",
        "$version repro.telemetry $end",
        "$timescale 1 ns $end",
    ]
    # Nested scopes from the dotted component labels.
    open_scope: list[str] = []
    for component, signal in keys:
        scope = component.split(".")
        while open_scope and open_scope != scope[: len(open_scope)]:
            lines.append("$upscope $end")
            open_scope.pop()
        while len(open_scope) < len(scope):
            lines.append(f"$scope module {scope[len(open_scope)]} $end")
            open_scope.append(scope[len(open_scope)])
        code = codes[(component, signal)]
        lines.append(f"$var wire {_WIDTH} {code} {signal} $end")
    while open_scope:
        lines.append("$upscope $end")
        open_scope.pop()
    lines.append("$enddefinitions $end")
    # All signals unknown until their first retained event.
    lines.append("$dumpvars")
    for key in keys:
        lines.append(f"bx {codes[key]}")
    lines.append("$end")

    # Merge per-signal change lists into one time-ordered dump.  Events
    # arrive cycle-ordered already; collect per-cycle buckets, keeping
    # only each signal's last value within a cycle.
    by_time: dict[int, dict[str, int]] = {}
    for key, signal_changes in changes.items():
        code = codes[key]
        for cycle, value in signal_changes:
            by_time.setdefault(cycle * cycle_clocks, {})[code] = value
    last_value: dict[str, int] = {}
    for time in sorted(by_time):
        bucket = by_time[time]
        dump = [
            f"b{value:b} {code}"
            for code, value in sorted(bucket.items())
            if last_value.get(code) != value
        ]
        if not dump:
            continue
        lines.append(f"#{time}")
        lines.extend(dump)
        for code, value in bucket.items():
            last_value[code] = value

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text("\n".join(lines) + "\n")
    return target


def read_vcd(path: str | Path) -> dict[str, object]:
    """Structurally parse a VCD file (validation for tests/CI).

    Returns ``{"signals": {hierarchical name: id code}, "changes": N,
    "times": M}``.  Raises :class:`~repro.errors.ConfigurationError` on
    malformed structure: unbalanced scopes, a value change for an
    undeclared identifier, or a missing ``$enddefinitions``.
    """
    signals: dict[str, str] = {}
    declared: set[str] = set()
    scope: list[str] = []
    in_definitions = True
    saw_enddefinitions = False
    changes = 0
    times = 0
    for raw in Path(path).read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_definitions:
            if line.startswith("$scope"):
                parts = line.split()
                if len(parts) < 4 or parts[-1] != "$end":
                    raise ConfigurationError(f"malformed scope line: {line}")
                scope.append(parts[2])
            elif line.startswith("$upscope"):
                if not scope:
                    raise ConfigurationError("unbalanced $upscope")
                scope.pop()
            elif line.startswith("$var"):
                parts = line.split()
                if len(parts) != 6 or parts[-1] != "$end":
                    raise ConfigurationError(f"malformed var line: {line}")
                code, name = parts[3], parts[4]
                signals[".".join(scope + [name])] = code
                declared.add(code)
            elif line.startswith("$enddefinitions"):
                if scope:
                    raise ConfigurationError(
                        f"$enddefinitions with {len(scope)} open scope(s)"
                    )
                in_definitions = False
                saw_enddefinitions = True
            continue
        if line in ("$dumpvars", "$end"):
            continue
        if line.startswith("#"):
            times += 1
            continue
        if line.startswith("b"):
            parts = line.split()
            if len(parts) != 2 or parts[1] not in declared:
                raise ConfigurationError(f"change for undeclared id: {line}")
            changes += 1
            continue
        raise ConfigurationError(f"unrecognized VCD line: {line}")
    if not saw_enddefinitions:
        raise ConfigurationError("VCD file has no $enddefinitions")
    return {"signals": signals, "changes": changes, "times": times}
