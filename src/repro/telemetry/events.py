"""Typed, cycle-stamped trace events and the bounded ring that holds them.

Every instrumented component funnels its observations through
:meth:`repro.telemetry.session.TraceSession.emit`, which stamps the
session's current network cycle onto a :class:`TraceEvent` and appends it
to an :class:`EventRing`.  The ring is *bounded*: a long run cannot grow
memory without limit, and the exporters state explicitly how many early
events were dropped so a truncated waveform is never mistaken for a
complete one.

Event taxonomy (``kind`` / what the remaining fields mean):

=========== =============================== ======================= ==================
kind        component                       port / value            extra
=========== =============================== ======================= ==================
enqueue     buffer (``stageS.switchI.inP``) dest queue / new length free slots after
dequeue     buffer                          dest queue / new length free slots after
grant       switch (``stageS.switchI``)     input port / output     packet size
deny        switch                          input port / longest q  0
block       buffer                          output port / 1         0
unblock     buffer                          output port / 0         0
link        switch or chip port             output port / pkt size  packet id (or 0)
deliver     ``network``                     sink port / pkt size    packet id
loss        switch or ``network``           output port / pkt size  packet id
drop        ``network``                     -1 / pkt size           packet id
alloc       slot manager (buffer label)     list id / slot          free slots after
free        slot manager                    -1 / slot               free slots after
retire      slot manager                    -1 / slot               free slots after
=========== =============================== ======================= ==================
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, NamedTuple

from repro.errors import ConfigurationError

__all__ = ["DEFAULT_RING_CAPACITY", "EVENT_KINDS", "EventRing", "TraceEvent"]

#: Default bound on retained events (~4 MB of tuples); override via
#: ``TraceSession(capacity=...)``.  ``0`` disables event retention
#: entirely (metrics-only mode) while still counting emissions.
DEFAULT_RING_CAPACITY = 65536

#: Every ``kind`` the instrumentation emits (see the module docstring).
EVENT_KINDS = (
    "enqueue",
    "dequeue",
    "grant",
    "deny",
    "block",
    "unblock",
    "link",
    "deliver",
    "loss",
    "drop",
    "alloc",
    "free",
    "retire",
)


class TraceEvent(NamedTuple):
    """One observation, stamped with the network cycle it happened in.

    A named tuple rather than a dataclass: events are created on the
    simulator's hot path when tracing is on, and tuple construction is
    markedly cheaper than field-by-field dataclass init.
    """

    cycle: int
    kind: str
    component: str
    port: int
    value: int
    extra: int

    def as_dict(self) -> dict[str, object]:
        """JSON-able representation (used by tests and exporters)."""
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "component": self.component,
            "port": self.port,
            "value": self.value,
            "extra": self.extra,
        }


class EventRing:
    """Bounded FIFO of trace events with an exact emission count.

    Appending beyond ``capacity`` silently evicts the *oldest* event (the
    most recent window is the interesting one for waveforms), but the
    total emission count keeps incrementing, so :attr:`dropped` reports
    exactly how much history was lost.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 0:
            raise ConfigurationError("event ring capacity must be >= 0")
        self.capacity = capacity
        self.emitted = 0
        self._events: deque[TraceEvent] = deque(maxlen=capacity)

    def append(self, event: TraceEvent) -> None:
        """Record one event (evicting the oldest beyond capacity)."""
        self.emitted += 1
        self._events.append(event)

    @property
    def dropped(self) -> int:
        """Events evicted (or never retained, in metrics-only mode)."""
        return self.emitted - len(self._events)

    def clear(self) -> None:
        """Forget retained events; the emission count keeps its total."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)
