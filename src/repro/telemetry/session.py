"""The trace session and the instrumented component subclasses.

A :class:`TraceSession` is one run's telemetry sink: the bounded event
ring, the metrics registry, and the current network-cycle stamp.  It
instruments live components with the same zero-overhead ``__class__``
adoption the hardware sanitizer uses (see
:mod:`repro.analysis.sanitizer`): each traced class has the plain class
as its *leading* base plus a trailing bookkeeping mixin, so swapping
``component.__class__`` preserves all live state, and with telemetry off
the plain classes are constructed directly — the hot path carries zero
instrumentation branches.

The instrumentation only *observes*: it draws nothing from any RNG and
never changes model behaviour, so traced runs are bit-identical to plain
ones (pinned by ``tests/integration/test_determinism_regression.py``).

Choke points instrumented here:

* the four paper buffer classes plus the ``repro.arch`` zoo's
  (``push``/``pop`` → enqueue/dequeue events, per-buffer counters,
  occupancy histograms);
* :class:`~repro.core.linkedlist.SlotListManager` (``allocate`` /
  ``_append_free`` / ``retire_slot`` → slot alloc/free/retire events and
  free-depth gauges);
* every :class:`~repro.switch.scheduler.Scheduler` implementation —
  :class:`~repro.switch.arbiter.CrossbarArbiter` and the zoo's
  crosspoint/iterative schedulers (``arbitrate`` → grant/deny events and
  per-input fairness counters);
* the ComCoBB chip's input/output port FSMs (packet completion →
  link-transfer events and per-port counters).

The network-level instrumentation (simulator cycle stamping, link
transfers, delivery/loss accounting, flow-control block tracking) lives
in :class:`repro.telemetry.simulator.TracedOmegaNetworkSimulator`.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from typing import Any

from repro.arch.crosspoint import CrosspointBuffer
from repro.arch.damq_reserved import DamqReservedBuffer
from repro.arch.schedulers import CrosspointScheduler, IterativeScheduler
from repro.chip.comcobb import ComCoBBChip
from repro.chip.input_port import InputPort
from repro.chip.output_port import OutputPort
from repro.core.buffer import SwitchBuffer
from repro.core.damq import DamqBuffer
from repro.core.fifo import FifoBuffer
from repro.core.linkedlist import SlotListManager
from repro.core.packet import Packet
from repro.core.safc import SafcBuffer
from repro.core.samq import SamqBuffer
from repro.errors import ConfigurationError
from repro.switch.arbiter import (
    BlockedPredicate,
    CrossbarArbiter,
    Grant,
    Scheduler,
)
from repro.telemetry.events import DEFAULT_RING_CAPACITY, EventRing, TraceEvent
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "METRICS_ENV",
    "TRACE_ENV",
    "TraceSession",
    "TracedCrossbarArbiter",
    "TracedCrosspointBuffer",
    "TracedCrosspointScheduler",
    "TracedDamqBuffer",
    "TracedDamqReservedBuffer",
    "TracedFifoBuffer",
    "TracedInputPort",
    "TracedIterativeScheduler",
    "TracedOutputPort",
    "TracedSafcBuffer",
    "TracedSamqBuffer",
    "TracedSlotListManager",
    "metrics_directory",
    "trace_directory",
]

#: Environment variable enabling full tracing (events + metrics + file
#: export).  The value is the export directory; ``""``/``"0"`` disable,
#: ``"1"`` enables without file export (in-process inspection only).
TRACE_ENV = "REPRO_TRACE"

#: Environment variable enabling metrics-only mode (no event retention).
#: Same value convention as :data:`TRACE_ENV`; ignored when full tracing
#: is also requested.
METRICS_ENV = "REPRO_METRICS"


def _directory_from(variable: str, env: str | None) -> str | None:
    """Decode a dir-valued env switch: off, on-without-export, or a dir."""
    value = os.environ.get(variable, "") if env is None else env
    if value in ("", "0"):
        return None
    return "" if value == "1" else value


def trace_directory(env: str | None = None) -> str | None:
    """Export dir from ``REPRO_TRACE`` (``""`` = on, no export; ``None`` = off)."""
    return _directory_from(TRACE_ENV, env)


def metrics_directory(env: str | None = None) -> str | None:
    """Export dir from ``REPRO_METRICS`` (same convention)."""
    return _directory_from(METRICS_ENV, env)


class TraceSession:
    """One run's telemetry sink: event ring + metrics + cycle stamp.

    ``capacity=0`` puts the session in metrics-only mode: every emission
    is counted but none retained, so the waveform exporters have nothing
    to write while the counters stay complete.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_RING_CAPACITY,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        #: Simulated cycle stamp; advanced by the traced simulator (or the
        #: chip phase methods) before events of that cycle are emitted.
        self.cycle = 0
        self.ring = EventRing(capacity)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._buffers: list[SwitchBuffer] = []
        self._managers: list["TracedSlotListManager"] = []
        self._arbiters: list[Scheduler] = []

    # -- recording ---------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        """Advance the cycle stamp (call once per simulated cycle)."""
        self.cycle = cycle

    def emit(
        self, kind: str, component: str, port: int, value: int, extra: int = 0
    ) -> None:
        """Append one cycle-stamped event to the ring."""
        self.ring.append(
            TraceEvent(self.cycle, kind, component, port, value, extra)
        )

    # -- component adoption ------------------------------------------------

    def adopt_buffer(
        self, buffer: SwitchBuffer, label: str | None = None
    ) -> SwitchBuffer:
        """Install the traced subclass onto a freshly built buffer.

        ``__class__`` reassignment onto a subclass that adds only
        bookkeeping attributes: the buffer keeps its exact state and the
        plain classes stay untouched.  DAMQ buffers additionally get
        their slot manager adopted, so slot alloc/free/retire events
        carry the same label.
        """
        traced_class = _TRACED_BUFFER_CLASSES.get(type(buffer))
        if traced_class is None:
            raise ConfigurationError(
                f"cannot trace buffer of type {type(buffer).__name__}; "
                f"expected one of "
                f"{sorted(cls.__name__ for cls in _TRACED_BUFFER_CLASSES)}"
            )
        buffer.__class__ = traced_class
        buffer._tel = self  # type: ignore[attr-defined]
        buffer._tel_label = label or f"buffer{len(self._buffers)}"  # type: ignore[attr-defined]
        self._bind_buffer_metrics(buffer)
        if isinstance(buffer, DamqBuffer):
            TracedSlotListManager.adopt(
                buffer._lists, self, buffer._tel_label  # type: ignore[attr-defined]
            )
        self._buffers.append(buffer)
        return buffer

    def _bind_buffer_metrics(self, buffer: SwitchBuffer) -> None:
        """Cache this buffer's metric objects under its current label."""
        label = buffer._tel_label  # type: ignore[attr-defined]
        buffer._tel_enq = self.metrics.counter(  # type: ignore[attr-defined]
            "buffer_enqueues_total", buffer=label
        )
        buffer._tel_deq = self.metrics.counter(  # type: ignore[attr-defined]
            "buffer_dequeues_total", buffer=label
        )
        buffer._tel_occ = self.metrics.histogram(  # type: ignore[attr-defined]
            "buffer_occupancy", buffer=label
        )
        buffer._tel_free = self.metrics.gauge(  # type: ignore[attr-defined]
            "buffer_free_slots", buffer=label
        )

    def wrap_factory(
        self, factory: Callable[[int], SwitchBuffer]
    ) -> Callable[[int], SwitchBuffer]:
        """Wrap a buffer factory so every built buffer is traced."""

        def traced_factory(num_outputs: int) -> SwitchBuffer:
            return self.adopt_buffer(factory(num_outputs))

        return traced_factory

    def set_label(self, buffer: SwitchBuffer, label: str) -> None:
        """Relabel a buffer (and its slot manager) for reports.

        Only valid before the buffer has seen traffic: the zero-valued
        metrics registered under the placeholder label are dropped and
        re-created under the new one, keeping the registry free of
        stale construction-time entries.
        """
        old = buffer._tel_label  # type: ignore[attr-defined]
        for type_name, name in (
            ("counter", "buffer_enqueues_total"),
            ("counter", "buffer_dequeues_total"),
            ("histogram", "buffer_occupancy"),
            ("gauge", "buffer_free_slots"),
        ):
            self.metrics.drop(type_name, name, buffer=old)
        buffer._tel_label = label  # type: ignore[attr-defined]
        self._bind_buffer_metrics(buffer)
        if isinstance(buffer, DamqBuffer):
            manager = buffer._lists
            if isinstance(manager, TracedSlotListManager):
                manager.relabel(label)

    def adopt_slot_manager(
        self, manager: SlotListManager, label: str
    ) -> "TracedSlotListManager":
        """Trace a standalone slot manager (e.g. the chip model's)."""
        return TracedSlotListManager.adopt(manager, self, label)

    def adopt_arbiter(self, arbiter: Scheduler, label: str) -> Scheduler:
        """Install the matching traced subclass onto a live scheduler.

        Works for the paper's :class:`CrossbarArbiter` and for every
        scheduling discipline in the architecture zoo: the traced
        subclass is looked up by exact type, same as buffer adoption.
        """
        if isinstance(arbiter, _SchedulerTelemetry):
            return arbiter
        traced_class = _TRACED_SCHEDULER_CLASSES.get(type(arbiter))
        if traced_class is None:
            raise ConfigurationError(
                f"cannot trace arbiter of type {type(arbiter).__name__}; "
                f"expected one of "
                f"{sorted(cls.__name__ for cls in _TRACED_SCHEDULER_CLASSES)}"
            )
        arbiter.__class__ = traced_class
        arbiter._tel = self  # type: ignore[attr-defined]
        arbiter._tel_label = label  # type: ignore[attr-defined]
        arbiter._tel_grants = [  # type: ignore[attr-defined]
            self.metrics.counter("arbiter_grants_total", switch=label, input=i)
            for i in range(arbiter.num_inputs)
        ]
        arbiter._tel_denies = [  # type: ignore[attr-defined]
            self.metrics.counter("arbiter_denies_total", switch=label, input=i)
            for i in range(arbiter.num_inputs)
        ]
        self._arbiters.append(arbiter)
        return arbiter

    def adopt_chip(self, chip: ComCoBBChip) -> ComCoBBChip:
        """Instrument a ComCoBB chip: slot managers and both port FSMs.

        The chip drives its own clock (its phase methods receive the
        cycle), so the traced ports stamp the session's cycle themselves
        rather than relying on a simulator calling :meth:`begin_cycle`.
        """
        for port, buffer in enumerate(chip.buffers):
            self.adopt_slot_manager(buffer.lists, f"{chip.name}.in{port}")
        for input_port in chip.input_ports:
            if isinstance(input_port, TracedInputPort):
                continue
            if type(input_port) is not InputPort:
                raise ConfigurationError(
                    f"cannot trace input port of type "
                    f"{type(input_port).__name__}"
                )
            input_port.__class__ = TracedInputPort
            input_port._tel = self  # type: ignore[attr-defined]
            input_port._tel_label = input_port.name  # type: ignore[attr-defined]
            input_port._tel_rx = self.metrics.counter(  # type: ignore[attr-defined]
                "chip_packets_received_total", port=input_port.name
            )
            input_port._tel_seen = input_port.packets_received  # type: ignore[attr-defined]
        for output_port in chip.output_ports:
            if isinstance(output_port, TracedOutputPort):
                continue
            if type(output_port) is not OutputPort:
                raise ConfigurationError(
                    f"cannot trace output port of type "
                    f"{type(output_port).__name__}"
                )
            output_port.__class__ = TracedOutputPort
            output_port._tel = self  # type: ignore[attr-defined]
            output_port._tel_label = output_port.name  # type: ignore[attr-defined]
            output_port._tel_tx = self.metrics.counter(  # type: ignore[attr-defined]
                "chip_packets_sent_total", port=output_port.name
            )
        return chip


class TracedSlotListManager(SlotListManager):
    """Slot manager emitting alloc/free/retire events.

    Installed over a live :class:`SlotListManager` by :meth:`adopt`; the
    overrides sit on the same three choke points the sanitizer uses
    (``allocate``, ``_append_free``, ``retire_slot``), so the datapath
    operations stay the inherited, hardware-faithful code.
    """

    # Adoption-time attributes (no __init__ of its own: instances are
    # created by __class__ reassignment, preserving live state).
    _tel: TraceSession
    _tel_label: str
    _tel_retires: Counter

    @classmethod
    def adopt(
        cls,
        manager: SlotListManager,
        session: TraceSession,
        label: str,
    ) -> "TracedSlotListManager":
        """Swap a live manager's class and bind its metrics."""
        if isinstance(manager, cls):
            manager.relabel(label)
            return manager
        if type(manager) is not SlotListManager:
            raise ConfigurationError(
                f"cannot trace slot manager of type {type(manager).__name__}"
            )
        manager.__class__ = cls
        adopted: "TracedSlotListManager" = manager  # type: ignore[assignment]
        adopted._tel = session
        adopted._tel_label = label
        adopted._tel_retires = session.metrics.counter(
            "slot_retires_total", buffer=label
        )
        session._managers.append(adopted)
        return adopted

    def relabel(self, label: str) -> None:
        """Rename this manager (drops the zero-valued old counter)."""
        if label == self._tel_label:
            return
        self._tel.metrics.drop(
            "counter", "slot_retires_total", buffer=self._tel_label
        )
        self._tel_label = label
        self._tel_retires = self._tel.metrics.counter(
            "slot_retires_total", buffer=label
        )

    def allocate(self, list_id: int) -> int:
        slot = super().allocate(list_id)
        self._tel.emit("alloc", self._tel_label, list_id, slot, self.free_count)
        return slot

    def _append_free(self, slot: int) -> None:
        super()._append_free(slot)
        self._tel.emit("free", self._tel_label, -1, slot, self.free_count)

    def retire_slot(self, slot: int | None = None) -> int:
        retired = super().retire_slot(slot)
        self._tel_retires.inc()
        self._tel.emit("retire", self._tel_label, -1, retired, self.free_count)
        return retired


class _TraceHooks:
    """Enqueue/dequeue bookkeeping shared by the four traced buffers.

    A *trailing* mixin (``class TracedX(X, _TraceHooks)``): CPython's
    ``__class__`` reassignment requires the traced class to have the
    plain buffer class as leading base, so the overrides live on the
    concrete subclasses and call these helpers explicitly — the same
    layout as the sanitizer's ``_PortAccounting``.
    """

    _tel: TraceSession
    _tel_label: str
    _tel_enq: Counter
    _tel_deq: Counter
    _tel_occ: Histogram
    _tel_free: Gauge

    def _tel_after_push(self, packet: Packet, destination: int) -> None:
        self._tel_enq.value += 1
        occupancy: int = self.occupancy  # type: ignore[attr-defined]
        self._tel_occ.stats.add(occupancy)
        free: int = self.effective_capacity - occupancy  # type: ignore[attr-defined]
        self._tel_free.set(free)
        self._tel.emit(
            "enqueue",
            self._tel_label,
            destination,
            self.queue_length(destination),  # type: ignore[attr-defined]
            free,
        )

    def _tel_after_pop(self, packet: Packet, destination: int) -> None:
        self._tel_deq.value += 1
        occupancy: int = self.occupancy  # type: ignore[attr-defined]
        free: int = self.effective_capacity - occupancy  # type: ignore[attr-defined]
        self._tel_free.set(free)
        self._tel.emit(
            "dequeue",
            self._tel_label,
            destination,
            self.queue_length(destination),  # type: ignore[attr-defined]
            free,
        )


class TracedFifoBuffer(FifoBuffer, _TraceHooks):
    """FIFO buffer emitting enqueue/dequeue telemetry."""

    def push(self, packet: Packet, destination: int) -> None:
        super().push(packet, destination)
        self._tel_after_push(packet, destination)

    def pop(self, destination: int) -> Packet:
        packet = super().pop(destination)
        self._tel_after_pop(packet, destination)
        return packet


class TracedSamqBuffer(SamqBuffer, _TraceHooks):
    """SAMQ buffer emitting enqueue/dequeue telemetry."""

    def push(self, packet: Packet, destination: int) -> None:
        super().push(packet, destination)
        self._tel_after_push(packet, destination)

    def pop(self, destination: int) -> Packet:
        packet = super().pop(destination)
        self._tel_after_pop(packet, destination)
        return packet


class TracedSafcBuffer(SafcBuffer, _TraceHooks):
    """SAFC buffer emitting enqueue/dequeue telemetry."""

    def push(self, packet: Packet, destination: int) -> None:
        super().push(packet, destination)
        self._tel_after_push(packet, destination)

    def pop(self, destination: int) -> Packet:
        packet = super().pop(destination)
        self._tel_after_pop(packet, destination)
        return packet


class TracedDamqBuffer(DamqBuffer, _TraceHooks):
    """DAMQ buffer emitting enqueue/dequeue (and, via its traced slot
    manager, alloc/free/retire) telemetry."""

    def push(self, packet: Packet, destination: int) -> None:
        super().push(packet, destination)
        self._tel_after_push(packet, destination)

    def pop(self, destination: int) -> Packet:
        packet = super().pop(destination)
        self._tel_after_pop(packet, destination)
        return packet


class TracedDamqReservedBuffer(DamqReservedBuffer, _TraceHooks):
    """Reserved-slot DAMQ buffer emitting enqueue/dequeue (and, via its
    traced slot manager, alloc/free/retire) telemetry."""

    def push(self, packet: Packet, destination: int) -> None:
        super().push(packet, destination)
        self._tel_after_push(packet, destination)

    def pop(self, destination: int) -> Packet:
        packet = super().pop(destination)
        self._tel_after_pop(packet, destination)
        return packet


class TracedCrosspointBuffer(CrosspointBuffer, _TraceHooks):
    """Crosspoint-queued buffer emitting enqueue/dequeue telemetry."""

    def push(self, packet: Packet, destination: int) -> None:
        super().push(packet, destination)
        self._tel_after_push(packet, destination)

    def pop(self, destination: int) -> Packet:
        packet = super().pop(destination)
        self._tel_after_pop(packet, destination)
        return packet


#: Plain class -> traced subclass, for ``__class__`` adoption.
_TRACED_BUFFER_CLASSES: dict[type[SwitchBuffer], type[SwitchBuffer]] = {
    FifoBuffer: TracedFifoBuffer,
    SamqBuffer: TracedSamqBuffer,
    SafcBuffer: TracedSafcBuffer,
    DamqBuffer: TracedDamqBuffer,
    DamqReservedBuffer: TracedDamqReservedBuffer,
    CrosspointBuffer: TracedCrosspointBuffer,
}


class _SchedulerTelemetry:
    """Grant/deny bookkeeping shared by the traced schedulers.

    A *deny* is recorded for every input that held at least one buffered
    packet this cycle but received no grant — the quantity the paper's
    fairness discussion reasons about.  The scheduling decision itself
    is entirely the inherited code; telemetry reads the same
    queue-length rows the scheduler used (buffer state is constant
    during arbitration, pops happen at execution).

    A trailing mixin, same layout as :class:`_TraceHooks`: the
    ``arbitrate`` overrides live on the concrete traced classes (they
    must shadow the plain implementations, which sit earlier in the
    MRO) and call :meth:`_tel_record` explicitly.
    """

    _tel: TraceSession
    _tel_label: str
    _tel_grants: list[Counter]
    _tel_denies: list[Counter]

    num_inputs: int

    def _tel_record(
        self, rows: Sequence[list[int]], grants: list[Grant]
    ) -> None:
        session = self._tel
        label = self._tel_label
        served = [False] * self.num_inputs
        for grant in grants:
            served[grant.input_port] = True
            self._tel_grants[grant.input_port].value += 1
            session.emit(
                "grant", label, grant.input_port, grant.output_port,
                grant.packet.size,
            )
        for input_port, row in enumerate(rows):
            if served[input_port]:
                continue
            longest = max(row)
            if longest > 0:
                self._tel_denies[input_port].value += 1
                session.emit("deny", label, input_port, longest)


class TracedCrossbarArbiter(CrossbarArbiter, _SchedulerTelemetry):
    """Crossbar arbiter emitting grant/deny telemetry."""

    def arbitrate(
        self,
        buffers: Sequence[SwitchBuffer],
        blocked: BlockedPredicate,
        lengths: Sequence[list[int]] | None = None,
    ) -> list[Grant]:
        rows = (
            lengths
            if lengths is not None
            else [buffer.queue_lengths() for buffer in buffers]
        )
        grants = super().arbitrate(buffers, blocked, rows)
        self._tel_record(rows, grants)
        return grants


class TracedCrosspointScheduler(CrosspointScheduler, _SchedulerTelemetry):
    """Per-output crosspoint scheduler emitting grant/deny telemetry."""

    def arbitrate(
        self,
        buffers: Sequence[SwitchBuffer],
        blocked: BlockedPredicate,
        lengths: Sequence[list[int]] | None = None,
    ) -> list[Grant]:
        rows = (
            lengths
            if lengths is not None
            else [buffer.queue_lengths() for buffer in buffers]
        )
        grants = super().arbitrate(buffers, blocked, rows)
        self._tel_record(rows, grants)
        return grants


class TracedIterativeScheduler(IterativeScheduler, _SchedulerTelemetry):
    """iSLIP-style iterative scheduler emitting grant/deny telemetry."""

    def arbitrate(
        self,
        buffers: Sequence[SwitchBuffer],
        blocked: BlockedPredicate,
        lengths: Sequence[list[int]] | None = None,
    ) -> list[Grant]:
        rows = (
            lengths
            if lengths is not None
            else [buffer.queue_lengths() for buffer in buffers]
        )
        grants = super().arbitrate(buffers, blocked, rows)
        self._tel_record(rows, grants)
        return grants


#: Plain scheduler class -> traced subclass, for ``__class__`` adoption.
_TRACED_SCHEDULER_CLASSES: dict[type[Scheduler], type[Scheduler]] = {
    CrossbarArbiter: TracedCrossbarArbiter,
    CrosspointScheduler: TracedCrosspointScheduler,
    IterativeScheduler: TracedIterativeScheduler,
}


class TracedInputPort(InputPort):
    """Chip input port emitting a link event per completed packet.

    The receive FSM increments ``packets_received`` deep inside its state
    handlers; rather than shadowing those, the traced port diffs the
    counter once per ``sample`` phase — the single per-cycle entry point.
    """

    _tel: TraceSession
    _tel_label: str
    _tel_rx: Counter
    _tel_seen: int

    def sample(self, cycle: int) -> None:
        super().sample(cycle)
        arrived = self.packets_received - self._tel_seen
        if arrived:
            self._tel_seen = self.packets_received
            self._tel.cycle = cycle
            self._tel_rx.value += arrived
            self._tel.emit("link", self._tel_label, self.port_id, arrived)


class TracedOutputPort(OutputPort):
    """Chip output port emitting a link event per completed transmission."""

    _tel: TraceSession
    _tel_label: str
    _tel_tx: Counter

    def _disconnect(self, cycle: int) -> None:
        before = self.packets_sent
        super()._disconnect(cycle)
        if self.packets_sent != before:
            self._tel.cycle = cycle
            self._tel_tx.value += 1
            self._tel.emit("link", self._tel_label, self.port_id, 1)
