"""Safety properties and reference specifications for the model checker.

The checker (:mod:`repro.analysis.model`) drives every buffer
implementation in lockstep with a tiny *reference specification* defined
here — an obviously-correct queue model with none of the implementation's
machinery (no pointer registers, no cached length registers, no slot
pool).  After every atomic action the implementation's entire observable
surface is compared against the specification's, and the implementation's
own structural invariants are re-checked.  Because the checker explores
*all* interleavings exhaustively, any internal corruption that can ever
become visible (a reordered queue, a leaked slot, a stale register) is
caught on some path.

Three layers of checking live here:

* :class:`SpecBuffer` subclasses — the per-architecture reference
  specifications (FIFO / statically partitioned / dynamically shared).
* :func:`check_conformance` — implementation vs. specification, covering
  acceptance, head-of-line identity, per-queue FIFO order (via packet
  ids), queue lengths, occupancy accounting and retirement bookkeeping.
* :func:`check_pointer_ram` — an independent walk of the DAMQ pointer
  register file that trusts *no* cached register: chain termination
  (acyclicity), unique slot ownership (no double allocation), retired
  slots on no list (no use-after-free) and full slot coverage (no leak).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.core.buffer import SwitchBuffer
from repro.core.linkedlist import NO_SLOT, SlotListManager
from repro.errors import ConfigurationError, InvariantError

__all__ = [
    "PropertyViolation",
    "SpecBuffer",
    "Violation",
    "check_conformance",
    "check_pointer_ram",
    "make_spec",
]


@dataclass(frozen=True)
class Violation:
    """One property violation found by the model checker.

    ``prop`` is a short stable identifier (``"fifo-order"``,
    ``"slot-leak"``, ...) suitable for tests and counterexample replay
    assertions; ``message`` is the human-readable diagnosis.
    """

    prop: str
    message: str
    kind: str = ""

    def render(self) -> str:
        label = f" [{self.kind}]" if self.kind else ""
        return f"{self.prop}{label}: {self.message}"


class PropertyViolation(Exception):
    """Raised by property checks; carries the structured violation.

    The transition system attaches the in-flight action so the search
    engine can append it to the counterexample trace.
    """

    def __init__(
        self,
        violation: Violation,
        action: tuple[Any, ...] | None = None,
    ) -> None:
        super().__init__(violation.render())
        self.violation = violation
        self.action = action


def _fail(prop: str, message: str, kind: str = "") -> PropertyViolation:
    return PropertyViolation(Violation(prop=prop, message=message, kind=kind))


# ----------------------------------------------------------------------
# Reference specifications
# ----------------------------------------------------------------------


class SpecBuffer(ABC):
    """Reference model of one buffer architecture (size-1 packets).

    Keeps per-queue sequences of packet *ids* — nothing else.  The model
    checker renumbers ids canonically after every transition (ids never
    influence buffer behaviour, so this relabeling is a bisimulation),
    which keeps the explored state space finite.
    """

    kind: str = "abstract"
    #: Packets the architecture can source per cycle (SAFC overrides).
    max_serves: int = 1

    def __init__(self, capacity: int, num_outputs: int) -> None:
        self.capacity = capacity
        self.num_outputs = num_outputs
        self._next_id = 0

    # -- write side ----------------------------------------------------

    @abstractmethod
    def can_accept(self, destination: int) -> bool:
        """Whether a one-slot packet for ``destination`` fits now."""

    @abstractmethod
    def push(self, destination: int) -> int:
        """Enqueue a new packet; returns the id assigned to it."""

    # -- read side -----------------------------------------------------

    @abstractmethod
    def peek(self, destination: int) -> int | None:
        """Id of the packet the buffer must offer for ``destination``."""

    @abstractmethod
    def pop(self, destination: int) -> int:
        """Dequeue and return the id :meth:`peek` exposes."""

    @abstractmethod
    def queue_length(self, destination: int) -> int:
        """Expected ``queue_length`` of the implementation."""

    # -- inspection ----------------------------------------------------

    @property
    @abstractmethod
    def occupancy(self) -> int:
        """Total slots in use."""

    @property
    @abstractmethod
    def retired_count(self) -> int:
        """Slots taken out of service by retirement."""

    @property
    def effective_capacity(self) -> int:
        return self.capacity - self.retired_count

    @property
    def free_slots(self) -> int:
        return self.effective_capacity - self.occupancy

    # -- graceful degradation ------------------------------------------

    @abstractmethod
    def can_retire(self) -> bool:
        """Whether ``retire_slot()`` must succeed in this state."""

    @abstractmethod
    def retire(self) -> None:
        """Mirror one successful ``retire_slot()`` call."""

    # -- canonicalization ----------------------------------------------

    @abstractmethod
    def key(self) -> tuple[Any, ...]:
        """Content-level canonical form (hashable, id-free)."""

    @abstractmethod
    def copy(self) -> "SpecBuffer":
        """Independent deep copy."""

    @abstractmethod
    def _sequences(self) -> list[list[int]]:
        """Mutable id sequences in canonical (queue, position) order."""

    def renumber(self) -> dict[int, int]:
        """Relabel all ids canonically; returns the old→new mapping."""
        mapping: dict[int, int] = {}
        for sequence in self._sequences():
            for position, old_id in enumerate(sequence):
                mapping[old_id] = len(mapping)
                sequence[position] = mapping[old_id]
        self._next_id = len(mapping)
        return mapping

    def fresh_id(self) -> int:
        """The id the next pushed packet will receive."""
        return self._next_id

    def _take_id(self) -> int:
        new_id = self._next_id
        self._next_id += 1
        return new_id


class SpecFifo(SpecBuffer):
    """One shared queue; only the head packet is visible."""

    kind = "FIFO"

    def __init__(self, capacity: int, num_outputs: int) -> None:
        super().__init__(capacity, num_outputs)
        self._queue: list[tuple[int, int]] = []  # (packet id, destination)
        self._retired = 0

    def can_accept(self, destination: int) -> bool:
        return self.occupancy + 1 <= self.effective_capacity

    def push(self, destination: int) -> int:
        new_id = self._take_id()
        self._queue.append((new_id, destination))
        return new_id

    def peek(self, destination: int) -> int | None:
        if not self._queue:
            return None
        head_id, head_destination = self._queue[0]
        return head_id if head_destination == destination else None

    def pop(self, destination: int) -> int:
        head_id = self.peek(destination)
        if head_id is None:
            raise _fail("spec-misuse", "pop from a queue with no head", self.kind)
        del self._queue[0]
        return head_id

    def queue_length(self, destination: int) -> int:
        # One queue: the whole occupancy counts toward the head's output.
        if self.peek(destination) is None:
            return 0
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    @property
    def retired_count(self) -> int:
        return self._retired

    def can_retire(self) -> bool:
        return self.effective_capacity > 1 and self.free_slots >= 1

    def retire(self) -> None:
        self._retired += 1

    def key(self) -> tuple[Any, ...]:
        return (
            self.kind,
            self._retired,
            tuple(destination for _, destination in self._queue),
        )

    def copy(self) -> "SpecFifo":
        duplicate = SpecFifo(self.capacity, self.num_outputs)
        duplicate._queue = list(self._queue)
        duplicate._retired = self._retired
        duplicate._next_id = self._next_id
        return duplicate

    def _sequences(self) -> list[list[int]]:
        # Renumbering needs write-through to the (id, destination) queue.
        return [_QueueView(self._queue)]


class _QueueView(list[int]):
    """Write-through id view over a FIFO's ``(id, destination)`` queue."""

    def __init__(self, queue: list[tuple[int, int]]) -> None:
        super().__init__(packet_id for packet_id, _ in queue)
        self._queue = queue

    def __setitem__(self, index: Any, value: Any) -> None:
        super().__setitem__(index, value)
        self._queue[index] = (value, self._queue[index][1])


class _MultiQueueSpec(SpecBuffer):
    """Shared base for the per-output-queue specifications."""

    def __init__(self, capacity: int, num_outputs: int) -> None:
        super().__init__(capacity, num_outputs)
        self._queues: list[list[int]] = [[] for _ in range(num_outputs)]

    def push(self, destination: int) -> int:
        new_id = self._take_id()
        self._queues[destination].append(new_id)
        return new_id

    def peek(self, destination: int) -> int | None:
        queue = self._queues[destination]
        return queue[0] if queue else None

    def pop(self, destination: int) -> int:
        queue = self._queues[destination]
        if not queue:
            raise _fail("spec-misuse", "pop from an empty queue", self.kind)
        return queue.pop(0)

    def queue_length(self, destination: int) -> int:
        return len(self._queues[destination])

    @property
    def occupancy(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def _sequences(self) -> list[list[int]]:
        return self._queues

    def _copy_queues_into(self, duplicate: "_MultiQueueSpec") -> None:
        duplicate._queues = [list(queue) for queue in self._queues]
        duplicate._next_id = self._next_id


class SpecPartitioned(_MultiQueueSpec):
    """SAMQ/SAFC: per-output queues over statically partitioned slots."""

    kind = "SAMQ"

    def __init__(self, capacity: int, num_outputs: int) -> None:
        super().__init__(capacity, num_outputs)
        self.partition_capacity = capacity // num_outputs
        self._partition_retired = [0] * num_outputs

    def effective_partition_capacity(self, destination: int) -> int:
        return self.partition_capacity - self._partition_retired[destination]

    def can_accept(self, destination: int) -> bool:
        return (
            len(self._queues[destination]) + 1
            <= self.effective_partition_capacity(destination)
        )

    @property
    def retired_count(self) -> int:
        return sum(self._partition_retired)

    def _retire_target(self) -> int:
        # Mirrors SamqBuffer.retire_slot(None): the partition with the
        # most slots still in service, ties toward the lowest index.
        return max(
            range(self.num_outputs),
            key=lambda out: (self.effective_partition_capacity(out), -out),
        )

    def can_retire(self) -> bool:
        target = self._retire_target()
        free = self.effective_partition_capacity(target) - len(
            self._queues[target]
        )
        return free >= 1

    def retire(self) -> None:
        self._partition_retired[self._retire_target()] += 1

    def key(self) -> tuple[Any, ...]:
        return (
            self.kind,
            tuple(self._partition_retired),
            tuple(len(queue) for queue in self._queues),
        )

    def copy(self) -> "SpecPartitioned":
        duplicate = type(self)(self.capacity, self.num_outputs)
        self._copy_queues_into(duplicate)
        duplicate._partition_retired = list(self._partition_retired)
        return duplicate


class SpecSafc(SpecPartitioned):
    """SAFC: SAMQ partitioning with one read port per output."""

    kind = "SAFC"

    def __init__(self, capacity: int, num_outputs: int) -> None:
        super().__init__(capacity, num_outputs)
        self.max_serves = num_outputs


class SpecShared(_MultiQueueSpec):
    """DAMQ: per-output queues dynamically sharing the whole slot pool."""

    kind = "DAMQ"

    def __init__(self, capacity: int, num_outputs: int) -> None:
        super().__init__(capacity, num_outputs)
        self._retired = 0

    def can_accept(self, destination: int) -> bool:
        return self.free_slots >= 1

    @property
    def retired_count(self) -> int:
        return self._retired

    def can_retire(self) -> bool:
        # SlotListManager.retire_slot: needs a free slot and must not
        # consume the last usable one.
        return self.free_slots >= 1 and self.capacity - self._retired > 1

    def retire(self) -> None:
        self._retired += 1

    def key(self) -> tuple[Any, ...]:
        return (
            self.kind,
            self._retired,
            tuple(len(queue) for queue in self._queues),
        )

    def copy(self) -> "SpecShared":
        duplicate = SpecShared(self.capacity, self.num_outputs)
        self._copy_queues_into(duplicate)
        duplicate._retired = self._retired
        return duplicate


class SpecCrosspoint(SpecPartitioned):
    """CQ: dedicated per-crosspoint FIFOs, one read port per crosspoint.

    The slot algebra is SAMQ's (static partitioning); the read capability
    is SAFC's (every queue drainable in the same cycle).  What differs is
    the scheduling discipline around it, which the buffer specification
    does not model.
    """

    kind = "CQ"

    def __init__(self, capacity: int, num_outputs: int) -> None:
        super().__init__(capacity, num_outputs)
        self.max_serves = num_outputs


class SpecDamqReserved(_MultiQueueSpec):
    """DAMQ-RSV: dynamic sharing of the residual pool over per-output quotas.

    Mirrors :class:`repro.arch.damq_reserved.DamqReservedBuffer` with the
    default one-slot reservation: each output may always fill ``reserved``
    slots; demand beyond the quota is charged to a shared pool of
    ``capacity - num_outputs * reserved`` slots, shrunk by retirement.
    """

    kind = "DAMQ-RSV"

    def __init__(
        self, capacity: int, num_outputs: int, reserved: int = 1
    ) -> None:
        super().__init__(capacity, num_outputs)
        if capacity < num_outputs * reserved:
            raise ConfigurationError(
                f"capacity {capacity} cannot reserve {reserved} slot(s) for "
                f"each of {num_outputs} outputs"
            )
        self.reserved = reserved
        self._retired = 0

    @property
    def _shared_capacity(self) -> int:
        return self.capacity - self.num_outputs * self.reserved - self._retired

    @property
    def _shared_used(self) -> int:
        quota = self.reserved
        return sum(max(0, len(queue) - quota) for queue in self._queues)

    def can_accept(self, destination: int) -> bool:
        length = len(self._queues[destination])
        quota = self.reserved
        delta = max(0, length + 1 - quota) - max(0, length - quota)
        return self._shared_used + delta <= self._shared_capacity

    @property
    def retired_count(self) -> int:
        return self._retired

    def can_retire(self) -> bool:
        # DamqReservedBuffer.retire_slot: the shared pool must have a
        # spare slot (which also implies the underlying free list does).
        return self._shared_capacity - self._shared_used >= 1

    def retire(self) -> None:
        self._retired += 1

    def key(self) -> tuple[Any, ...]:
        return (
            self.kind,
            self._retired,
            tuple(len(queue) for queue in self._queues),
        )

    def copy(self) -> "SpecDamqReserved":
        duplicate = SpecDamqReserved(
            self.capacity, self.num_outputs, self.reserved
        )
        self._copy_queues_into(duplicate)
        duplicate._retired = self._retired
        return duplicate


_SPEC_TYPES: dict[str, type[SpecBuffer]] = {
    "FIFO": SpecFifo,
    "SAMQ": SpecPartitioned,
    "SAFC": SpecSafc,
    "DAMQ": SpecShared,
    "DAMQ-RSV": SpecDamqReserved,
    "CQ": SpecCrosspoint,
}


def make_spec(kind: str, capacity: int, num_outputs: int) -> SpecBuffer:
    """Build the reference specification for one architecture."""
    try:
        spec_class = _SPEC_TYPES[kind.upper()]
    except KeyError:
        raise ConfigurationError(
            f"no specification for buffer kind {kind!r}"
        ) from None
    return spec_class(capacity, num_outputs)


# ----------------------------------------------------------------------
# Per-state checks
# ----------------------------------------------------------------------


def expected_observable(spec: SpecBuffer) -> dict[str, Any]:
    """The observable state a conforming implementation must exhibit."""
    return {
        "kind": spec.kind,
        "occupancy": spec.occupancy,
        "retired": spec.retired_count,
        "accepts": [
            spec.can_accept(destination)
            for destination in range(spec.num_outputs)
        ],
        "heads": [
            spec.peek(destination) for destination in range(spec.num_outputs)
        ],
        "lengths": [
            spec.queue_length(destination)
            for destination in range(spec.num_outputs)
        ],
    }


def check_conformance(implementation: SwitchBuffer, spec: SpecBuffer) -> None:
    """Implementation ≍ specification on the whole observable surface.

    Raises :class:`PropertyViolation` on the first divergence.  Also
    re-runs the implementation's own ``check_invariants`` (converting an
    :class:`InvariantError` into a violation) and validates the live
    length-register row and the aggregate occupancy bound.
    """
    kind = spec.kind
    expected = expected_observable(spec)
    actual = implementation.observable_state()
    if actual != expected:
        differing = sorted(
            field
            for field in expected
            if actual.get(field) != expected[field]
        )
        raise _fail(
            "conformance",
            f"observable state diverges from specification on "
            f"{differing}: expected {expected}, got {actual}",
            kind,
        )
    live_row = list(implementation.queue_lengths())
    if live_row != expected["lengths"]:
        raise _fail(
            "length-registers",
            f"live queue_lengths() row {live_row} != per-output reads "
            f"{expected['lengths']}",
            kind,
        )
    if implementation.occupancy > implementation.effective_capacity:
        raise _fail(
            "occupancy-bound",
            f"occupancy {implementation.occupancy} exceeds effective "
            f"capacity {implementation.effective_capacity}",
            kind,
        )
    stored = implementation.packets()
    if len(stored) != spec.occupancy:
        raise _fail(
            "packet-accounting",
            f"buffer reports {len(stored)} stored packets, specification "
            f"holds {spec.occupancy}",
            kind,
        )
    try:
        implementation.check_invariants()
    except InvariantError as error:
        raise _fail("invariants", str(error), kind) from error


def check_pointer_ram(manager: SlotListManager) -> None:
    """Independent structural walk of the DAMQ pointer register file.

    Unlike ``SlotListManager.check_invariants`` (which walks exactly
    ``_length`` steps and therefore trusts the length registers), this
    check follows raw pointer registers until a null pointer or a step
    bound, so it detects cycles, double-linked slots, stale registers on
    empty lists, use-after-free of retired slots and leaked slots even
    when every cached register is consistent with the corruption.
    """
    owner: dict[int, str] = {}

    def walk(start: int, label: str) -> None:
        slot = start
        steps = 0
        while slot != NO_SLOT:
            if steps > manager.num_slots:
                raise _fail(
                    "pointer-cycle",
                    f"{label} chain does not terminate within "
                    f"{manager.num_slots} steps",
                    "DAMQ",
                )
            if not 0 <= slot < manager.num_slots:
                raise _fail(
                    "pointer-range",
                    f"{label} chain points at slot {slot}, outside "
                    f"[0, {manager.num_slots})",
                    "DAMQ",
                )
            if slot in owner:
                raise _fail(
                    "double-allocation",
                    f"slot {slot} linked on both {owner[slot]} and {label}",
                    "DAMQ",
                )
            owner[slot] = label
            slot = manager._next[slot]
            steps += 1

    for list_id in range(manager.num_lists):
        if manager._length[list_id] > 0:
            walk(manager._head[list_id], f"list {list_id}")
        elif (
            manager._head[list_id] != NO_SLOT
            or manager._tail[list_id] != NO_SLOT
        ):
            raise _fail(
                "stale-register",
                f"empty list {list_id} still has head/tail registers "
                f"({manager._head[list_id]}, {manager._tail[list_id]})",
                "DAMQ",
            )
    if manager._free_count > 0:
        walk(manager._free_head, "free list")
    retired = manager.retired_slots()
    for slot in retired:
        if slot in owner:
            raise _fail(
                "use-after-free",
                f"retired slot {slot} still linked on {owner[slot]}",
                "DAMQ",
            )
    missing = [
        slot
        for slot in range(manager.num_slots)
        if slot not in owner and slot not in manager._retired
    ]
    if missing:
        raise _fail(
            "slot-leak",
            f"slots {missing} unreachable from every list",
            "DAMQ",
        )
