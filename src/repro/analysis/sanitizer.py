"""Runtime "hardware sanitizer" for the buffer models (ASan/TSan spirit).

The Section 3.1 micro-architecture constrains what the DAMQ buffer's
register file can physically do in one clock: the slot pool has **one
write port** and a bounded number of read ports (one for FIFO/SAMQ/DAMQ,
one per output for SAFC), and every slot is threaded on **exactly one**
linked list (a destination list, the free list, or — after a hard fault —
retired limbo).  A modeling bug that violates either constraint produces
results no chip could, while still looking statistically plausible.

This module is the opt-in instrumentation layer that checks those
constraints while a simulation runs:

* **Slot lifecycle** — :class:`SanitizedSlotListManager` tracks a state
  machine per slot (free / in-use / retired) across the choke points of
  the register-file model and reports *use-after-free* (the free list
  handed out a slot still in use) and *double-free* (a slot already free
  appended to the free list again), each with the slot's recent operation
  trace.
* **Pointer RAM structure** — :meth:`SanitizedSlotListManager.scan` walks
  every head register through the pointer RAM and reports *pointer
  cycles*, *wild pointers* (out-of-range), *cross-links* (one slot on two
  lists) and *pointer leaks* (unreachable live slots).
* **Port bandwidth** — the sanitized buffer subclasses count enqueues and
  dequeues per simulated cycle and report *write-port-overrun* /
  *read-port-overrun* the moment a buffer performs more RAM accesses in
  one network cycle than its port budget allows.  (At the packet
  granularity of the network model, the paper's 12-clock network cycle —
  8 transmit + 4 route — admits at most one packet through the single
  write port and one per read port, which is the budget enforced here.)

Instrumentation is guarded behind subclasses installed by a factory
(:meth:`HardwareSanitizer.wrap_factory`), never per-call branches: with
the sanitizer off, the simulator constructs the plain classes and the hot
path is byte-for-byte the PR 2 code.  The sanitizer only *observes* —
it draws nothing from any RNG and never changes model behaviour, so
sanitized runs stay bit-identical to plain ones.

Enable it with the environment variable ``REPRO_SANITIZE=1`` (honoured by
:func:`repro.network.simulator.simulate` and the experiment stack,
including parallel workers) or explicitly via
``OmegaNetworkSimulator``-compatible :class:`SanitizedOmegaNetworkSimulator`
or ``Switch(..., sanitizer=HardwareSanitizer())``.
"""

from __future__ import annotations

import os
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.arch.crosspoint import CrosspointBuffer
from repro.arch.damq_reserved import DamqReservedBuffer
from repro.core.buffer import SwitchBuffer
from repro.core.damq import DamqBuffer
from repro.core.fifo import FifoBuffer
from repro.core.linkedlist import NO_SLOT, SlotListManager
from repro.core.packet import Packet
from repro.core.safc import SafcBuffer
from repro.core.samq import SamqBuffer
from repro.errors import ConfigurationError, SanitizerError
from repro.network.metrics import SimulationResult
from repro.network.simulator import NetworkConfig, OmegaNetworkSimulator

__all__ = [
    "HardwareSanitizer",
    "SanitizedCrosspointBuffer",
    "SanitizedDamqBuffer",
    "SanitizedDamqReservedBuffer",
    "SanitizedFifoBuffer",
    "SanitizedOmegaNetworkSimulator",
    "SanitizedSafcBuffer",
    "SanitizedSamqBuffer",
    "SanitizedSlotListManager",
    "Violation",
    "sanitize_enabled",
]

#: Environment variable that switches the sanitizer on for ``simulate()``.
SANITIZE_ENV = "REPRO_SANITIZE"

#: Write ports per buffer pool (Section 3.1: one write per clock).
WRITE_PORTS = 1

#: Recent operations kept per slot / per buffer for violation traces.
TRACE_DEPTH = 8

# Slot lifecycle states tracked by the sanitized slot manager.
_FREE, _IN_USE, _RETIRED = 0, 1, 2
_STATE_NAMES = {_FREE: "free", _IN_USE: "in-use", _RETIRED: "retired"}


def sanitize_enabled(env: str | None = None) -> bool:
    """Whether ``REPRO_SANITIZE`` asks for a sanitized run.

    Any value other than empty/``0`` enables the sanitizer; ``env``
    overrides the environment for tests.
    """
    value = os.environ.get(SANITIZE_ENV, "") if env is None else env
    return value not in ("", "0")


@dataclass(frozen=True)
class Violation:
    """One detected hardware-model violation.

    ``trace`` holds the most recent operations on the offending slot or
    buffer (oldest first), each formatted as ``"cycle N: op"``.
    """

    kind: str
    buffer: str
    cycle: int
    message: str
    slot: int | None = None
    trace: tuple[str, ...] = ()

    def render(self) -> str:
        """One-line human-readable form."""
        where = f" slot {self.slot}" if self.slot is not None else ""
        text = (
            f"[{self.kind}] {self.buffer}{where} @cycle {self.cycle}: "
            f"{self.message}"
        )
        if self.trace:
            text += "\n    trace: " + "; ".join(self.trace)
        return text

    def as_dict(self) -> dict[str, Any]:
        """JSON-able representation."""
        return {
            "kind": self.kind,
            "buffer": self.buffer,
            "cycle": self.cycle,
            "slot": self.slot,
            "message": self.message,
            "trace": list(self.trace),
        }


class HardwareSanitizer:
    """Collects violations from every sanitized component of one run.

    The sanitizer never raises from inside the model — it records and
    keeps going, exactly like ASan's ``halt_on_error=0`` mode — so a
    single corruption produces a full report instead of a stack trace.
    Callers inspect :attr:`violations` (or :meth:`assert_clean`, which
    raises :class:`~repro.errors.SanitizerError` listing everything).
    """

    def __init__(self, max_violations: int = 1000) -> None:
        if max_violations < 1:
            raise ConfigurationError("sanitizer needs room for one violation")
        #: Simulated cycle stamp; advanced by the simulator each step.
        self.cycle = 0
        self.violations: list[Violation] = []
        #: Violations not recorded because ``max_violations`` was reached.
        self.dropped = 0
        self._max_violations = max_violations
        self._buffers: list[SwitchBuffer] = []
        self._managers: list["SanitizedSlotListManager"] = []

    # -- recording -------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        """Advance the cycle stamp (call once per simulated cycle)."""
        self.cycle = cycle

    def record(
        self,
        kind: str,
        buffer: str,
        message: str,
        slot: int | None = None,
        trace: tuple[str, ...] = (),
    ) -> None:
        """Record one violation (dropped beyond ``max_violations``)."""
        if len(self.violations) >= self._max_violations:
            self.dropped += 1
            return
        self.violations.append(
            Violation(
                kind=kind,
                buffer=buffer,
                cycle=self.cycle,
                message=message,
                slot=slot,
                trace=trace,
            )
        )

    # -- component adoption ----------------------------------------------

    def adopt_buffer(self, buffer: SwitchBuffer, label: str | None = None) -> SwitchBuffer:
        """Install the sanitized subclass onto a freshly built buffer.

        The swap is class-level (``__class__`` reassignment onto a
        subclass adding only bookkeeping attributes), so the buffer keeps
        its exact state and the plain classes stay untouched.
        """
        sanitized_class = _SANITIZED_BUFFER_CLASSES.get(type(buffer))
        if sanitized_class is None:
            raise ConfigurationError(
                f"cannot sanitize buffer of type {type(buffer).__name__}; "
                f"expected one of "
                f"{sorted(cls.__name__ for cls in _SANITIZED_BUFFER_CLASSES)}"
            )
        buffer.__class__ = sanitized_class
        buffer._san = self  # type: ignore[attr-defined]
        buffer._san_label = label or f"buffer{len(self._buffers)}"  # type: ignore[attr-defined]
        buffer._san_stamp = -1  # type: ignore[attr-defined]
        buffer._san_writes = 0  # type: ignore[attr-defined]
        buffer._san_reads = 0  # type: ignore[attr-defined]
        buffer._san_trace = deque(maxlen=TRACE_DEPTH)  # type: ignore[attr-defined]
        if isinstance(buffer, DamqBuffer):
            SanitizedSlotListManager.adopt(
                buffer._lists, self, buffer._san_label  # type: ignore[attr-defined]
            )
        self._buffers.append(buffer)
        return buffer

    def wrap_factory(
        self, factory: Callable[[int], SwitchBuffer]
    ) -> Callable[[int], SwitchBuffer]:
        """Wrap a buffer factory so every built buffer is sanitized."""

        def sanitized_factory(num_outputs: int) -> SwitchBuffer:
            return self.adopt_buffer(factory(num_outputs))

        return sanitized_factory

    def adopt_slot_manager(
        self, manager: SlotListManager, label: str
    ) -> "SanitizedSlotListManager":
        """Sanitize a standalone slot manager (e.g. the chip model's)."""
        return SanitizedSlotListManager.adopt(manager, self, label)

    def set_label(self, buffer: SwitchBuffer, label: str) -> None:
        """Give a registered buffer a descriptive label for reports."""
        buffer._san_label = label  # type: ignore[attr-defined]
        if isinstance(buffer, DamqBuffer):
            buffer._lists._san_label = label  # type: ignore[attr-defined]

    # -- structural scans --------------------------------------------------

    def scan(self) -> int:
        """Deep pointer-RAM scan of every adopted slot manager.

        Walks each head register through the pointer RAM looking for
        cycles, wild pointers, cross-links and leaks.  Returns the number
        of new violations recorded.
        """
        before = len(self.violations) + self.dropped
        for manager in self._managers:
            manager.scan()
        return len(self.violations) + self.dropped - before

    # -- reporting ---------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True when no violation has been recorded."""
        return not self.violations and not self.dropped

    def report(self) -> dict[str, Any]:
        """JSON-able summary of the run's violations."""
        return {
            "clean": self.clean,
            "violations": [violation.as_dict() for violation in self.violations],
            "dropped": self.dropped,
            "buffers": len(self._buffers),
        }

    def render(self) -> str:
        """Human-readable report."""
        if self.clean:
            return (
                f"sanitizer clean: 0 violations across "
                f"{len(self._buffers)} buffer(s)"
            )
        lines = [violation.render() for violation in self.violations]
        lines.append(
            f"{len(self.violations)} violation(s)"
            + (f" (+{self.dropped} dropped)" if self.dropped else "")
        )
        return "\n".join(lines)

    def assert_clean(self) -> None:
        """Raise :class:`~repro.errors.SanitizerError` on any violation."""
        if not self.clean:
            raise SanitizerError(self.render())


class SanitizedSlotListManager(SlotListManager):
    """Slot manager with a lifecycle state machine bolted on.

    Installed over a live :class:`SlotListManager` by :meth:`adopt`; the
    overrides sit on the three choke points every slot movement passes
    through (``allocate``, ``_append_free``, ``retire_slot``), so the
    datapath operations themselves stay the inherited, hardware-faithful
    code.
    """

    # Adoption-time attributes (no __init__ of its own: instances are
    # created by __class__ reassignment, preserving live state).
    _san: HardwareSanitizer
    _san_label: str
    _slot_state: list[int]
    _slot_history: list[deque[str]]

    @classmethod
    def adopt(
        cls,
        manager: SlotListManager,
        sanitizer: HardwareSanitizer,
        label: str,
    ) -> "SanitizedSlotListManager":
        """Swap a live manager's class and derive its slot states."""
        if isinstance(manager, cls):
            manager._san = sanitizer
            manager._san_label = label
            return manager
        if type(manager) is not SlotListManager:
            raise ConfigurationError(
                f"cannot sanitize slot manager of type {type(manager).__name__}"
            )
        manager.__class__ = cls
        adopted: "SanitizedSlotListManager" = manager  # type: ignore[assignment]
        adopted._san = sanitizer
        adopted._san_label = label
        state = [_IN_USE] * adopted.num_slots
        for slot in adopted.free_slots():
            state[slot] = _FREE
        for slot in adopted.retired_slots():
            state[slot] = _RETIRED
        adopted._slot_state = state
        adopted._slot_history = [
            deque(maxlen=TRACE_DEPTH) for _ in range(adopted.num_slots)
        ]
        sanitizer._managers.append(adopted)
        return adopted

    # -- tracing helpers ---------------------------------------------------

    def _note(self, slot: int, operation: str) -> None:
        self._slot_history[slot].append(
            f"cycle {self._san.cycle}: {operation}"
        )

    def _trace(self, slot: int) -> tuple[str, ...]:
        return tuple(self._slot_history[slot])

    # -- instrumented choke points ----------------------------------------

    def allocate(self, list_id: int) -> int:
        slot = super().allocate(list_id)
        if self._slot_state[slot] != _FREE:
            self._note(slot, f"allocate(list={list_id}) [VIOLATION]")
            self._san.record(
                "use-after-free",
                self._san_label,
                f"free list handed out slot {slot} while it is "
                f"{_STATE_NAMES[self._slot_state[slot]]}: the previous "
                f"owner's data would be clobbered",
                slot=slot,
                trace=self._trace(slot),
            )
        else:
            self._note(slot, f"allocate(list={list_id})")
        self._slot_state[slot] = _IN_USE
        return slot

    def _append_free(self, slot: int) -> None:
        if 0 <= slot < self.num_slots:
            if self._slot_state[slot] == _FREE:
                self._note(slot, "free [VIOLATION]")
                self._san.record(
                    "double-free",
                    self._san_label,
                    f"slot {slot} appended to the free list while already "
                    f"free: the free list now aliases itself",
                    slot=slot,
                    trace=self._trace(slot),
                )
            else:
                self._note(slot, "free")
            self._slot_state[slot] = _FREE
        super()._append_free(slot)

    def retire_slot(self, slot: int | None = None) -> int:
        retired = super().retire_slot(slot)
        self._note(retired, "retire")
        self._slot_state[retired] = _RETIRED
        return retired

    def restore_state(self, state: dict[str, Any]) -> None:
        """Restore the register file, then re-derive the slot states.

        Checkpoint snapshots are sanitizer-agnostic (they carry only the
        hardware registers), so after the inherited restore the lifecycle
        state machine is rebuilt exactly as :meth:`adopt` builds it.
        """
        super().restore_state(state)
        derived = [_IN_USE] * self.num_slots
        for slot in self.free_slots():
            derived[slot] = _FREE
        for slot in self.retired_slots():
            derived[slot] = _RETIRED
        self._slot_state = derived

    # -- structural scan ---------------------------------------------------

    def scan(self) -> None:
        """Walk every head register through the pointer RAM.

        Reports pointer cycles, wild (out-of-range) pointers, cross-links
        (a slot reachable from two heads) and leaks (a live slot no head
        reaches).  Read-only: the walk never mutates the register file.
        """
        reached: dict[int, str] = {}
        for list_id in range(self.num_lists):
            start = self._head[list_id] if self._length[list_id] else NO_SLOT
            self._walk(f"list {list_id}", start, reached)
        free_start = self._free_head if self._free_count else NO_SLOT
        self._walk("free list", free_start, reached)
        for slot in range(self.num_slots):
            if slot not in reached and self._slot_state[slot] != _RETIRED:
                self._san.record(
                    "pointer-leak",
                    self._san_label,
                    f"slot {slot} ({_STATE_NAMES[self._slot_state[slot]]}) "
                    f"is unreachable from every head register: its storage "
                    f"is lost to the pool",
                    slot=slot,
                    trace=self._trace(slot),
                )

    def _walk(self, chain: str, start: int, reached: dict[int, str]) -> None:
        seen: set[int] = set()
        slot = start
        while slot != NO_SLOT:
            if not 0 <= slot < self.num_slots:
                self._san.record(
                    "wild-pointer",
                    self._san_label,
                    f"{chain} points at slot {slot}, outside the "
                    f"{self.num_slots}-slot pool",
                    slot=None,
                )
                return
            if slot in seen:
                self._san.record(
                    "pointer-cycle",
                    self._san_label,
                    f"{chain} loops back to slot {slot}: a transmitter "
                    f"draining this list would never terminate",
                    slot=slot,
                    trace=self._trace(slot),
                )
                return
            if slot in reached:
                self._san.record(
                    "cross-link",
                    self._san_label,
                    f"slot {slot} is reachable from both {reached[slot]} "
                    f"and {chain}",
                    slot=slot,
                    trace=self._trace(slot),
                )
                return
            seen.add(slot)
            reached[slot] = chain
            slot = self._next[slot]


class _PortAccounting:
    """Per-cycle port-bandwidth accounting shared by the four buffers.

    Counts *successful* enqueues and dequeues per simulated cycle against
    the Section 3.1 budget: one packet through the single write port, and
    ``max_reads_per_cycle`` dequeues (one per read port).  The counters
    reset lazily on the first access of a new cycle, so idle buffers cost
    nothing.

    This is a *trailing* mixin (``class SanitizedX(X, _PortAccounting)``):
    CPython's ``__class__`` reassignment — how the sanitizer adopts a
    freshly built buffer — requires the sanitized class to have its plain
    buffer class as leading base, so the overrides live on the concrete
    subclasses and call these helpers explicitly.
    """

    _san: HardwareSanitizer
    _san_label: str
    _san_stamp: int
    _san_writes: int
    _san_reads: int
    _san_trace: deque[str]

    def _san_tick(self) -> None:
        sanitizer = self._san
        if sanitizer.cycle != self._san_stamp:
            self._san_stamp = sanitizer.cycle
            self._san_writes = 0
            self._san_reads = 0

    def _san_after_push(self, packet: Packet, destination: int) -> None:
        self._san_tick()
        self._san_writes += 1
        self._san_trace.append(
            f"cycle {self._san.cycle}: push(dest={destination}, "
            f"size={packet.size})"
        )
        if self._san_writes > WRITE_PORTS:
            self._san.record(
                "write-port-overrun",
                self._san_label,
                f"{self._san_writes} enqueues in one network cycle exceed "
                f"the buffer pool's single write port",
                trace=tuple(self._san_trace),
            )

    def _san_after_pop(self, packet: Packet, destination: int) -> None:
        self._san_tick()
        self._san_reads += 1
        self._san_trace.append(
            f"cycle {self._san.cycle}: pop(dest={destination}, "
            f"size={packet.size})"
        )
        budget: int = self.max_reads_per_cycle  # type: ignore[attr-defined]
        if self._san_reads > budget:
            self._san.record(
                "read-port-overrun",
                self._san_label,
                f"{self._san_reads} dequeues in one network cycle exceed "
                f"the buffer's {budget} read port(s)",
                trace=tuple(self._san_trace),
            )


class SanitizedFifoBuffer(FifoBuffer, _PortAccounting):
    """FIFO buffer with port-bandwidth accounting."""

    def push(self, packet: Packet, destination: int) -> None:
        super().push(packet, destination)
        self._san_after_push(packet, destination)

    def pop(self, destination: int) -> Packet:
        packet = super().pop(destination)
        self._san_after_pop(packet, destination)
        return packet


class SanitizedSamqBuffer(SamqBuffer, _PortAccounting):
    """SAMQ buffer with port-bandwidth accounting."""

    def push(self, packet: Packet, destination: int) -> None:
        super().push(packet, destination)
        self._san_after_push(packet, destination)

    def pop(self, destination: int) -> Packet:
        packet = super().pop(destination)
        self._san_after_pop(packet, destination)
        return packet


class SanitizedSafcBuffer(SafcBuffer, _PortAccounting):
    """SAFC buffer with port-bandwidth accounting (one read per output)."""

    def push(self, packet: Packet, destination: int) -> None:
        super().push(packet, destination)
        self._san_after_push(packet, destination)

    def pop(self, destination: int) -> Packet:
        packet = super().pop(destination)
        self._san_after_pop(packet, destination)
        return packet


class SanitizedDamqBuffer(DamqBuffer, _PortAccounting):
    """DAMQ buffer with port accounting and a sanitized slot manager."""

    def push(self, packet: Packet, destination: int) -> None:
        super().push(packet, destination)
        self._san_after_push(packet, destination)

    def pop(self, destination: int) -> Packet:
        packet = super().pop(destination)
        self._san_after_pop(packet, destination)
        return packet


class SanitizedDamqReservedBuffer(DamqReservedBuffer, _PortAccounting):
    """Reserved-slot DAMQ with port accounting and a sanitized slot manager.

    The inherited ``isinstance(buffer, DamqBuffer)`` adoption path also
    wraps its (plain) :class:`SlotListManager`, so the pointer-RAM checks
    cover the reserved variant for free.
    """

    def push(self, packet: Packet, destination: int) -> None:
        super().push(packet, destination)
        self._san_after_push(packet, destination)

    def pop(self, destination: int) -> Packet:
        packet = super().pop(destination)
        self._san_after_pop(packet, destination)
        return packet


class SanitizedCrosspointBuffer(CrosspointBuffer, _PortAccounting):
    """CQ buffer with port accounting (one read port per crosspoint)."""

    def push(self, packet: Packet, destination: int) -> None:
        super().push(packet, destination)
        self._san_after_push(packet, destination)

    def pop(self, destination: int) -> Packet:
        packet = super().pop(destination)
        self._san_after_pop(packet, destination)
        return packet


#: Plain class -> sanitized subclass, for ``__class__`` adoption.
_SANITIZED_BUFFER_CLASSES: dict[type[SwitchBuffer], type[SwitchBuffer]] = {
    FifoBuffer: SanitizedFifoBuffer,
    SamqBuffer: SanitizedSamqBuffer,
    SafcBuffer: SanitizedSafcBuffer,
    DamqBuffer: SanitizedDamqBuffer,
    DamqReservedBuffer: SanitizedDamqReservedBuffer,
    CrosspointBuffer: SanitizedCrosspointBuffer,
}


class SanitizedOmegaNetworkSimulator(OmegaNetworkSimulator):
    """Omega-network simulator with every input buffer sanitized.

    Drop-in replacement for :class:`OmegaNetworkSimulator`: identical
    configuration, identical results (the sanitizer observes, never
    perturbs — it draws nothing from any RNG), plus a
    :attr:`sanitizer` whose report covers the whole run.  The final
    :meth:`run` performs a deep pointer-RAM scan before returning.
    """

    def __init__(
        self,
        config: NetworkConfig,
        sanitizer: HardwareSanitizer | None = None,
    ) -> None:
        self.sanitizer = sanitizer if sanitizer is not None else HardwareSanitizer()
        super().__init__(config)
        for stage, row in enumerate(self.switches):
            for index, switch in enumerate(row):
                for port, buffer in enumerate(switch.buffers):
                    self.sanitizer.set_label(
                        buffer, f"stage{stage}.switch{index}.in{port}"
                    )

    def _make_buffer_factory(
        self, config: NetworkConfig
    ) -> Callable[[int], SwitchBuffer]:
        return self.sanitizer.wrap_factory(super()._make_buffer_factory(config))

    def step(self) -> None:
        self.sanitizer.begin_cycle(self.cycle)
        super().step()

    def run(
        self,
        warmup_cycles: int = 2000,
        measure_cycles: int = 10000,
        checkpoint_every: int | None = None,
        checkpoint_path: "str | Path | None" = None,
    ) -> "SimulationResult":
        result = super().run(
            warmup_cycles,
            measure_cycles,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
        )
        self.sanitizer.scan()
        return result
