"""Command-line entry point: ``python -m repro.analysis`` / ``repro-lint``.

Sub-commands
------------
``lint [paths...]``
    Run the REPxxx linter over the given files/directories (default:
    ``src tests``).  ``--format json`` emits the versioned report
    consumed by CI annotations.  Exits non-zero on any finding.

``rules``
    Print every rule's code and normative description.

``sanitize``
    Run a short, sanitizer-enabled Omega simulation (the CI smoke run)
    and print the violation report.  Exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lint import RULES, lint_paths
from repro.analysis.report import render_json, render_text

__all__ = ["main"]


def _cmd_lint(args: argparse.Namespace) -> int:
    findings, checked = lint_paths(args.paths)
    if args.select:
        wanted = {code.strip().upper() for code in args.select.split(",")}
        findings = [finding for finding in findings if finding.code in wanted]
    if args.format == "json":
        print(render_json(findings, checked))
    else:
        print(render_text(findings, checked))
    return 1 if findings else 0


def _cmd_rules(_args: argparse.Namespace) -> int:
    for code in sorted(RULES):
        rule = RULES[code]
        print(f"{code}: {rule.summary()}")
        for line in rule.doc().splitlines()[1:]:
            print(f"    {line}" if line else "")
        print()
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    # Imported here so plain lint runs never pull in numpy/the simulator.
    from repro.analysis.sanitizer import SanitizedOmegaNetworkSimulator
    from repro.network.simulator import NetworkConfig

    config = NetworkConfig(
        num_ports=args.ports,
        radix=4,
        buffer_kind=args.buffer,
        slots_per_buffer=4,
        offered_load=args.load,
        seed=args.seed,
    )
    simulator = SanitizedOmegaNetworkSimulator(config)
    result = simulator.run(
        warmup_cycles=args.warmup, measure_cycles=args.cycles
    )
    print(
        f"simulated {args.buffer} {args.ports}x{args.ports} omega network: "
        f"{result.meters.delivered} delivered over {args.cycles} cycles"
    )
    print(simulator.sanitizer.render())
    return 0 if simulator.sanitizer.clean else 1


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a sub-command."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis and hardware-model sanitizing for the "
        "repro codebase.",
    )
    subparsers = parser.add_subparsers(dest="command")

    lint_parser = subparsers.add_parser(
        "lint", help="run the REPxxx determinism linter"
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint_parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to report (default: all)",
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    rules_parser = subparsers.add_parser(
        "rules", help="describe every lint rule"
    )
    rules_parser.set_defaults(handler=_cmd_rules)

    sanitize_parser = subparsers.add_parser(
        "sanitize",
        help="run a short sanitizer-enabled Omega simulation (CI smoke)",
    )
    sanitize_parser.add_argument("--buffer", default="DAMQ")
    sanitize_parser.add_argument("--ports", type=int, default=16)
    sanitize_parser.add_argument("--load", type=float, default=0.6)
    sanitize_parser.add_argument("--seed", type=int, default=1988)
    sanitize_parser.add_argument("--warmup", type=int, default=100)
    sanitize_parser.add_argument("--cycles", type=int, default=400)
    sanitize_parser.set_defaults(handler=_cmd_sanitize)

    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    return int(args.handler(args))


if __name__ == "__main__":
    sys.exit(main())
