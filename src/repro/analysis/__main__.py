"""Command-line entry point: ``python -m repro.analysis`` / ``repro-lint``.

Sub-commands
------------
``lint [paths...]``
    Run the REPxxx linter over the given files/directories (default:
    ``src tests``).  ``--format json`` emits the versioned report
    consumed by CI annotations.  Exits non-zero on any finding.

``rules``
    Print every rule's code and normative description.

``sanitize``
    Run a short, sanitizer-enabled Omega simulation (the CI smoke run)
    and print the violation report.  Exits non-zero on any violation.

``model``
    Bounded model checking: exhaustively explore all arrival × grant ×
    departure interleavings of the selected buffer architectures at
    small parameters against their reference specifications, check the
    refinement properties, optionally cross-validate the explored state
    graph against :mod:`repro.markov`, and (``--self-test``) prove the
    checker catches planted bugs.  Also installed as ``repro-verify``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lint import RULES, lint_paths
from repro.analysis.report import render_github, render_json, render_text

__all__ = ["main", "verify_main"]


def _cmd_lint(args: argparse.Namespace) -> int:
    findings, checked = lint_paths(args.paths)
    if args.select:
        wanted = {code.strip().upper() for code in args.select.split(",")}
        findings = [finding for finding in findings if finding.code in wanted]
    if args.format == "json":
        print(render_json(findings, checked))
    elif args.format == "github":
        print(render_github(findings, checked))
    else:
        print(render_text(findings, checked))
    return 1 if findings else 0


def _cmd_rules(_args: argparse.Namespace) -> int:
    for code in sorted(RULES):
        rule = RULES[code]
        print(f"{code}: {rule.summary()}")
        for line in rule.doc().splitlines()[1:]:
            print(f"    {line}" if line else "")
        print()
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    # Imported here so plain lint runs never pull in numpy/the simulator.
    from repro.analysis.sanitizer import SanitizedOmegaNetworkSimulator
    from repro.network.simulator import NetworkConfig

    config = NetworkConfig(
        num_ports=args.ports,
        radix=4,
        buffer_kind=args.buffer,
        slots_per_buffer=4,
        offered_load=args.load,
        seed=args.seed,
    )
    simulator = SanitizedOmegaNetworkSimulator(config)
    result = simulator.run(
        warmup_cycles=args.warmup, measure_cycles=args.cycles
    )
    print(
        f"simulated {args.buffer} {args.ports}x{args.ports} omega network: "
        f"{result.meters.delivered} delivered over {args.cycles} cycles"
    )
    print(simulator.sanitizer.render())
    return 0 if simulator.sanitizer.clean else 1


def _export_counterexample(
    result: "object", directory: str
) -> list[str]:
    """Write the trace JSON, replay script and waveforms; return paths."""
    import json
    from pathlib import Path

    counterexample = result.counterexample  # type: ignore[attr-defined]
    if counterexample is None:
        return []
    config = result.config  # type: ignore[attr-defined]
    basename = f"cex-{config['system']}-{config['kind'].lower()}"
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    json_path = target / f"{basename}.json"
    json_path.write_text(
        json.dumps(counterexample.to_dict(), indent=2, sort_keys=True)
        + "\n"
    )
    script_path = target / f"{basename}.py"
    script_path.write_text(counterexample.render_script())
    exported = counterexample.export(target, basename)
    return [str(json_path), str(script_path)] + [
        str(path) for path in exported.values()
    ]


def _cmd_model(args: argparse.Namespace) -> int:
    # Imported here so plain lint runs never load the model checker.
    from repro.analysis.model import (
        cross_validate,
        run_self_test,
        verify_buffer,
        verify_dominance,
        verify_fifo_refinement,
        verify_starvation,
        verify_switch,
    )
    from repro.core.registry import PAPER_ORDER
    from repro.errors import ReproError

    if args.self_test:
        try:
            results = run_self_test()
        except ReproError as error:
            print(f"self-test FAILED: {error}")
            return 1
        for mutation_result in results:
            print(mutation_result.describe())
        print(f"self-test: all {len(results)} planted bugs detected")
        return 0

    requested = args.buffer.lower()
    if requested == "all":
        kinds = list(PAPER_ORDER)
    elif requested == "arch":
        from repro.arch import ARCH_ORDER

        kinds = list(ARCH_ORDER)
    else:
        kinds = [
            kind.strip().upper()
            for kind in args.buffer.split(",")
            if kind.strip()
        ]
    failures = 0
    results = []
    try:
        for kind in kinds:
            if args.system in ("buffer", "both"):
                results.append(
                    verify_buffer(
                        kind,
                        args.slots,
                        args.ports,
                        protocol=args.protocol,
                        exact_layout=not args.collapse_layout,
                        max_states=args.max_states,
                        max_depth=args.max_depth,
                    )
                )
            if args.system in ("switch", "both"):
                results.append(
                    verify_switch(
                        kind,
                        args.ports,
                        args.slots,
                        protocol=args.protocol,
                        exact_layout=False,
                        check_arbiter=not args.no_arbiter_check,
                        max_states=args.max_states,
                        max_depth=args.max_depth,
                    )
                )
        if args.starvation:
            for kind in kinds:
                results.append(
                    verify_starvation(
                        kind,
                        args.slots,
                        args.ports,
                        max_states=args.max_states,
                        max_depth=args.max_depth,
                    )
                )
        if not args.skip_refinements:
            if "DAMQ" in kinds:
                results.append(
                    verify_fifo_refinement(args.slots, args.ports)
                )
            for kind in ("SAMQ", "SAFC"):
                if kind in kinds:
                    results.append(
                        verify_dominance(kind, args.slots, args.ports)
                    )
    except ReproError as error:
        print(f"model checking aborted: {error}")
        return 2
    for result in results:
        print(result.describe())
        if result.violation is not None:
            failures += 1
            if args.export_dir:
                for path in _export_counterexample(
                    result, args.export_dir
                ):
                    print(f"  wrote {path}")
    if args.cross_validate:
        try:
            for kind in kinds:
                validation = cross_validate(
                    kind,
                    args.slots,
                    args.rate,
                    args.ports,
                    tolerance=args.tolerance,
                )
                print(validation.describe())
                if not validation.ok:
                    failures += 1
        except ReproError as error:
            print(f"cross-validation aborted: {error}")
            return 2
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a sub-command."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis and hardware-model sanitizing for the "
        "repro codebase.",
    )
    subparsers = parser.add_subparsers(dest="command")

    lint_parser = subparsers.add_parser(
        "lint", help="run the REPxxx determinism linter"
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format; 'github' emits Actions annotations "
        "(default: text)",
    )
    lint_parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to report (default: all)",
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    rules_parser = subparsers.add_parser(
        "rules", help="describe every lint rule"
    )
    rules_parser.set_defaults(handler=_cmd_rules)

    sanitize_parser = subparsers.add_parser(
        "sanitize",
        help="run a short sanitizer-enabled Omega simulation (CI smoke)",
    )
    sanitize_parser.add_argument("--buffer", default="DAMQ")
    sanitize_parser.add_argument("--ports", type=int, default=16)
    sanitize_parser.add_argument("--load", type=float, default=0.6)
    sanitize_parser.add_argument("--seed", type=int, default=1988)
    sanitize_parser.add_argument("--warmup", type=int, default=100)
    sanitize_parser.add_argument("--cycles", type=int, default=400)
    sanitize_parser.set_defaults(handler=_cmd_sanitize)

    model_parser = subparsers.add_parser(
        "model",
        help="exhaustive bounded model checking of the buffer hardware",
    )
    model_parser.add_argument(
        "--buffer",
        default="all",
        help="buffer kind(s) to check, comma-separated; 'all' = the four "
        "paper buffers (default), 'arch' = the repro.arch zoo "
        "(DAMQ-RSV, CQ)",
    )
    model_parser.add_argument(
        "--ports",
        type=int,
        default=2,
        help="switch ports / buffer outputs (default: 2)",
    )
    model_parser.add_argument(
        "--slots",
        type=int,
        default=4,
        help="slots per buffer (default: 4)",
    )
    model_parser.add_argument(
        "--system",
        choices=("buffer", "switch", "both"),
        default="both",
        help="which transition system(s) to explore (default: both)",
    )
    model_parser.add_argument(
        "--protocol",
        choices=("discarding", "blocking"),
        default="discarding",
        help="full-buffer arrival semantics (default: discarding)",
    )
    model_parser.add_argument(
        "--collapse-layout",
        action="store_true",
        help="key single-buffer DAMQ states on contents, not the exact "
        "pointer-RAM layout (smaller, weaker search)",
    )
    model_parser.add_argument(
        "--no-arbiter-check",
        action="store_true",
        help="skip the per-state real-arbiter conformance check",
    )
    model_parser.add_argument(
        "--max-states", type=int, default=None, help="state budget"
    )
    model_parser.add_argument(
        "--max-depth", type=int, default=None, help="depth bound"
    )
    model_parser.add_argument(
        "--starvation",
        action="store_true",
        help="also check the no-starvation property on each selected kind "
        "(plain DAMQ and FIFO violate it by design; the reserved-slot "
        "and partitioned architectures must pass)",
    )
    model_parser.add_argument(
        "--skip-refinements",
        action="store_true",
        help="skip the FIFO-refinement and acceptance-dominance checks",
    )
    model_parser.add_argument(
        "--cross-validate",
        action="store_true",
        help="compare the explored state graph's stationary distribution "
        "with the repro.markov chain",
    )
    model_parser.add_argument(
        "--rate",
        type=float,
        default=0.6,
        help="traffic rate for --cross-validate (default: 0.6)",
    )
    model_parser.add_argument(
        "--tolerance",
        type=float,
        default=1e-9,
        help="stationary-distribution tolerance (default: 1e-9)",
    )
    model_parser.add_argument(
        "--self-test",
        action="store_true",
        help="plant known bugs and assert the checker detects them",
    )
    model_parser.add_argument(
        "--export-dir",
        default=None,
        help="write counterexample JSON/script/waveforms here on failure",
    )
    model_parser.set_defaults(handler=_cmd_model)

    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    return int(args.handler(args))


def verify_main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-verify`` console script.

    Equivalent to ``repro-lint model ...``: the arguments are passed to
    the ``model`` sub-command directly.
    """
    if argv is None:
        argv = sys.argv[1:]
    return main(["model", *argv])


if __name__ == "__main__":
    sys.exit(main())
